//! Offline design-space exploration (the paper's §3 / Fig. 1 odd rows) for a handful of
//! kernels: run every candidate approximate configuration, measure execution time and
//! output inaccuracy against precise execution, and print the variants selected near the
//! pareto frontier.
//!
//! Run with: `cargo run --example design_space_exploration`

use pliant::approx::kernels::kernel_for;
use pliant::prelude::*;

fn main() {
    let config = ExplorationConfig::default();
    for app in [
        AppId::KMeans,
        AppId::Canneal,
        AppId::Raytrace,
        AppId::Plsa,
        AppId::Hmmer,
    ] {
        let kernel = kernel_for(app, 2024);
        let result = explore_kernel(kernel.as_ref(), &config);
        println!("== {} ==", result.app);
        println!(
            "  examined configurations : {}",
            result.measurements.len() - 1
        );
        println!("  selected variants       : {}", result.selected_count());
        for (i, v) in result.selected_variants().iter().enumerate() {
            println!(
                "    v{} {:<26} time {:.2}x  inaccuracy {:.2}%",
                i + 1,
                v.label,
                v.exec_time_factor,
                v.inaccuracy_pct
            );
        }
        println!();
    }
    println!("These ordered variant lists are what the Pliant runtime switches between at");
    println!("run time; anything above the 5% quality threshold was discarded.");
}
