//! Time-varying load profiles: run the same co-location under a constant load, a diurnal
//! day/night pattern, and a flash crowd, and compare how often QoS is violated in each
//! load phase. All three cells share the same seed (common random numbers), so the only
//! difference between them is the shape of the offered load.
//!
//! Run with: `cargo run --release --example load_profiles`

use pliant::prelude::*;

fn main() {
    let diurnal = LoadProfile::Diurnal {
        base: 0.6,
        amplitude: 0.35,
        period_s: 40.0,
        phase_s: 0.0,
    };
    let flash = LoadProfile::FlashCrowd {
        base: 0.35,
        peak: 1.0,
        start_s: 10.0,
        ramp_s: 2.0,
        hold_s: 8.0,
        decay_s: 2.0,
    };
    // A trace profile interpolates linearly through (time, load) breakpoints — e.g.
    // replayed from a production load log.
    let trace = LoadProfile::Trace {
        points: vec![(0.0, 0.4), (15.0, 0.9), (30.0, 0.5), (45.0, 0.7)],
    };

    let base = Scenario::builder(ServiceId::Memcached)
        .app(AppId::Bayesian)
        .policy(PolicyKind::Pliant)
        .horizon_seconds(45.0)
        .stop_when_apps_finish(false)
        .seed(77)
        .build();
    let suite = Suite::new(base).named("profiles").sweep_load_profiles([
        LoadProfile::constant(0.75),
        diurnal,
        flash,
        trace,
    ]);

    for cell in Engine::new().parallel().run_collect(&suite) {
        let profile = cell.scenario.effective_load_profile();
        println!(
            "\n{} (load {:.2}–{:.2})",
            cell.scenario.describe(),
            profile.min_load(),
            profile.max_load()
        );
        println!("  phase      intervals  mean-load  violations");
        for p in &cell.outcome.phase_qos {
            println!(
                "  {:<9}  {:>9}  {:>8.0}%  {:>9.0}%",
                p.phase.name(),
                p.intervals,
                p.mean_offered_load * 100.0,
                p.qos_violation_fraction * 100.0
            );
        }
        let app = &cell.outcome.app_outcomes[0];
        println!(
            "  inaccuracy {:.1}%, relative execution time {:.2}x",
            app.inaccuracy_pct, app.relative_execution_time
        );
    }
}
