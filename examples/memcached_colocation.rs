//! Dynamic-behaviour walkthrough (the scenario of the paper's Fig. 4, middle row): drive
//! the co-location simulator manually with the Pliant monitor + controller and print what
//! the runtime does interval by interval while memcached shares the node with canneal.
//!
//! Run with: `cargo run --example memcached_colocation`

use pliant::prelude::*;
use pliant::runtime::actuator::Actuator;
use pliant::runtime::monitor::PerformanceMonitor;
use pliant::runtime::MonitorConfig;
use pliant::runtime::PliantController;

fn main() {
    let catalog = Catalog::default();
    let service = ServiceId::Memcached;
    let app = AppId::Canneal;
    let config = ColocationConfig::paper_default(service, &[app], 21);
    let mut sim = ColocationSim::new(config, &catalog);

    let variant_count = catalog.profile(app).unwrap().variant_count();
    let mut controller = PliantController::new(
        ControllerConfig::default(),
        variant_count,
        sim.app(0).cores(),
    );
    let mut monitor = PerformanceMonitor::new(
        MonitorConfig::for_qos(ServiceProfile::paper_default(service).qos_target_s),
        99,
    );
    let mut actuator = Actuator::new();

    println!("t(s)  p99(us)  QoS(us)  variant   cores-reclaimed  action");
    println!("----  -------  -------  --------  ---------------  ------------------");
    for _ in 0..45 {
        let obs = sim.advance(1.0);
        let report = monitor.observe_interval(&obs.latency_samples_s);
        let actions = controller.decide(0, &report);
        let action_text = if actions.is_empty() {
            "hold".to_string()
        } else {
            format!("{:?}", actions[0])
        };
        let status = &obs.apps[0];
        println!(
            "{:>4.0}  {:>7.0}  {:>7.0}  {:>8}  {:>15}  {}",
            obs.time_s,
            obs.p99_latency_s * 1e6,
            obs.qos_target_s * 1e6,
            status
                .variant
                .map_or("precise".to_string(), |v| format!("v{}", v + 1)),
            status.cores_reclaimed,
            action_text
        );
        actuator.apply_all(&mut sim, &actions);
        if obs.all_apps_finished {
            break;
        }
    }

    let final_state = sim.app(0);
    println!("\ncanneal finished: {}", final_state.is_finished());
    println!(
        "canneal execution time vs nominal: {:.2}x",
        final_state.relative_execution_time()
    );
    println!(
        "canneal output-quality loss: {:.1}%",
        final_state.inaccuracy_pct()
    );
    println!("actuator stats: {:?}", actuator.stats());
}
