//! Fleet simulation: a multi-node cluster with load balancing and batch-job scheduling.
//!
//! Runs a 4-node memcached fleet through a diurnal load pattern with a queue of batch
//! jobs flowing through the nodes' slots, then prints the fleet-level QoS summary, the
//! per-node breakdown, and the effect of the placement policy.
//!
//! Run with: `cargo run --release --example cluster`

use pliant::prelude::*;

fn main() {
    // Two batch slots per node; the initial placement is node-major, so node 0 starts
    // with two heavy canneal jobs while the rest run lighter kernels — placement
    // policies then face a genuinely uneven fleet when the queued jobs are admitted.
    let jobs = [
        AppId::Canneal,
        AppId::Canneal,
        AppId::Snp,
        AppId::KMeans,
        AppId::Raytrace,
        AppId::Birch,
        AppId::Fasta,
        AppId::Glimmer,
        // Queued: admitted as the short jobs above finish.
        AppId::Bayesian,
        AppId::Streamcluster,
        AppId::Plsa,
        AppId::Semphy,
    ];
    let base = ClusterScenario::builder(ServiceId::Memcached)
        .nodes(4)
        .slots_per_node(2)
        .jobs(jobs)
        .load_profile(LoadProfile::Diurnal {
            base: 0.5,
            amplitude: 0.15,
            period_s: 60.0,
            phase_s: 0.0,
        })
        .balancer(BalancerKind::LeastLoaded)
        .horizon_seconds(90.0)
        .warmup_intervals(8)
        .seed(7)
        .build();

    println!(
        "4-node {} fleet, two batch slots per node, diurnal load 35-65%, {} jobs\n",
        base.service.name(),
        base.jobs.len()
    );

    // One suite: the same fleet under both placement extremes, paired by common random
    // numbers so the comparison isolates the scheduler.
    let engine = Engine::new().parallel();
    let suite = ClusterSuite::new(base)
        .named("cluster-demo")
        .sweep_schedulers([SchedulerKind::FirstFit, SchedulerKind::QosSlackAware]);
    for cell in engine.run_cluster_collect(&suite) {
        let o = &cell.outcome;
        println!("scheduler = {}", o.scheduler);
        println!(
            "  fleet p99 / QoS        : {:.2}x",
            o.fleet_tail_latency_ratio
        );
        println!(
            "  violating node-intervals: {:.1}%",
            o.fleet_qos_violation_fraction * 100.0
        );
        println!(
            "  jobs completed          : {} of {} submitted",
            o.jobs_completed(),
            o.scheduler_stats.submitted
        );
        println!(
            "  mean quality loss       : {:.1}%",
            o.mean_completed_inaccuracy_pct()
        );
        println!(
            "  peak cores reclaimed    : {} fleet-wide",
            o.max_total_extra_cores
        );
        for node in &o.node_outcomes {
            println!(
                "    node {}: mean load {:.0}%, p99 {:.0}us, violations {:.1}%, jobs {}",
                node.node,
                node.mean_assigned_load * 100.0,
                node.p99_s * 1e6,
                node.qos_violation_fraction * 100.0,
                node.jobs_completed
            );
        }
        println!();
    }
}
