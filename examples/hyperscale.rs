//! Hyperscale fleets: the clustered approximation on a 20,000-node population.
//!
//! An exact fleet simulation steps every node every interval, so datacenter-scale
//! scenarios are out of interactive reach. This example builds a 20k-node scenario,
//! shows how the node population collapses into a few groups of interchangeable
//! nodes, runs it through the clustered approximation (a handful of representatives
//! per group, contributions replicated per logical node), and compares the same small
//! scenario exactly vs clustered to show what the approximation preserves.
//!
//! Run with: `cargo run --release --example hyperscale`

use pliant::prelude::*;

/// A day/night fleet scenario at the given size: three batch kernels cycled over the
/// nodes (so the population clusters into three groups) under a diurnal load.
fn scenario(nodes: usize, approximation: FleetApproximation) -> ClusterScenario {
    let mix = [AppId::Bayesian, AppId::Semphy, AppId::ClustalW];
    ClusterScenario::builder(ServiceId::Memcached)
        .nodes(nodes)
        .jobs((0..nodes).map(|i| mix[i % mix.len()]))
        .load_profile(LoadProfile::Diurnal {
            base: 0.55,
            amplitude: 0.2,
            period_s: 120.0,
            phase_s: 0.0,
        })
        .balancer(BalancerKind::RoundRobin)
        .approximation(approximation)
        .horizon_seconds(120.0)
        .warmup_intervals(8)
        .seed(7)
        .build()
}

fn main() {
    // 1. The population view: 20k nodes, but only three distinct node groups, because
    //    clustering keys on what makes nodes behave differently — their batch mix.
    let big = scenario(
        20_000,
        FleetApproximation::Clustered {
            representatives_per_group: 4,
        },
    );
    let population = NodePopulation::from_scenario(&big);
    println!(
        "{} logical nodes cluster into {} groups:",
        population.total_nodes(),
        population.groups().len()
    );
    for (i, group) in population.groups().iter().enumerate() {
        println!(
            "  group {i}: {} nodes running {:?}",
            group.len(),
            group.jobs
        );
    }

    // 2. Run the 20k-node fleet through the approximation: 12 simulated instances
    //    stand for the whole population.
    let engine = Engine::new().parallel();
    // pliant-lint: allow(nondeterminism): the example's whole point is showing the
    // wall-clock the approximation buys; nothing simulated depends on this reading.
    let started = std::time::Instant::now();
    let outcome = engine.run_cluster(&big);
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "\n20k-node day/night cycle: {} instances simulated, {:.2}s wall clock",
        outcome.simulated_instances, elapsed
    );
    println!(
        "  fleet p99/QoS {:.2}, violations {:.1}%, energy {:.1} MJ",
        outcome.fleet_tail_latency_ratio,
        outcome.fleet_qos_violation_fraction * 100.0,
        outcome.fleet_energy_j / 1e6
    );

    // 3. Fidelity check on a small fleet, where exact simulation is cheap: the same
    //    12-node scenario exactly and through the approximation.
    let exact = engine.run_cluster(&scenario(12, FleetApproximation::Exact));
    let approx = engine.run_cluster(&scenario(
        12,
        FleetApproximation::Clustered {
            representatives_per_group: 2,
        },
    ));
    println!(
        "\n12-node fidelity check (exact vs 2 representatives per group):\n  \
         p99/QoS   {:.3} vs {:.3}\n  \
         violations {:.2}% vs {:.2}%\n  \
         energy    {:.1} kJ vs {:.1} kJ ({} vs {} instances simulated)",
        exact.fleet_tail_latency_ratio,
        approx.fleet_tail_latency_ratio,
        exact.fleet_qos_violation_fraction * 100.0,
        approx.fleet_qos_violation_fraction * 100.0,
        exact.fleet_energy_j / 1e3,
        approx.fleet_energy_j / 1e3,
        exact.simulated_instances,
        approx.simulated_instances
    );
}
