//! Quickstart: describe one co-location as a scenario, run it under the Precise baseline
//! and under Pliant, and compare the interactive service's tail latency and the
//! approximate application's execution time / output quality.
//!
//! Run with: `cargo run --example quickstart`

use pliant::prelude::*;

fn main() {
    let service = ServiceId::Memcached;
    let app = AppId::Canneal;

    println!(
        "Co-locating {} (QoS {} {}) with {}\n",
        service.name(),
        ServiceProfile::paper_default(service).qos_target_display(),
        service.display_unit(),
        app.name(),
    );

    // One suite: the same scenario under both policies, sharing workload randomness so
    // the comparison is paired.
    let suite = Suite::new(
        Scenario::builder(service)
            .app(app)
            .horizon_intervals(60)
            .seed(7)
            .build(),
    )
    .named("quickstart")
    .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);

    for cell in Engine::new().run_collect(&suite) {
        let outcome = &cell.outcome;
        let batch = &outcome.app_outcomes[0];
        println!("policy = {}", outcome.policy);
        println!(
            "  p99 / QoS               : {:.2}x",
            outcome.tail_latency_ratio
        );
        println!(
            "  intervals violating QoS : {:.0}%",
            outcome.qos_violation_fraction * 100.0
        );
        println!(
            "  max cores reclaimed     : {}",
            outcome.max_extra_service_cores
        );
        println!(
            "  {} execution time  : {:.2}x nominal",
            batch.app.name(),
            batch.relative_execution_time
        );
        println!(
            "  {} quality loss    : {:.1}%",
            batch.app.name(),
            batch.inaccuracy_pct
        );
        println!();
    }

    println!("Pliant restores the interactive service's QoS by approximating the batch");
    println!("application and, when necessary, briefly reclaiming cores from it — while the");
    println!("precise baseline leaves the service violating its tail-latency target.");
}
