//! Quickstart: run one co-location under the Precise baseline and under Pliant, and
//! compare the interactive service's tail latency and the approximate application's
//! execution time / output quality.
//!
//! Run with: `cargo run --example quickstart`

use pliant::prelude::*;

fn main() {
    let service = ServiceId::Memcached;
    let app = AppId::Canneal;
    let options = ExperimentOptions {
        max_intervals: 60,
        seed: 7,
        ..ExperimentOptions::default()
    };

    println!("Co-locating {} (QoS {} {}) with {}\n",
        service.name(),
        ServiceProfile::paper_default(service).qos_target_display(),
        service.display_unit(),
        app.name(),
    );

    for policy in [PolicyKind::Precise, PolicyKind::Pliant] {
        let outcome = run_colocation(service, &[app], policy, &options);
        let batch = &outcome.app_outcomes[0];
        println!("policy = {}", policy.name());
        println!("  p99 / QoS               : {:.2}x", outcome.tail_latency_ratio);
        println!("  intervals violating QoS : {:.0}%", outcome.qos_violation_fraction * 100.0);
        println!("  max cores reclaimed     : {}", outcome.max_extra_service_cores);
        println!("  {} execution time  : {:.2}x nominal", batch.app.name(), batch.relative_execution_time);
        println!("  {} quality loss    : {:.1}%", batch.app.name(), batch.inaccuracy_pct);
        println!();
    }

    println!("Pliant restores the interactive service's QoS by approximating the batch");
    println!("application and, when necessary, briefly reclaiming cores from it — while the");
    println!("precise baseline leaves the service violating its tail-latency target.");
}
