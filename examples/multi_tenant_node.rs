//! Multi-tenant node (the paper's §4.4 / Fig. 6 scenario): NGINX shares a node with three
//! approximate applications at once. Pliant arbitrates between them round-robin so that no
//! application sacrifices a disproportionate amount of quality or cores.
//!
//! Run with: `cargo run --example multi_tenant_node`

use pliant::prelude::*;

fn main() {
    let apps = [AppId::Canneal, AppId::Bayesian, AppId::Snp];
    let suite = Suite::new(
        Scenario::builder(ServiceId::Nginx)
            .apps(apps)
            .horizon_intervals(80)
            .seed(33)
            .build(),
    )
    .named("multi-tenant")
    .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);

    println!(
        "NGINX co-located with {} approximate applications\n",
        apps.len()
    );
    for cell in Engine::new().run_collect(&suite) {
        let outcome = &cell.outcome;
        println!("policy = {}", outcome.policy);
        println!(
            "  p99 / QoS               : {:.2}x",
            outcome.tail_latency_ratio
        );
        println!(
            "  intervals violating QoS : {:.0}%",
            outcome.qos_violation_fraction * 100.0
        );
        for app in &outcome.app_outcomes {
            println!(
                "  {:<10} exec {:.2}x nominal, quality loss {:.1}%, max cores yielded {}",
                app.app.name(),
                app.relative_execution_time,
                app.inaccuracy_pct,
                app.max_cores_reclaimed
            );
        }
        println!();
    }
    println!("Under Pliant each application gives up a comparable (small) amount of quality");
    println!("and at most a core or two, instead of one victim absorbing all the pressure.");
}
