//! Integration tests for the hot-path overhaul's two documented contracts.
//!
//! 1. **Bucket-resolution bound.** The monitor's streaming histogram estimator may
//!    differ from the exact sorted-order p99 of the samples it ingested by at most one
//!    bucket width (~3% relative, see `LatencyHistogram::bucket_bounds`). This is the
//!    precise sense in which the interval p99 "moved from exact to histogram", and it
//!    must hold at every operating point — so it is swept across every service profile
//!    and every load-profile shape.
//! 2. **Buffer reuse never leaks.** `ColocationSim::advance_reusing` recycles the
//!    previous interval's sample buffer; an idle interval must still deliver an empty
//!    sample set and drive the monitor to a `no_signal` report, never a stale one.

use pliant::prelude::*;
use pliant::telemetry::histogram::LatencyHistogram;

/// A monitor that ingests every sample (no subsampling), so its report is exactly the
/// histogram estimate over the full interval.
fn full_ingest_monitor(qos_target_s: f64) -> PerformanceMonitor {
    PerformanceMonitor::new(
        MonitorConfig {
            base_sample_rate: 1.0,
            elevated_sample_rate: 1.0,
            ..MonitorConfig::for_qos(qos_target_s)
        },
        42,
    )
}

/// The exact p99 under the histogram's rank definition: the smallest sample with
/// cumulative count >= ceil(0.99 n).
fn exact_rank_p99(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let target = ((0.99 * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    sorted[target - 1]
}

fn load_profile_zoo() -> Vec<LoadProfile> {
    vec![
        LoadProfile::constant(0.75),
        LoadProfile::Step {
            base: 0.85,
            to: 0.45,
            at_s: 6.0,
        },
        LoadProfile::Diurnal {
            base: 0.6,
            amplitude: 0.3,
            period_s: 12.0,
            phase_s: 0.0,
        },
        LoadProfile::FlashCrowd {
            base: 0.4,
            peak: 1.0,
            start_s: 4.0,
            ramp_s: 2.0,
            hold_s: 4.0,
            decay_s: 2.0,
        },
    ]
}

#[test]
fn histogram_p99_stays_within_one_bucket_width_of_the_exact_p99() {
    let catalog = Catalog::default();
    for service in ServiceId::all() {
        for profile in load_profile_zoo() {
            let cfg = ColocationConfig::paper_default(service, &[AppId::Canneal], 11)
                .with_load_profile(profile.clone());
            let qos = cfg.service.qos_target_s;
            let mut sim = ColocationSim::new(cfg, &catalog);
            let mut monitor = full_ingest_monitor(qos);
            let mut recycled = None;
            for _ in 0..15 {
                let obs = sim.advance_reusing(1.0, recycled.take());
                let report = monitor.observe_interval(&obs.latency_samples_s);
                if !report.no_signal {
                    // Compare in the histogram's microsecond domain: the estimate and
                    // the exact rank statistic must land within one bucket width.
                    let exact_us = exact_rank_p99(&obs.latency_samples_s) * 1e6;
                    let (lo, hi) = LatencyHistogram::bucket_bounds(exact_us);
                    let width = hi - lo;
                    let estimate_us = report.p99_s * 1e6;
                    assert!(
                        (estimate_us - exact_us).abs() <= width,
                        "{service} under {}: histogram p99 {estimate_us:.2}us deviates \
                         from exact {exact_us:.2}us by more than one bucket width \
                         ({width:.2}us)",
                        profile.describe(),
                    );
                }
                recycled = Some(obs);
            }
        }
    }
}

#[test]
fn reused_buffers_report_no_signal_on_idle_intervals_after_busy_ones() {
    // The monitor-facing half of the buffer-reuse contract: drive the exact engine
    // pattern (recycled observations feeding the monitor) through a busy -> idle ->
    // busy load profile and pin that the idle interval is a true no-signal, with the
    // EWMA held from the busy interval, and that traffic recovers afterwards.
    let catalog = Catalog::default();
    let profile = LoadProfile::Trace {
        points: vec![(0.0, 0.8), (1.0, 0.0), (2.0, 0.0), (3.0, 0.8)],
    };
    let cfg = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::KMeans], 19)
        .with_load_profile(profile);
    let qos = cfg.service.qos_target_s;
    let mut sim = ColocationSim::new(cfg, &catalog);
    let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(qos), 7);

    let busy_obs = sim.advance_reusing(1.0, None);
    assert_eq!(busy_obs.latency_samples_s.len(), 1_000);
    let busy_report = monitor.observe_interval(&busy_obs.latency_samples_s);
    assert!(!busy_report.no_signal);
    assert!(busy_report.sampled > 0);

    let idle_obs = sim.advance_reusing(1.0, Some(busy_obs));
    assert_eq!(idle_obs.arrivals, 0);
    assert!(
        idle_obs.latency_samples_s.is_empty(),
        "the recycled buffer must not leak the busy interval's samples"
    );
    let idle_report = monitor.observe_interval(&idle_obs.latency_samples_s);
    assert!(idle_report.no_signal, "an idle interval is a no-signal");
    assert_eq!(idle_report.sampled, 0);
    assert_eq!(idle_report.smoothed_p99_s, busy_report.smoothed_p99_s);
    assert_eq!(idle_report.slack_fraction, 0.0);

    let _ = sim.advance_reusing(1.0, Some(idle_obs));
    let busy_again = sim.advance_reusing(1.0, None);
    assert_eq!(busy_again.latency_samples_s.len(), 1_000);
    let report = monitor.observe_interval(&busy_again.latency_samples_s);
    assert!(!report.no_signal, "traffic must be observed again");
}

// ---------------------------------------------------------------------------
// 3. Observability's Null-sink contract: with tracing off, and on a saturated
//    preallocated ring, the per-interval emit path allocates nothing — so the hot
//    loop's allocation profile is unchanged by the observability layer.
// ---------------------------------------------------------------------------

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use pliant::telemetry::obs::{Event, EventKind, MetricsRegistry, ObsBuffer, ObsLevel};

/// The system allocator with a thread-local allocation counter, so concurrently
/// running tests on other threads cannot perturb a measurement.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations made by `f` on this thread.
fn allocations_during(f: impl FnOnce()) -> u64 {
    // Touch the thread-local once outside the measured window, so its lazy
    // registration cannot be charged to `f`.
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn obs_emit_is_allocation_free_when_off_and_when_saturated() {
    let event = Event::QosViolation {
        node: 0,
        p99_s: 4e-4,
        qos_target_s: 2e-4,
    };

    // Off: the default Null-sink configuration used by every untraced run.
    let mut off = ObsBuffer::disabled();
    assert_eq!(
        allocations_during(|| {
            for i in 0..10_000u32 {
                off.emit(i, i as f64, event);
            }
        }),
        0,
        "emitting through a disabled buffer must never allocate"
    );

    // On, past capacity: the ring preallocates at construction and then recycles
    // slots, so sustained emission — including wrap-around eviction — is free.
    let mut on = ObsBuffer::new(ObsLevel::Decisions, 1, 1, 64);
    assert_eq!(
        allocations_during(|| {
            for i in 0..10_000u32 {
                on.emit(i, i as f64, event);
            }
        }),
        0,
        "a preallocated ring must absorb sustained emission without allocating"
    );

    // The per-kind counters the summary is folded from are plain arrays.
    let mut registry = MetricsRegistry::new();
    assert_eq!(
        allocations_during(|| {
            for kind in EventKind::ALL {
                for w in 0..1_000u32 {
                    registry.record(kind, w);
                }
            }
        }),
        0,
        "counter recording must never allocate"
    );
}
