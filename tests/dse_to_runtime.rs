//! Integration test: the full Pliant pipeline from offline design-space exploration over a
//! real kernel to an online co-location managed with the explored variants.

use pliant::approx::catalog::{AppId, Catalog};
use pliant::approx::kernels::kernel_for;
use pliant::prelude::*;
use pliant::runtime::experiment::run_colocation_with_config;

#[test]
fn explored_variants_flow_into_the_runtime_catalog() {
    // 1. Offline: explore the kmeans kernel.
    let kernel = kernel_for(AppId::KMeans, 77);
    let exploration = explore_kernel(kernel.as_ref(), &ExplorationConfig::default());
    let variants = exploration.selected_variants();
    assert!(!variants.is_empty(), "kmeans must yield admissible variants");
    for v in &variants {
        assert!(v.inaccuracy_pct <= 5.0);
        assert!(v.exec_time_factor < 1.0);
    }

    // 2. Bridge: replace kmeans' calibrated variant table with the measured one.
    let base = Catalog::default();
    let measured_profile = base.profile(AppId::KMeans).unwrap().clone().with_variants(variants);
    let catalog = Catalog::from_profiles(
        base.profiles()
            .iter()
            .map(|p| {
                if p.id == AppId::KMeans {
                    measured_profile.clone()
                } else {
                    p.clone()
                }
            })
            .collect(),
    );

    // 3. Online: run the colocation with the bridged catalog under Pliant.
    let config = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::KMeans], 101);
    let options = ExperimentOptions {
        max_intervals: 50,
        seed: 101,
        ..ExperimentOptions::default()
    };
    let outcome = run_colocation_with_config(config, PolicyKind::Pliant, &options, &catalog);

    assert!(outcome.tail_latency_ratio < 1.3, "bridged variants must still control tail latency");
    assert!(outcome.app_outcomes[0].inaccuracy_pct <= 5.0);
}

#[test]
fn every_application_has_both_a_kernel_and_a_catalog_entry() {
    let catalog = Catalog::default();
    for app in AppId::all() {
        let kernel = kernel_for(app, 1);
        assert_eq!(kernel.name(), app.name(), "kernel/catalog naming must agree");
        let profile = catalog.profile(app).expect("catalog entry");
        assert!(profile.variant_count() >= 2, "{app} needs at least two variants for incremental control");
        assert!(!kernel.candidate_configs().is_empty());
    }
}

#[test]
fn exploration_is_deterministic_in_the_seed() {
    let a = explore_kernel(kernel_for(AppId::Fasta, 5).as_ref(), &ExplorationConfig::default());
    let b = explore_kernel(kernel_for(AppId::Fasta, 5).as_ref(), &ExplorationConfig::default());
    assert_eq!(a.selected, b.selected);
    assert_eq!(a.measurements.len(), b.measurements.len());
}
