//! Integration test: the full Pliant pipeline from offline design-space exploration over a
//! real kernel to an online co-location managed with the explored variants, bridged
//! through `pliant_explore::bridge` and run on an engine with the bridged catalog.

use pliant::approx::catalog::{AppId, Catalog};
use pliant::approx::kernels::kernel_for;
use pliant::explore::bridge;
use pliant::prelude::*;

#[test]
fn explored_variants_flow_into_the_runtime_catalog() {
    // 1. Offline: explore the kmeans kernel.
    let kernel = kernel_for(AppId::KMeans, 77);
    let exploration = explore_kernel(kernel.as_ref(), &ExplorationConfig::default());
    let variants = exploration.selected_variants();
    assert!(
        !variants.is_empty(),
        "kmeans must yield admissible variants"
    );
    for v in &variants {
        assert!(v.inaccuracy_pct <= 5.0);
        assert!(v.exec_time_factor < 1.0);
    }

    // 2. Bridge: replace kmeans' calibrated variant table with the measured one.
    let catalog = bridge::catalog_with_explored(&Catalog::default(), AppId::KMeans, &exploration);

    // 3. Online: run the colocation against the bridged catalog under Pliant.
    let scenario = Scenario::builder(ServiceId::Nginx)
        .app(AppId::KMeans)
        .policy(PolicyKind::Pliant)
        .horizon_intervals(50)
        .seed(101)
        .build();
    let outcome = Engine::new().with_catalog(catalog).run_scenario(&scenario);

    assert!(
        outcome.tail_latency_ratio < 1.3,
        "bridged variants must still control tail latency"
    );
    assert!(outcome.app_outcomes[0].inaccuracy_pct <= 5.0);
}

#[test]
fn every_application_has_both_a_kernel_and_a_catalog_entry() {
    let catalog = Catalog::default();
    for app in AppId::all() {
        let kernel = kernel_for(app, 1);
        assert_eq!(
            kernel.name(),
            app.name(),
            "kernel/catalog naming must agree"
        );
        let profile = catalog.profile(app).expect("catalog entry");
        assert!(
            profile.variant_count() >= 2,
            "{app} needs at least two variants for incremental control"
        );
        assert!(!kernel.candidate_configs().is_empty());
    }
}

#[test]
fn exploration_is_deterministic_in_the_seed() {
    let a = explore_kernel(
        kernel_for(AppId::Fasta, 5).as_ref(),
        &ExplorationConfig::default(),
    );
    let b = explore_kernel(
        kernel_for(AppId::Fasta, 5).as_ref(),
        &ExplorationConfig::default(),
    );
    assert_eq!(a.selected, b.selected);
    assert_eq!(a.measurements.len(), b.measurements.len());
}
