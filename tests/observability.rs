//! Integration tests for the observability subsystem's cross-layer contracts.
//!
//! 1. **Determinism**: the merged decision-event stream is byte-identical across
//!    serial and parallel execution, at every observability level, in exact and
//!    clustered mode — tracing inherits the engine's core guarantee.
//! 2. **Non-perturbation**: tracing observes the simulation, it never alters it — a
//!    traced run's outcome matches the untraced run on every field except the
//!    attached observability summary itself.
//! 3. **Conservation**: under the clustered approximation, replica-weighted event
//!    counters land within the established hyperscale bounds of the exact run's
//!    logical-node totals.

use pliant::prelude::*;
use pliant::telemetry::obs::{EventKind, ObsLevel, ObsSummary};
use serde_json::Value;

/// Serializes an outcome and drops its attached `obs` summary, leaving only the
/// simulation statistics (which tracing must never perturb).
fn strip_obs<T: serde::Serialize>(outcome: &T) -> Value {
    match serde_json::to_value(outcome).expect("serializable") {
        Value::Object(entries) => {
            Value::Object(entries.into_iter().filter(|(k, _)| k != "obs").collect())
        }
        other => other,
    }
}

fn fleet_scenario(approximation: FleetApproximation) -> ClusterScenario {
    let mut scenario = pliant_bench::cluster_energy_scenario_at_scale(12, PolicyKind::Pliant, 7);
    scenario.approximation = approximation;
    scenario
}

#[test]
fn event_streams_are_byte_identical_across_execution_modes() {
    for approximation in [
        FleetApproximation::Exact,
        FleetApproximation::Clustered {
            representatives_per_group: 2,
        },
    ] {
        let scenario = fleet_scenario(approximation);
        for level in [ObsLevel::Decisions, ObsLevel::Full] {
            let (serial_outcome, serial_log) = Engine::new().run_cluster_traced(&scenario, level);
            let (parallel_outcome, parallel_log) = Engine::new()
                .parallel()
                .run_cluster_traced(&scenario, level);
            let (two_outcome, two_log) = Engine::new()
                .parallel_threads(2)
                .run_cluster_traced(&scenario, level);
            let serial_jsonl = serial_log.to_jsonl_string();
            assert!(
                !serial_jsonl.is_empty(),
                "{approximation:?}/{level:?}: a traced fleet run must record events"
            );
            assert_eq!(
                serial_jsonl,
                parallel_log.to_jsonl_string(),
                "{approximation:?}/{level:?}: parallel event stream must be byte-identical"
            );
            assert_eq!(
                serial_jsonl,
                two_log.to_jsonl_string(),
                "{approximation:?}/{level:?}: partial worker pools must not reorder events"
            );
            let serial_json = serde_json::to_string(&serial_outcome).expect("serializable");
            assert_eq!(
                serial_json,
                serde_json::to_string(&parallel_outcome).expect("serializable")
            );
            assert_eq!(
                serial_json,
                serde_json::to_string(&two_outcome).expect("serializable")
            );
        }
    }
}

#[test]
fn tracing_never_perturbs_the_simulation() {
    let scenario = fleet_scenario(FleetApproximation::Exact);
    let engine = Engine::new().parallel();
    let untraced = engine.run_cluster(&scenario);
    let (decisions, _) = engine.run_cluster_traced(&scenario, ObsLevel::Decisions);
    let (full, _) = engine.run_cluster_traced(&scenario, ObsLevel::Full);

    let baseline = strip_obs(&untraced);
    assert_eq!(
        baseline,
        strip_obs(&decisions),
        "Decisions-level tracing must not change any simulation statistic"
    );
    assert_eq!(
        baseline,
        strip_obs(&full),
        "Full-level tracing must not change any simulation statistic"
    );
    // The untraced run's summary is the empty one; traced runs attach real counts.
    assert_eq!(untraced.obs, ObsSummary::default());
    assert!(decisions.obs.events_recorded > 0);
    assert!(full.obs.events_recorded >= decisions.obs.events_recorded);
}

#[test]
fn single_node_traced_run_matches_untraced_outcome() {
    let scenario = Scenario::builder(ServiceId::Memcached)
        .app(AppId::Canneal)
        .horizon_intervals(40)
        .seed(2024)
        .build();
    let engine = Engine::new();
    let untraced = engine.run_scenario(&scenario);
    let (traced, log) = engine.run_scenario_traced(&scenario, ObsLevel::Decisions);

    assert_eq!(strip_obs(&untraced), strip_obs(&traced));
    assert_eq!(traced.obs, log.summary());
    assert!(
        log.summary()
            .counter(EventKind::ControllerDecision)
            .is_some(),
        "a Pliant single-node run must audit its controller decisions"
    );
    // The same run traced twice produces the same bytes.
    let (_, again) = engine.run_scenario_traced(&scenario, ObsLevel::Decisions);
    assert_eq!(log.to_jsonl_string(), again.to_jsonl_string());
}

/// Under the clustered approximation, a node-sourced event recorded by a
/// representative carries its replica count as the record weight; the weighted
/// counters must therefore land near the exact run's logical-node totals. Fleet-scoped
/// bookkeeping events are emitted once per fleet regardless of mode and must match
/// exactly.
#[test]
fn clustered_event_counts_conserve_logical_totals() {
    let engine = Engine::new().parallel();
    let (exact, exact_log) = engine.run_cluster_traced(
        &fleet_scenario(FleetApproximation::Exact),
        ObsLevel::Decisions,
    );
    let (clustered, clustered_log) = engine.run_cluster_traced(
        &fleet_scenario(FleetApproximation::Clustered {
            representatives_per_group: 2,
        }),
        ObsLevel::Decisions,
    );
    assert!(
        clustered.simulated_instances < exact.simulated_instances,
        "the approximation must actually collapse the fleet"
    );
    let exact_summary = exact_log.summary();
    let clustered_summary = clustered_log.summary();

    let count =
        |summary: &ObsSummary, kind: EventKind| summary.counter(kind).map_or(0, |c| c.count);
    let weighted =
        |summary: &ObsSummary, kind: EventKind| summary.counter(kind).map_or(0, |c| c.weighted);

    // Fleet-scoped bookkeeping happens once per run in either mode.
    assert_eq!(count(&exact_summary, EventKind::FleetStart), 1);
    assert_eq!(count(&clustered_summary, EventKind::FleetStart), 1);
    assert_eq!(
        count(&exact_summary, EventKind::IntervalSummary),
        count(&clustered_summary, EventKind::IntervalSummary),
        "both modes roll up the same number of intervals"
    );
    assert_eq!(count(&exact_summary, EventKind::ApproximationPlan), 0);
    assert!(
        count(&clustered_summary, EventKind::ApproximationPlan) > 0,
        "clustered runs must audit their grouping plan"
    );

    // In exact mode every record weight is 1, so weighted == raw everywhere.
    for counter in &exact_summary.counters {
        assert_eq!(counter.weighted, counter.count);
    }

    // Replica-weighted QoS violations, normalized per logical node-interval, stay
    // within the hyperscale violation bound of the exact run.
    let node_intervals = (exact.nodes * exact.intervals) as f64;
    let exact_violation_rate =
        weighted(&exact_summary, EventKind::QosViolation) as f64 / node_intervals;
    let clustered_violation_rate =
        weighted(&clustered_summary, EventKind::QosViolation) as f64 / node_intervals;
    assert!(
        (exact_violation_rate - clustered_violation_rate).abs() <= 0.05,
        "violation-event rates diverged: exact {exact_violation_rate:.4}, \
         clustered {clustered_violation_rate:.4}"
    );

    // Replica-weighted job completions stand for the exact run's logical completions
    // (the energy study's completion counts agree to a few jobs either way).
    let exact_jobs = weighted(&exact_summary, EventKind::JobCompleted) as f64;
    let clustered_jobs = weighted(&clustered_summary, EventKind::JobCompleted) as f64;
    assert!(
        (exact_jobs - clustered_jobs).abs() <= 0.25 * exact_jobs.max(4.0),
        "completion-event totals diverged: exact {exact_jobs}, clustered {clustered_jobs}"
    );
}
