//! Integration test: the paper's headline results (§6.2 / Fig. 5), asserted as shape
//! properties on a representative subset of colocations.

use pliant::prelude::*;

fn options(seed: u64) -> ExperimentOptions {
    ExperimentOptions {
        max_intervals: 60,
        seed,
        ..ExperimentOptions::default()
    }
}

/// Representative subset spanning all four suites and the paper's named special cases.
fn representative_apps() -> [AppId; 8] {
    [
        AppId::Canneal,
        AppId::Raytrace,
        AppId::WaterSpatial,
        AppId::Streamcluster,
        AppId::Bayesian,
        AppId::Snp,
        AppId::Plsa,
        AppId::Hmmer,
    ]
}

#[test]
fn precise_baseline_violates_qos_for_cpu_bound_services() {
    for service in [ServiceId::Nginx, ServiceId::Memcached] {
        for app in representative_apps() {
            let outcome = run_colocation(service, &[app], PolicyKind::Precise, &options(3));
            assert!(
                outcome.tail_latency_ratio > 1.0,
                "{service} + precise {app} should violate QoS, got ratio {:.2}",
                outcome.tail_latency_ratio
            );
        }
    }
}

#[test]
fn pliant_restores_qos_and_beats_the_baseline_everywhere() {
    for service in ServiceId::all() {
        for app in representative_apps() {
            let precise = run_colocation(service, &[app], PolicyKind::Precise, &options(5));
            let pliant = run_colocation(service, &[app], PolicyKind::Pliant, &options(5));
            assert!(
                pliant.tail_latency_ratio <= precise.tail_latency_ratio + 0.05,
                "{service}+{app}: Pliant ({:.2}) must not exceed the precise baseline ({:.2})",
                pliant.tail_latency_ratio,
                precise.tail_latency_ratio
            );
            assert!(
                pliant.tail_latency_ratio < 1.25,
                "{service}+{app}: Pliant tail ratio {:.2} should be at or near QoS",
                pliant.tail_latency_ratio
            );
            assert!(
                pliant.qos_violation_fraction < 0.5,
                "{service}+{app}: Pliant should not violate QoS in most intervals"
            );
        }
    }
}

#[test]
fn quality_loss_stays_within_the_tolerance_band() {
    let mut losses = Vec::new();
    for service in ServiceId::all() {
        for app in representative_apps() {
            let pliant = run_colocation(service, &[app], PolicyKind::Pliant, &options(7));
            for a in &pliant.app_outcomes {
                assert!(
                    a.inaccuracy_pct <= 5.5,
                    "{service}+{app}: quality loss {:.1}% exceeds the ~5% threshold",
                    a.inaccuracy_pct
                );
                losses.push(a.inaccuracy_pct);
            }
        }
    }
    let mean = losses.iter().sum::<f64>() / losses.len() as f64;
    assert!(
        mean < 4.0,
        "mean quality loss {mean:.2}% should be a small single-digit figure (paper: 2.1%)"
    );
}

#[test]
fn approximate_applications_keep_roughly_nominal_execution_time() {
    // The paper reports that all applications except water_spatial preserve (or improve)
    // their nominal execution time under Pliant.
    for app in [AppId::Canneal, AppId::Bayesian, AppId::Snp, AppId::Hmmer] {
        let outcome = run_colocation(ServiceId::Nginx, &[app], PolicyKind::Pliant, &options(9));
        let a = &outcome.app_outcomes[0];
        assert!(
            a.relative_execution_time < 1.35,
            "{app}: execution time {:.2}x nominal is too degraded",
            a.relative_execution_time
        );
    }
}

#[test]
fn water_spatial_is_the_pathological_case() {
    // water_spatial's variants barely shorten execution, so constraining its cores shows up
    // as a longer run — exactly the exception the paper calls out.
    let outcome = run_colocation(ServiceId::Memcached, &[AppId::WaterSpatial], PolicyKind::Pliant, &options(11));
    let ws = &outcome.app_outcomes[0];
    let reference = run_colocation(ServiceId::Memcached, &[AppId::Snp], PolicyKind::Pliant, &options(11));
    let snp = &reference.app_outcomes[0];
    assert!(
        ws.relative_execution_time > snp.relative_execution_time,
        "water_spatial ({:.2}x) should be hit harder than SNP ({:.2}x)",
        ws.relative_execution_time,
        snp.relative_execution_time
    );
    assert!(ws.instrumentation_overhead > 0.08, "water_spatial has the worst instrumentation overhead");
}

#[test]
fn mongodb_is_the_most_amenable_co_runner() {
    // MongoDB rarely needs reclaimed cores; memcached almost always needs at least one.
    let mut mongo_cores = 0u32;
    let mut memcached_cores = 0u32;
    for app in representative_apps() {
        mongo_cores += run_colocation(ServiceId::MongoDb, &[app], PolicyKind::Pliant, &options(13))
            .max_extra_service_cores;
        memcached_cores += run_colocation(ServiceId::Memcached, &[app], PolicyKind::Pliant, &options(13))
            .max_extra_service_cores;
    }
    assert!(
        mongo_cores < memcached_cores,
        "MongoDB ({mongo_cores} total cores) should need fewer reclaimed cores than memcached ({memcached_cores})"
    );
}
