//! Integration test: the paper's headline results (§6.2 / Fig. 5), asserted as shape
//! properties on a representative subset of colocations, driven through the
//! Scenario/Suite/Engine API.

use pliant::prelude::*;

fn scenario(service: ServiceId, app: AppId, policy: PolicyKind, seed: u64) -> Scenario {
    Scenario::builder(service)
        .app(app)
        .policy(policy)
        .horizon_intervals(60)
        .seed(seed)
        .build()
}

/// Representative subset spanning all four suites and the paper's named special cases.
fn representative_apps() -> [AppId; 8] {
    [
        AppId::Canneal,
        AppId::Raytrace,
        AppId::WaterSpatial,
        AppId::Streamcluster,
        AppId::Bayesian,
        AppId::Snp,
        AppId::Plsa,
        AppId::Hmmer,
    ]
}

#[test]
fn precise_baseline_violates_qos_for_cpu_bound_services() {
    let engine = Engine::new().parallel();
    let suite = Suite::new(scenario(
        ServiceId::Nginx,
        AppId::Canneal,
        PolicyKind::Precise,
        3,
    ))
    .named("precise-baseline")
    .for_each_service([ServiceId::Nginx, ServiceId::Memcached])
    .for_each_app(representative_apps());
    for cell in engine.run_collect(&suite) {
        assert!(
            cell.outcome.tail_latency_ratio > 1.0,
            "{}: precise baseline should violate QoS, got ratio {:.2}",
            cell.scenario.describe(),
            cell.outcome.tail_latency_ratio
        );
    }
}

#[test]
fn pliant_restores_qos_and_beats_the_baseline_everywhere() {
    let engine = Engine::new().parallel();
    let suite = Suite::new(scenario(
        ServiceId::Nginx,
        AppId::Canneal,
        PolicyKind::Pliant,
        5,
    ))
    .named("pliant-vs-precise")
    .for_each_service(ServiceId::all())
    .for_each_app(representative_apps())
    .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
    let results = engine.run_collect(&suite);
    for pair in results.chunks_exact(2) {
        let (precise, pliant) = (&pair[0], &pair[1]);
        let label = pliant.scenario.describe();
        assert!(
            pliant.outcome.tail_latency_ratio <= precise.outcome.tail_latency_ratio + 0.05,
            "{label}: Pliant ({:.2}) must not exceed the precise baseline ({:.2})",
            pliant.outcome.tail_latency_ratio,
            precise.outcome.tail_latency_ratio
        );
        assert!(
            pliant.outcome.tail_latency_ratio < 1.25,
            "{label}: Pliant tail ratio {:.2} should be at or near QoS",
            pliant.outcome.tail_latency_ratio
        );
        assert!(
            pliant.outcome.qos_violation_fraction < 0.5,
            "{label}: Pliant should not violate QoS in most intervals"
        );
    }
}

#[test]
fn quality_loss_stays_within_the_tolerance_band() {
    let engine = Engine::new().parallel();
    let suite = Suite::new(scenario(
        ServiceId::Nginx,
        AppId::Canneal,
        PolicyKind::Pliant,
        7,
    ))
    .named("quality-loss")
    .for_each_service(ServiceId::all())
    .for_each_app(representative_apps());
    let mut losses = Vec::new();
    for cell in engine.run_collect(&suite) {
        for a in &cell.outcome.app_outcomes {
            assert!(
                a.inaccuracy_pct <= 5.5,
                "{}: quality loss {:.1}% exceeds the ~5% threshold",
                cell.scenario.describe(),
                a.inaccuracy_pct
            );
            losses.push(a.inaccuracy_pct);
        }
    }
    let mean = losses.iter().sum::<f64>() / losses.len() as f64;
    assert!(
        mean < 4.0,
        "mean quality loss {mean:.2}% should be a small single-digit figure (paper: 2.1%)"
    );
}

#[test]
fn approximate_applications_keep_roughly_nominal_execution_time() {
    // The paper reports that all applications except water_spatial preserve (or improve)
    // their nominal execution time under Pliant.
    for app in [AppId::Canneal, AppId::Bayesian, AppId::Snp, AppId::Hmmer] {
        let outcome = scenario(ServiceId::Nginx, app, PolicyKind::Pliant, 9).run();
        let a = &outcome.app_outcomes[0];
        assert!(
            a.relative_execution_time < 1.35,
            "{app}: execution time {:.2}x nominal is too degraded",
            a.relative_execution_time
        );
    }
}

#[test]
fn water_spatial_is_the_pathological_case() {
    // water_spatial's variants barely shorten execution, so constraining its cores shows up
    // as a longer run — exactly the exception the paper calls out.
    let outcome = scenario(
        ServiceId::Memcached,
        AppId::WaterSpatial,
        PolicyKind::Pliant,
        11,
    )
    .run();
    let ws = &outcome.app_outcomes[0];
    let reference = scenario(ServiceId::Memcached, AppId::Snp, PolicyKind::Pliant, 11).run();
    let snp = &reference.app_outcomes[0];
    assert!(
        ws.relative_execution_time > snp.relative_execution_time,
        "water_spatial ({:.2}x) should be hit harder than SNP ({:.2}x)",
        ws.relative_execution_time,
        snp.relative_execution_time
    );
    assert!(
        ws.instrumentation_overhead > 0.08,
        "water_spatial has the worst instrumentation overhead"
    );
}

#[test]
fn mongodb_is_the_most_amenable_co_runner() {
    // MongoDB rarely needs reclaimed cores; memcached almost always needs at least one.
    let engine = Engine::new().parallel();
    let cores_for = |service: ServiceId| -> u32 {
        let suite = Suite::new(scenario(service, AppId::Canneal, PolicyKind::Pliant, 13))
            .for_each_app(representative_apps());
        engine
            .run_collect(&suite)
            .iter()
            .map(|c| c.outcome.max_extra_service_cores)
            .sum()
    };
    let mongo_cores = cores_for(ServiceId::MongoDb);
    let memcached_cores = cores_for(ServiceId::Memcached);
    assert!(
        mongo_cores < memcached_cores,
        "MongoDB ({mongo_cores} total cores) should need fewer reclaimed cores than memcached ({memcached_cores})"
    );
}
