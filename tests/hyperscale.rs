//! Integration tests for the hyperscale fleet approximation.
//!
//! The clustered approximation simulates one representative node per group of
//! interchangeable logical nodes and replicates its contributions. These tests pin
//! the promises the approximation makes:
//!
//! 1. **Error bound** (test-enforced, see README "Hyperscale"): on small fleets where
//!    exact simulation is cheap, the clustered run must reproduce the exact run's
//!    machines-needed decision exactly, and its fleet p99 and energy within stated
//!    relative bounds.
//! 2. **Determinism**: clustered runs are byte-identical across serial and parallel
//!    execution, exactly like exact runs.
//! 3. **Scale**: a 10k-node fleet collapses to a handful of simulated instances while
//!    still reporting logical-fleet statistics.

use pliant::prelude::*;

/// Relative-error bound on fleet p99 (and p99/QoS) between exact and clustered runs
/// of the same small-fleet scenario. Measured headroom: the 12-node day/night check
/// lands near 4% — the bound is 10%.
const P99_REL_BOUND: f64 = 0.10;
/// Relative-error bound on fleet energy. Measured headroom: ~0.1% — the bound is 5%.
const ENERGY_REL_BOUND: f64 = 0.05;
/// Absolute bound on the QoS-violation fraction difference.
const VIOLATION_ABS_BOUND: f64 = 0.05;

fn rel_err(approx: f64, exact: f64) -> f64 {
    (approx - exact).abs() / exact.abs().max(f64::MIN_POSITIVE)
}

/// The day/night scenario of the energy study at a given size, in either mode.
fn diurnal(nodes: usize, approximation: FleetApproximation) -> ClusterScenario {
    let mut scenario = pliant_bench::cluster_energy_scenario_at_scale(nodes, PolicyKind::Pliant, 7);
    scenario.approximation = approximation;
    scenario
}

#[test]
fn clustered_machines_needed_matches_exact_on_small_fleets() {
    // The fig_hyperscale sweep at a 12-node anchor, run both exactly and through the
    // approximation: the QoS verdict at every operating point — and therefore the
    // machines-needed headline per policy — must agree.
    let engine = Engine::new().parallel();
    let fleet_nodes = 12usize;
    let total_load = 2.6 / 6.0 * fleet_nodes as f64;
    for policy in [PolicyKind::Precise, PolicyKind::Pliant] {
        let mut sweeps: Vec<Vec<(usize, ClusterOutcome)>> = vec![Vec::new(), Vec::new()];
        for sixths in [3usize, 4, 5, 6, 7] {
            let nodes = sixths * fleet_nodes / 6;
            for (mi, approximation) in [
                FleetApproximation::Exact,
                FleetApproximation::Clustered {
                    representatives_per_group: 2,
                },
            ]
            .into_iter()
            .enumerate()
            {
                let mut scenario =
                    pliant_bench::cluster_machines_needed_scenario(nodes, total_load, policy, 7)
                        .expect("swept sizes stay below saturation");
                scenario.approximation = approximation;
                let outcome = engine.run_cluster(&scenario);
                assert_eq!(outcome.nodes, nodes, "outcome reports the logical fleet");
                sweeps[mi].push((nodes, outcome));
            }
        }
        for ((nodes, exact), (_, clustered)) in sweeps[0].iter().zip(&sweeps[1]) {
            assert_eq!(
                exact.qos_met(),
                clustered.qos_met(),
                "{policy}: QoS verdict must agree at {nodes} machines \
                 (exact p99/QoS {:.3}, clustered {:.3})",
                exact.fleet_tail_latency_ratio,
                clustered.fleet_tail_latency_ratio
            );
        }
        assert_eq!(
            machines_needed(&sweeps[0]),
            machines_needed(&sweeps[1]),
            "{policy}: the machines-needed headline must survive the approximation"
        );
    }
}

#[test]
fn clustered_p99_and_energy_stay_within_the_stated_bounds() {
    // The error bound the README states, enforced: on the 12-node day/night scenario
    // (autoscaler active, so parking/draining and energy accounting are all in play),
    // the clustered run lands within P99_REL_BOUND / ENERGY_REL_BOUND of exact.
    let engine = Engine::new().parallel();
    let exact = engine.run_cluster(&diurnal(12, FleetApproximation::Exact));
    let clustered = engine.run_cluster(&diurnal(
        12,
        FleetApproximation::Clustered {
            representatives_per_group: 2,
        },
    ));

    assert_eq!(exact.simulated_instances, 12);
    assert!(
        clustered.simulated_instances < 12,
        "the approximation must actually reduce the simulated instance count, got {}",
        clustered.simulated_instances
    );
    assert_eq!(clustered.nodes, 12, "logical fleet size is preserved");

    let p99_err = rel_err(clustered.fleet_p99_s, exact.fleet_p99_s);
    assert!(
        p99_err < P99_REL_BOUND,
        "fleet p99 error {p99_err:.4} exceeds the {P99_REL_BOUND} bound \
         ({:.6}s clustered vs {:.6}s exact)",
        clustered.fleet_p99_s,
        exact.fleet_p99_s
    );
    let ratio_err = rel_err(
        clustered.fleet_tail_latency_ratio,
        exact.fleet_tail_latency_ratio,
    );
    assert!(
        ratio_err < P99_REL_BOUND,
        "p99/QoS error {ratio_err:.4} exceeds the {P99_REL_BOUND} bound"
    );
    let energy_err = rel_err(clustered.fleet_energy_j, exact.fleet_energy_j);
    assert!(
        energy_err < ENERGY_REL_BOUND,
        "fleet energy error {energy_err:.4} exceeds the {ENERGY_REL_BOUND} bound \
         ({:.1}J clustered vs {:.1}J exact)",
        clustered.fleet_energy_j,
        exact.fleet_energy_j
    );
    let violation_diff =
        (clustered.fleet_qos_violation_fraction - exact.fleet_qos_violation_fraction).abs();
    assert!(
        violation_diff < VIOLATION_ABS_BOUND,
        "QoS-violation fraction differs by {violation_diff:.4} (> {VIOLATION_ABS_BOUND})"
    );
}

#[test]
fn clustered_runs_are_byte_identical_across_execution_modes() {
    // Same guarantee the exact engine gives: parallelism changes wall-clock, never
    // output. The day/night scenario exercises the grouped autoscaler plan, grouped
    // balancer split, and weighted job placement.
    let scenario = diurnal(
        12,
        FleetApproximation::Clustered {
            representatives_per_group: 2,
        },
    );
    let serial = Engine::new().run_cluster(&scenario);
    let parallel = Engine::new().parallel().run_cluster(&scenario);
    assert_eq!(
        serde_json::to_string(&serial).expect("serializable"),
        serde_json::to_string(&parallel).expect("serializable"),
        "clustered fleets must stay deterministic under parallel execution"
    );
}

#[test]
fn ten_thousand_node_fleet_collapses_to_a_handful_of_instances() {
    // The hyperscale headline: 10k logical nodes, a handful of simulated instances,
    // full logical-fleet statistics. (The >= 10x throughput-over-exact claim is gated
    // in perf_report's hyperscale metric, not re-timed here.)
    let scenario = diurnal(
        10_000,
        FleetApproximation::Clustered {
            representatives_per_group: 4,
        },
    );
    let outcome = Engine::new().parallel().run_cluster(&scenario);
    assert_eq!(outcome.nodes, 10_000);
    assert_eq!(
        outcome.approximation,
        FleetApproximation::Clustered {
            representatives_per_group: 4
        }
    );
    assert!(
        outcome.simulated_instances < 100,
        "expected a handful of instances, got {}",
        outcome.simulated_instances
    );
    // Replica weights must conserve the population: per-node outcomes carry their
    // replication factor and the factors sum to the logical fleet.
    let replicated: usize = outcome.node_outcomes.iter().map(|n| n.replicas).sum();
    assert_eq!(replicated, 10_000);
    assert!(outcome.fleet_samples > 0);
    assert!(outcome.fleet_p99_s.is_finite() && outcome.fleet_p99_s > 0.0);
    assert!(outcome.fleet_energy_j.is_finite() && outcome.fleet_energy_j > 0.0);
    assert!(
        outcome.mean_active_nodes <= 10_000.0 && outcome.mean_active_nodes > 0.0,
        "active-node statistics are in logical-node units"
    );
}

/// Regression (observability PR audit): every fleet trace series recorded from
/// clustered representatives must be replica-weighted exactly like the outcome
/// aggregates it sits next to. A mixed convention — say, per-instance power under a
/// logical-fleet energy total — would make the exported traces contradict the
/// headline numbers they are supposed to explain.
#[test]
fn clustered_trace_series_stay_consistent_with_outcome_aggregates() {
    let scenario = diurnal(
        24,
        FleetApproximation::Clustered {
            representatives_per_group: 2,
        },
    );
    let outcome = Engine::new().parallel().run_cluster(&scenario);
    assert!(
        outcome.simulated_instances < outcome.nodes,
        "the approximation must actually collapse the fleet"
    );

    // fleet_power_w integrates to the fleet energy total (same replica weighting,
    // different summation order — hence the tolerance).
    let power = outcome.trace.get("fleet_power_w").expect("power series");
    let integrated: f64 = power.values().iter().sum::<f64>() * scenario.decision_interval_s;
    let rel = (integrated - outcome.fleet_energy_j).abs() / outcome.fleet_energy_j;
    assert!(
        rel < 1e-9,
        "sum(fleet_power_w)*dt = {integrated} vs fleet_energy_j = {} (rel {rel:.2e})",
        outcome.fleet_energy_j
    );

    // total_extra_cores peaks at the outcome's replica-weighted maximum.
    let cores = outcome
        .trace
        .get("total_extra_cores")
        .expect("cores series");
    assert_eq!(
        cores.max_value().expect("non-empty"),
        outcome.max_total_extra_cores as f64
    );

    // active_nodes averages to the outcome's logical mean and never exceeds the
    // logical fleet.
    let active = outcome.trace.get("active_nodes").expect("active series");
    assert_eq!(
        active.mean_value().expect("non-empty"),
        outcome.mean_active_nodes
    );
    assert!(active.max_value().expect("non-empty") <= outcome.nodes as f64);
    assert_eq!(
        active.min_value().expect("non-empty"),
        outcome.min_active_nodes as f64
    );

    // violating_nodes is in logical-node units too: no interval can report more
    // violating nodes than the fleet holds.
    let violating = outcome
        .trace
        .get("violating_nodes")
        .expect("violating series");
    assert!(violating.max_value().expect("non-empty") <= outcome.nodes as f64);
}
