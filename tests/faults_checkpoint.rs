//! Integration tests for fault injection and checkpoint/restore.
//!
//! These pin the PR's promises:
//!
//! 1. **Checkpoint round-trip**: stopping a fleet run mid-flight, serializing the
//!    checkpoint through JSON, restoring it into a freshly built run, and finishing
//!    yields a byte-identical outcome to never having stopped — in exact and
//!    clustered modes, under serial and parallel execution, with faults in flight
//!    at the snapshot instant.
//! 2. **The failure headline**: under the fixed `fig_failure` fault trace (one node
//!    crash whose batch job is re-queued, then a degraded-frequency straggler),
//!    Pliant sees no more QoS-violating intervals than Precise at every fleet size.
//! 3. **Clustered fault semantics**: a fault aimed at a replicated node group splits
//!    the target out of its group (instance count grows) while the fleet totals stay
//!    within the same error bounds the hyperscale tests enforce fault-free.
//! 4. **Observability**: fault transitions surface as first-class obs events.

use pliant::prelude::*;
use pliant::telemetry::obs::{EventKind, ObsLevel};

/// Same relative-error bounds the fault-free hyperscale tests enforce
/// (see `tests/hyperscale.rs`).
const P99_REL_BOUND: f64 = 0.10;
const ENERGY_REL_BOUND: f64 = 0.05;
const VIOLATION_ABS_BOUND: f64 = 0.05;

fn rel_err(approx: f64, exact: f64) -> f64 {
    (approx - exact).abs() / exact.abs().max(f64::MIN_POSITIVE)
}

/// The `fig_failure` operating point: one mid-run crash (node 1, intervals 30..50,
/// job re-queued) and one straggler (node 2 at 0.6x frequency, intervals 60..75).
fn failure_scenario(nodes: usize, policy: PolicyKind) -> ClusterScenario {
    pliant_bench::cluster_failure_scenario(nodes, 2.6, policy, 7)
        .expect("swept sizes stay below saturation")
}

fn outcome_json(outcome: &ClusterOutcome) -> String {
    serde_json::to_string(outcome).expect("outcomes are serializable")
}

#[test]
fn checkpoint_roundtrip_is_byte_identical_in_every_mode() {
    // Snapshot at interval 40: node 1 is mid-outage (down since 30, back at 50), its
    // job is sitting re-queued, and the straggler window is still ahead — the
    // checkpoint must carry fault health, scheduler queue, and RNG streams for the
    // resumed run to land on the same bytes.
    for approximation in [
        FleetApproximation::Exact,
        FleetApproximation::Clustered {
            representatives_per_group: 2,
        },
    ] {
        for parallel in [false, true] {
            let engine = if parallel {
                Engine::new().parallel()
            } else {
                Engine::new()
            };
            let mut scenario = failure_scenario(6, PolicyKind::Pliant);
            scenario.approximation = approximation;

            let (uninterrupted, _) = ClusterRun::new(&scenario, &engine).finish();

            let mut first_leg = ClusterRun::new(&scenario, &engine);
            while first_leg.intervals() < 40 && first_leg.step() {}
            // Serialize through JSON exactly like the fig_cluster CLI does, so the
            // on-disk format is what round-trips.
            let wire = serde_json::to_string(&first_leg.checkpoint())
                .expect("checkpoints are serializable");
            let checkpoint: ClusterRunCheckpoint =
                serde_json::from_str(&wire).expect("checkpoints round-trip through JSON");

            let mut resumed = ClusterRun::new(&scenario, &engine);
            resumed.restore(&checkpoint).expect("restore succeeds");
            assert_eq!(resumed.intervals(), 40, "resume picks up at the snapshot");
            let (resumed_outcome, _) = resumed.finish();

            assert_eq!(
                outcome_json(&uninterrupted),
                outcome_json(&resumed_outcome),
                "{approximation:?} parallel={parallel}: resumed run must be \
                 byte-identical to the uninterrupted run"
            );
        }
    }
}

#[test]
fn checkpoint_roundtrip_is_byte_identical_with_a_job_mid_migration() {
    // The topology operating point: a racked Pliant fleet with active consolidation,
    // where the autoscaler live-migrates a batch job off a draining node (interval 46
    // on this seed) and parks the drain the same interval. Snapshot at interval 48:
    // the migrated job is still in flight on its destination — its extracted/implanted
    // state, the source's latched placeholder slot, the rack-sampling RNG, and the
    // per-rack power measurements must all travel in the checkpoint for the resumed
    // run to land on the same bytes.
    for approximation in [
        FleetApproximation::Exact,
        FleetApproximation::Clustered {
            representatives_per_group: 2,
        },
    ] {
        let mut scenario = pliant_bench::cluster_topology_scenario(PolicyKind::Pliant, true, 7);
        scenario.approximation = approximation;
        let engine = Engine::new().parallel();

        // Pin that the snapshot really lands mid-migration: the traced twin (tracing
        // observes decisions, it never alters them) must migrate before interval 48.
        let (_, log) = engine.run_cluster_traced(&scenario, ObsLevel::Decisions);
        let migrated_at: Vec<u32> = log
            .records
            .iter()
            .filter(|r| matches!(r.event, pliant::telemetry::obs::Event::JobMigrated { .. }))
            .map(|r| r.interval)
            .collect();
        assert!(
            migrated_at.iter().any(|&i| i < 48),
            "{approximation:?}: the operating point must migrate a job before the \
             snapshot interval (got migrations at {migrated_at:?})"
        );

        let (uninterrupted, _) = ClusterRun::new(&scenario, &engine).finish();

        let mut first_leg = ClusterRun::new(&scenario, &engine);
        while first_leg.intervals() < 48 && first_leg.step() {}
        let wire =
            serde_json::to_string(&first_leg.checkpoint()).expect("checkpoints are serializable");
        let checkpoint: ClusterRunCheckpoint =
            serde_json::from_str(&wire).expect("checkpoints round-trip through JSON");

        let mut resumed = ClusterRun::new(&scenario, &engine);
        resumed.restore(&checkpoint).expect("restore succeeds");
        let (resumed_outcome, _) = resumed.finish();

        assert_eq!(
            outcome_json(&uninterrupted),
            outcome_json(&resumed_outcome),
            "{approximation:?}: a resume with a job mid-migration must be \
             byte-identical to the uninterrupted run"
        );
    }
}

#[test]
fn restore_rejects_a_checkpoint_from_a_different_scenario() {
    let engine = Engine::new();
    let mut donor = ClusterRun::new(&failure_scenario(6, PolicyKind::Pliant), &engine);
    while donor.intervals() < 10 && donor.step() {}
    let checkpoint = donor.checkpoint();

    let mut other = ClusterRun::new(&failure_scenario(5, PolicyKind::Pliant), &engine);
    let err = other
        .restore(&checkpoint)
        .expect_err("a 6-node checkpoint must not restore into a 5-node fleet");
    assert!(
        !err.is_empty(),
        "the rejection carries a diagnostic message"
    );
}

#[test]
fn faulted_runs_are_deterministic_across_execution_modes() {
    // Fault injection and recovery live on the fleet coordinator path, so the usual
    // guarantee must survive: parallelism changes wall-clock, never output.
    for approximation in [
        FleetApproximation::Exact,
        FleetApproximation::Clustered {
            representatives_per_group: 2,
        },
    ] {
        let mut scenario = failure_scenario(6, PolicyKind::Pliant);
        scenario.approximation = approximation;
        let serial = Engine::new().run_cluster(&scenario);
        let parallel = Engine::new().parallel().run_cluster(&scenario);
        assert_eq!(
            outcome_json(&serial),
            outcome_json(&parallel),
            "{approximation:?}: faulted fleets must stay deterministic under \
             parallel execution"
        );
    }
}

#[test]
fn pliant_never_violates_more_intervals_than_precise_under_the_failure_trace() {
    // The fig_failure headline, pinned: at every swept fleet size both policies see
    // the identical fault schedule under common random numbers, and Pliant's
    // reclaimed headroom absorbs the shed traffic at least as well as the Precise
    // baseline — measured in intervals with at least one QoS-violating node.
    let engine = Engine::new().parallel();
    let mut strictly_better_somewhere = false;
    for nodes in [5usize, 6] {
        let mut violating = [0usize; 2];
        for (pi, policy) in [PolicyKind::Precise, PolicyKind::Pliant]
            .into_iter()
            .enumerate()
        {
            let outcome = engine.run_cluster(&failure_scenario(nodes, policy));
            let faults = outcome.faults.expect("failure scenarios carry fault stats");
            assert_eq!(
                faults.crashes, 1,
                "{policy} at {nodes}: one scheduled crash"
            );
            assert_eq!(faults.degradations, 1, "{policy} at {nodes}: one straggler");
            assert!(
                faults.jobs_requeued >= 1,
                "{policy} at {nodes}: the crashed node's job is re-queued"
            );
            assert!(
                faults.availability < 1.0 && faults.availability > 0.9,
                "{policy} at {nodes}: one 20-interval outage on one of {nodes} nodes, \
                 got availability {}",
                faults.availability
            );
            violating[pi] = outcome
                .trace
                .get("violating_nodes")
                .expect("violating series")
                .points()
                .iter()
                .filter(|p| p.value > 0.0)
                .count();
        }
        assert!(
            violating[1] <= violating[0],
            "at {nodes} machines Pliant must not violate QoS in more intervals than \
             Precise (pliant {} vs precise {})",
            violating[1],
            violating[0]
        );
        strictly_better_somewhere |= violating[1] < violating[0];
    }
    assert!(
        strictly_better_somewhere,
        "Pliant must strictly reduce QoS-violating intervals at some swept size"
    );
}

#[test]
fn clustered_group_fault_splits_the_group_and_conserves_totals() {
    // A crash aimed at a node that the clustered approximation folded into a
    // replicated group: the planner must carve the target out into its own exact
    // instance (so the fault hits one logical node, not a whole group's worth of
    // replicas), and the fleet aggregates must stay within the bounds the fault-free
    // hyperscale tests enforce.
    let faults = FaultProfile {
        scheduled: vec![
            ScheduledFault {
                node: 5,
                at_interval: 30,
                duration_intervals: 20,
                kind: FaultKind::Crash,
            },
            ScheduledFault {
                node: 8,
                at_interval: 60,
                duration_intervals: 15,
                kind: FaultKind::Degrade { factor: 0.7 },
            },
        ],
        ..FaultProfile::new()
    };
    // The 12-node machines-needed operating point (same anchor as the hyperscale
    // tests). No autoscaler: group park/unpark decisions quantize differently under
    // the approximation and would dominate the comparison; the fault semantics under
    // test are the planner's group split and the balancer's shedding.
    let scenario_with = |approximation: FleetApproximation, faulted: bool| {
        let mut scenario =
            pliant_bench::cluster_machines_needed_scenario(12, 5.2, PolicyKind::Pliant, 7)
                .expect("the 12-node anchor stays below saturation");
        scenario.approximation = approximation;
        if faulted {
            scenario.fault_profile = Some(faults.clone());
        }
        scenario
    };
    let clustered = FleetApproximation::Clustered {
        representatives_per_group: 2,
    };
    let engine = Engine::new().parallel();

    let baseline = engine.run_cluster(&scenario_with(clustered, false));
    let approx = engine.run_cluster(&scenario_with(clustered, true));
    let exact = engine.run_cluster(&scenario_with(FleetApproximation::Exact, true));

    // The faulted logical nodes are isolated out of their groups.
    assert!(
        approx.simulated_instances > baseline.simulated_instances,
        "faulted nodes must be carved into their own instances \
         ({} faulted vs {} fault-free)",
        approx.simulated_instances,
        baseline.simulated_instances
    );
    assert!(
        approx.simulated_instances < 12,
        "the rest of the fleet stays grouped, got {} instances",
        approx.simulated_instances
    );
    let replicated: usize = approx.node_outcomes.iter().map(|n| n.replicas).sum();
    assert_eq!(
        replicated, 12,
        "replica weights still conserve the population"
    );

    // Fault accounting is in logical-node units, so it agrees exactly with the
    // exact run: the schedule is compiled over logical nodes before planning.
    let approx_faults = approx.faults.expect("fault stats");
    let exact_faults = exact.faults.expect("fault stats");
    assert_eq!(approx_faults.crashes, exact_faults.crashes);
    assert_eq!(approx_faults.degradations, exact_faults.degradations);
    assert_eq!(
        approx_faults.down_node_intervals,
        exact_faults.down_node_intervals
    );
    assert_eq!(approx_faults.availability, exact_faults.availability);

    // Fleet totals stay within the established hyperscale bounds under failure.
    let p99_err = rel_err(approx.fleet_p99_s, exact.fleet_p99_s);
    assert!(
        p99_err < P99_REL_BOUND,
        "faulted fleet p99 error {p99_err:.4} exceeds the {P99_REL_BOUND} bound \
         ({:.6}s clustered vs {:.6}s exact)",
        approx.fleet_p99_s,
        exact.fleet_p99_s
    );
    let energy_err = rel_err(approx.fleet_energy_j, exact.fleet_energy_j);
    assert!(
        energy_err < ENERGY_REL_BOUND,
        "faulted fleet energy error {energy_err:.4} exceeds the {ENERGY_REL_BOUND} \
         bound ({:.1}J clustered vs {:.1}J exact)",
        approx.fleet_energy_j,
        exact.fleet_energy_j
    );
    let violation_diff =
        (approx.fleet_qos_violation_fraction - exact.fleet_qos_violation_fraction).abs();
    assert!(
        violation_diff < VIOLATION_ABS_BOUND,
        "faulted QoS-violation fraction differs by {violation_diff:.4} \
         (> {VIOLATION_ABS_BOUND})"
    );
    // The latency histogram behind the percentile aggregates a comparable number of
    // logical samples: replica weighting survives the group split.
    let sample_err = rel_err(approx.fleet_samples as f64, exact.fleet_samples as f64);
    assert!(
        sample_err < P99_REL_BOUND,
        "replica-weighted sample totals diverged by {sample_err:.4} \
         ({} clustered vs {} exact)",
        approx.fleet_samples,
        exact.fleet_samples
    );
}

#[test]
fn rack_outage_takes_down_the_whole_power_domain() {
    // The topology operating point injects one whole-rack power-domain failure:
    // rack 0 (nodes 0 and 1) crashes at interval 40 for 25 intervals. The outage
    // must compose with the fault-stats subsystem exactly like per-node crashes —
    // availability accounts both members' downtime — and the clustered
    // approximation must agree on the logical-unit fault accounting while staying
    // within the established hyperscale bounds on the fleet aggregates.
    let engine = Engine::new().parallel();
    let scenario = pliant_bench::cluster_topology_scenario(PolicyKind::Pliant, false, 7);
    let (exact, log) = engine.run_cluster_traced(&scenario, ObsLevel::Decisions);

    let stats = exact
        .faults
        .expect("rack-outage scenarios carry fault stats");
    assert_eq!(stats.crashes, 2, "both members of rack 0 crash");
    assert_eq!(
        stats.down_node_intervals,
        2 * 25,
        "availability accounts whole-rack downtime"
    );
    let expected = 1.0 - (2.0 * 25.0) / (8.0 * exact.intervals as f64);
    assert!(
        (stats.availability - expected).abs() < 1e-12,
        "availability {} must equal {expected}",
        stats.availability
    );

    // The cause surfaces once as a fleet-level event; the per-member crashes it
    // expands into surface as ordinary NodeFailed events.
    let summary = log.summary();
    let count = |kind| summary.counter(kind).map_or(0, |c: &_| c.count);
    assert_eq!(count(EventKind::RackOutage), 1);
    assert_eq!(count(EventKind::NodeFailed), 2);
    assert_eq!(count(EventKind::NodeRecovered), 2);

    // Clustered runs agree on the logical-unit fault accounting and conserve the
    // population, within the fault-free hyperscale error bounds.
    let mut clustered_scenario = scenario;
    clustered_scenario.approximation = FleetApproximation::Clustered {
        representatives_per_group: 2,
    };
    let approx = engine.run_cluster(&clustered_scenario);
    let approx_stats = approx.faults.expect("fault stats");
    assert_eq!(approx_stats.crashes, stats.crashes);
    assert_eq!(approx_stats.down_node_intervals, stats.down_node_intervals);
    assert_eq!(approx_stats.availability, stats.availability);
    let replicated: usize = approx.node_outcomes.iter().map(|n| n.replicas).sum();
    assert_eq!(replicated, 8, "replica weights conserve the population");
    let p99_err = rel_err(approx.fleet_p99_s, exact.fleet_p99_s);
    assert!(
        p99_err < P99_REL_BOUND,
        "racked fleet p99 error {p99_err:.4} exceeds the {P99_REL_BOUND} bound"
    );
    let energy_err = rel_err(approx.fleet_energy_j, exact.fleet_energy_j);
    assert!(
        energy_err < ENERGY_REL_BOUND,
        "racked fleet energy error {energy_err:.4} exceeds the {ENERGY_REL_BOUND} bound"
    );
    let violation_diff =
        (approx.fleet_qos_violation_fraction - exact.fleet_qos_violation_fraction).abs();
    assert!(
        violation_diff < VIOLATION_ABS_BOUND,
        "racked QoS-violation fraction differs by {violation_diff:.4}"
    );
}

#[test]
fn fault_transitions_surface_as_obs_events() {
    let engine = Engine::new().parallel();
    let scenario = failure_scenario(5, PolicyKind::Pliant);
    let (_, log) = engine.run_cluster_traced(&scenario, ObsLevel::Decisions);
    let summary = log.summary();
    for kind in [
        EventKind::NodeFailed,
        EventKind::NodeRecovered,
        EventKind::NodeDegraded,
        EventKind::JobRequeued,
    ] {
        let counter = summary
            .counter(kind)
            .unwrap_or_else(|| panic!("{} events must be recorded", kind.name()));
        assert!(counter.count > 0, "{} count is zero", kind.name());
    }
    // Both injected faults recover inside the horizon, so the stream is balanced:
    // one NodeFailed + one NodeDegraded, two NodeRecovered.
    let count = |kind| summary.counter(kind).map_or(0, |c| c.count);
    assert_eq!(count(EventKind::NodeFailed), 1);
    assert_eq!(count(EventKind::NodeDegraded), 1);
    assert_eq!(count(EventKind::NodeRecovered), 2);
    assert_eq!(count(EventKind::JobRequeued), 1);
}
