//! Integration test: the cluster engine's core guarantees.
//!
//! 1. `Engine::run_cluster` in serial and parallel mode must produce byte-identical
//!    serialized [`ClusterOutcome`]s for the same seed — node-level parallelism changes
//!    wall-clock time, never output.
//! 2. The fleet p99 reported from the merged per-node histograms must match a recompute
//!    over every latency sample the fleet produced.
//! 3. Under common random numbers, the Pliant fleet absorbs load the Precise fleet
//!    cannot, and batch jobs flow through the queue deterministically.

use pliant::prelude::*;

fn jobs() -> Vec<AppId> {
    vec![
        AppId::Canneal,
        AppId::Snp,
        AppId::Bayesian,
        AppId::KMeans,
        AppId::Canneal,
        AppId::Snp,
    ]
}

fn scenario() -> ClusterScenario {
    ClusterScenario::builder(ServiceId::Memcached)
        .nodes(4)
        .jobs(jobs())
        .avg_node_load(0.7)
        .horizon_intervals(30)
        .seed(2024)
        .build()
}

#[test]
fn cluster_runs_are_byte_identical_across_execution_modes() {
    let scenario = scenario();
    let serial = Engine::new().run_cluster(&scenario);
    let parallel = Engine::new().parallel().run_cluster(&scenario);
    let two_workers = Engine::new().parallel_threads(2).run_cluster(&scenario);
    let serial_json = serde_json::to_string(&serial).expect("serializable");
    assert_eq!(
        serial_json,
        serde_json::to_string(&parallel).expect("serializable"),
        "full parallelism must not change any fleet statistic"
    );
    assert_eq!(
        serial_json,
        serde_json::to_string(&two_workers).expect("serializable"),
        "a partial worker pool must not change any fleet statistic either"
    );
}

#[test]
fn fleet_p99_matches_a_recompute_over_all_samples() {
    use pliant::telemetry::histogram::LatencyHistogram;

    let scenario = scenario();
    let outcome = Engine::new().run_cluster(&scenario);

    // Re-drive the same fleet through the lower-level ClusterSim and pool every latency
    // sample every node produced; the merged-histogram fleet p99 must equal the p99 of
    // one histogram over the pooled samples (histogram merging is exact).
    let mut sim = ClusterSim::new(&scenario, Engine::new().catalog());
    let mut pooled = LatencyHistogram::new();
    let mut samples = 0u64;
    for interval_index in 0..scenario.max_intervals() {
        let interval = sim.advance();
        if interval_index < scenario.warmup_intervals {
            continue; // warm-up intervals are excluded from the QoS statistics
        }
        for node_interval in &interval.nodes {
            for &latency_s in &node_interval.observation.latency_samples_s {
                pooled.record(latency_s * 1e6);
                samples += 1;
            }
        }
    }
    assert_eq!(outcome.fleet_samples, samples);
    assert_eq!(
        outcome.fleet_p99_s,
        pooled.p99() / 1e6,
        "merged per-node histograms must reproduce the pooled-sample quantile exactly"
    );
    // The mean depends on summation order (per-node partial sums vs one chronological
    // sum), so it agrees to floating-point reassociation error, not bit-for-bit.
    let mean_rel_err =
        (outcome.fleet_mean_latency_s - pooled.mean() / 1e6).abs() / (pooled.mean() / 1e6);
    assert!(
        mean_rel_err < 1e-12,
        "fleet mean must match the pooled mean up to reassociation error ({mean_rel_err:.2e})"
    );
}

#[test]
fn cluster_suites_pair_policies_under_common_random_numbers() {
    let suite = ClusterSuite::new(scenario())
        .named("pairing")
        .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
    let cells = Engine::new().parallel().run_cluster_collect(&suite);
    assert_eq!(cells.len(), 2);
    assert_eq!(cells[0].scenario.seed, cells[1].scenario.seed);
    let precise = &cells[0].outcome;
    let pliant = &cells[1].outcome;
    // Both fleets saw the same offered-load sequence.
    assert_eq!(
        precise.mean_total_offered_load,
        pliant.mean_total_offered_load
    );
    // At 70% average load, memcached nodes co-located with precise batch work violate
    // QoS; Pliant absorbs the interference.
    assert!(
        pliant.fleet_tail_latency_ratio < precise.fleet_tail_latency_ratio,
        "Pliant fleet p99/QoS ({:.2}) must beat Precise ({:.2})",
        pliant.fleet_tail_latency_ratio,
        precise.fleet_tail_latency_ratio
    );
    assert!(
        pliant.fleet_qos_violation_fraction < precise.fleet_qos_violation_fraction,
        "Pliant must violate QoS on fewer node-intervals"
    );
}

#[test]
fn replayed_cluster_archives_reproduce_the_run_bit_for_bit() {
    let scenario = scenario();
    let engine = Engine::new();
    let original = engine.run_cluster(&scenario);
    let archived = serde_json::to_string(&scenario).expect("serializable");
    let restored: ClusterScenario = serde_json::from_str(&archived).expect("deserializable");
    assert_eq!(restored, scenario);
    let replayed = engine.run_cluster(&restored);
    assert_eq!(
        serde_json::to_string(&original).unwrap(),
        serde_json::to_string(&replayed).unwrap(),
        "a replayed archive must reproduce the original fleet run bit-for-bit"
    );
}

#[test]
fn pliant_fleet_needs_fewer_machines_than_precise_at_the_qos_target() {
    // The paper's headline fleet result, at the exact operating point `fig_cluster`
    // runs (the scenario constructor is shared with the binary): 2.6 node-saturation
    // units of memcached traffic must be served while every node co-locates one
    // long-running batch job. Under common random numbers the Precise baseline needs a
    // 5th machine to meet QoS; Pliant absorbs the interference by approximating the
    // co-runners and serves the same load with 4.
    let total_load = 2.6;
    let engine = Engine::new().parallel();
    let mut sweeps: Vec<Vec<(usize, ClusterOutcome)>> = vec![Vec::new(), Vec::new()];
    for nodes in 3usize..=6 {
        for (pi, policy) in [PolicyKind::Precise, PolicyKind::Pliant]
            .into_iter()
            .enumerate()
        {
            let scenario =
                pliant_bench::cluster_machines_needed_scenario(nodes, total_load, policy, 7)
                    .expect("2.6 node-units fit every swept fleet size");
            let outcome = engine.run_cluster(&scenario);
            sweeps[pi].push((nodes, outcome));
        }
    }
    let precise = machines_needed(&sweeps[0]).expect("precise meets QoS at some size");
    let pliant = machines_needed(&sweeps[1]).expect("pliant meets QoS at some size");
    assert!(
        pliant < precise,
        "pliant must serve the same load with fewer machines ({pliant} vs {precise})"
    );
    assert_eq!(precise, 5);
    assert_eq!(pliant, 4);
    // The saving comes from approximation: at the 4-node operating point the Pliant
    // fleet runs its jobs approximately (non-zero quality loss), the Precise fleet
    // never does.
    let pliant_4 = &sweeps[1].iter().find(|(n, _)| *n == 4).unwrap().1;
    let precise_4 = &sweeps[0].iter().find(|(n, _)| *n == 4).unwrap().1;
    assert!(pliant_4.qos_met() && !precise_4.qos_met());
    assert!(pliant_4.mean_completed_inaccuracy_pct() > 0.0);
    assert_eq!(precise_4.mean_completed_inaccuracy_pct(), 0.0);
}

#[test]
fn balancer_policies_change_distribution_but_conserve_load() {
    let base = scenario();
    let suite = ClusterSuite::new(base)
        .named("balancers")
        .sweep_balancers(BalancerKind::all());
    let cells = Engine::new().run_cluster_collect(&suite);
    for cell in &cells {
        let assigned: f64 = cell
            .outcome
            .node_outcomes
            .iter()
            .map(|n| n.mean_assigned_load)
            .sum();
        assert!(
            (assigned - cell.outcome.mean_total_offered_load).abs() < 1e-9,
            "{}: balancers must conserve offered load",
            cell.scenario.describe()
        );
    }
    // Round-robin splits evenly; the adaptive balancers need not.
    let rr = &cells[0].outcome;
    for node in &rr.node_outcomes {
        assert!(
            (node.mean_assigned_load - rr.mean_total_offered_load / rr.nodes as f64).abs() < 1e-9,
            "round-robin assigns every node the same mean load"
        );
    }
}
