//! Integration tests: end-to-end determinism, load sensitivity (Fig. 8), decision-interval
//! sensitivity (Fig. 9), and the effort breakdown (Fig. 10).

use pliant::prelude::*;
use pliant::runtime::experiment::{classify_effort, EffortClass};

fn options(seed: u64) -> ExperimentOptions {
    ExperimentOptions {
        max_intervals: 40,
        seed,
        ..ExperimentOptions::default()
    }
}

#[test]
fn identical_seeds_reproduce_identical_outcomes() {
    let a = run_colocation(ServiceId::Memcached, &[AppId::Plsa], PolicyKind::Pliant, &options(123));
    let b = run_colocation(ServiceId::Memcached, &[AppId::Plsa], PolicyKind::Pliant, &options(123));
    assert_eq!(a.mean_p99_s, b.mean_p99_s);
    assert_eq!(a.qos_violation_fraction, b.qos_violation_fraction);
    assert_eq!(a.app_outcomes[0].inaccuracy_pct, b.app_outcomes[0].inaccuracy_pct);
    let c = run_colocation(ServiceId::Memcached, &[AppId::Plsa], PolicyKind::Pliant, &options(124));
    assert_ne!(a.mean_p99_s, c.mean_p99_s, "different seeds should differ");
}

#[test]
fn low_load_runs_mostly_precise_and_high_load_needs_intervention() {
    // Fig. 8: below ~60% load the approximate workload can stay (mostly) precise; at high
    // load approximation and core reclamation are required.
    let low = load_sweep(ServiceId::Nginx, AppId::Canneal, &[0.4], &options(9));
    let high = load_sweep(ServiceId::Nginx, AppId::Canneal, &[0.9], &options(9));
    let (_, low_outcome) = &low[0];
    let (_, high_outcome) = &high[0];
    assert!(low_outcome.app_outcomes[0].inaccuracy_pct <= high_outcome.app_outcomes[0].inaccuracy_pct + 0.2);
    assert!(low_outcome.max_extra_service_cores <= high_outcome.max_extra_service_cores);
    assert!(low_outcome.tail_latency_ratio < high_outcome.tail_latency_ratio);
}

#[test]
fn coarse_decision_intervals_prolong_violations() {
    // Fig. 9: decision intervals above ~1 s leave the interactive service violating QoS for
    // longer before Pliant reacts.
    let sweep = interval_sweep(ServiceId::Memcached, AppId::Streamcluster, &[1.0, 8.0], &options(31));
    let fine = &sweep[0].1;
    let coarse = &sweep[1].1;
    assert!(
        fine.qos_violation_fraction <= coarse.qos_violation_fraction + 0.05,
        "1 s interval ({:.2}) should violate no more than an 8 s interval ({:.2})",
        fine.qos_violation_fraction,
        coarse.qos_violation_fraction
    );
}

#[test]
fn effort_breakdown_matches_service_strictness() {
    // Fig. 10: memcached needs reclaimed cores more often than MongoDB.
    let apps = [AppId::Canneal, AppId::Bayesian, AppId::Snp, AppId::Raytrace, AppId::Plsa, AppId::Hmmer];
    let needs_cores = |service: ServiceId| -> usize {
        apps.iter()
            .filter(|&&app| {
                let o = run_colocation(service, &[app], PolicyKind::Pliant, &options(41));
                classify_effort(&o) != EffortClass::ApproximationOnly
            })
            .count()
    };
    let memcached = needs_cores(ServiceId::Memcached);
    let mongodb = needs_cores(ServiceId::MongoDb);
    assert!(
        mongodb <= memcached,
        "MongoDB ({mongodb}) should need core reclamation no more often than memcached ({memcached})"
    );
}

#[test]
fn reclaim_only_ablation_sacrifices_more_batch_performance_than_pliant() {
    // Without approximation, restoring QoS requires taking more cores for longer, which
    // shows up as a longer batch execution time.
    let pliant = run_colocation(ServiceId::Memcached, &[AppId::Bayesian], PolicyKind::Pliant, &options(51));
    let reclaim_only =
        run_colocation(ServiceId::Memcached, &[AppId::Bayesian], PolicyKind::ReclaimOnly, &options(51));
    assert!(
        reclaim_only.max_extra_service_cores >= pliant.max_extra_service_cores,
        "reclaim-only should take at least as many cores as Pliant"
    );
    assert!(
        reclaim_only.app_outcomes[0].relative_execution_time
            >= pliant.app_outcomes[0].relative_execution_time - 0.05,
        "reclaim-only should not finish the batch job faster than Pliant"
    );
    assert_eq!(reclaim_only.app_outcomes[0].inaccuracy_pct, 0.0);
}
