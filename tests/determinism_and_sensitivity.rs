//! Integration tests: end-to-end determinism, load sensitivity (Fig. 8), decision-interval
//! sensitivity (Fig. 9), and the effort breakdown (Fig. 10), driven through the
//! Scenario/Suite/Engine API.

use pliant::prelude::*;

fn scenario(service: ServiceId, app: AppId, policy: PolicyKind, seed: u64) -> Scenario {
    Scenario::builder(service)
        .app(app)
        .policy(policy)
        .horizon_intervals(40)
        .seed(seed)
        .build()
}

#[test]
fn identical_seeds_reproduce_identical_outcomes() {
    let a = scenario(ServiceId::Memcached, AppId::Plsa, PolicyKind::Pliant, 123).run();
    let b = scenario(ServiceId::Memcached, AppId::Plsa, PolicyKind::Pliant, 123).run();
    assert_eq!(a.mean_p99_s, b.mean_p99_s);
    assert_eq!(a.qos_violation_fraction, b.qos_violation_fraction);
    assert_eq!(
        a.app_outcomes[0].inaccuracy_pct,
        b.app_outcomes[0].inaccuracy_pct
    );
    let c = scenario(ServiceId::Memcached, AppId::Plsa, PolicyKind::Pliant, 124).run();
    assert_ne!(a.mean_p99_s, c.mean_p99_s, "different seeds should differ");
}

#[test]
fn low_load_runs_mostly_precise_and_high_load_needs_intervention() {
    // Fig. 8: below ~60% load the approximate workload can stay (mostly) precise; at high
    // load approximation and core reclamation are required.
    let suite = Suite::new(scenario(
        ServiceId::Nginx,
        AppId::Canneal,
        PolicyKind::Pliant,
        9,
    ))
    .named("load-extremes")
    .sweep_loads([0.4, 0.9]);
    let results = Engine::new().run_collect(&suite);
    let low_outcome = &results[0].outcome;
    let high_outcome = &results[1].outcome;
    assert!(
        low_outcome.app_outcomes[0].inaccuracy_pct
            <= high_outcome.app_outcomes[0].inaccuracy_pct + 0.2
    );
    assert!(low_outcome.max_extra_service_cores <= high_outcome.max_extra_service_cores);
    assert!(low_outcome.tail_latency_ratio < high_outcome.tail_latency_ratio);
}

#[test]
fn coarse_decision_intervals_prolong_violations() {
    // Fig. 9: decision intervals above ~1 s leave the interactive service violating QoS for
    // longer before Pliant reacts. The wall-clock horizon is fixed so both cells simulate
    // the same amount of service time.
    let base = Scenario::builder(ServiceId::Memcached)
        .app(AppId::Streamcluster)
        .policy(PolicyKind::Pliant)
        .horizon_seconds(40.0)
        .seed(31)
        .build();
    let suite = Suite::new(base)
        .named("interval-extremes")
        .sweep_decision_intervals_s([1.0, 8.0]);
    let results = Engine::new().run_collect(&suite);
    let fine = &results[0].outcome;
    let coarse = &results[1].outcome;
    assert!(
        fine.qos_violation_fraction <= coarse.qos_violation_fraction + 0.05,
        "1 s interval ({:.2}) should violate no more than an 8 s interval ({:.2})",
        fine.qos_violation_fraction,
        coarse.qos_violation_fraction
    );
}

#[test]
fn effort_breakdown_matches_service_strictness() {
    // Fig. 10: memcached needs reclaimed cores more often than MongoDB.
    let apps = [
        AppId::Canneal,
        AppId::Bayesian,
        AppId::Snp,
        AppId::Raytrace,
        AppId::Plsa,
        AppId::Hmmer,
    ];
    let engine = Engine::new().parallel();
    let needs_cores = |service: ServiceId| -> usize {
        let suite = Suite::new(scenario(service, AppId::Canneal, PolicyKind::Pliant, 41))
            .for_each_app(apps);
        engine
            .run_collect(&suite)
            .iter()
            .filter(|cell| classify_effort(&cell.outcome) != EffortClass::ApproximationOnly)
            .count()
    };
    let memcached = needs_cores(ServiceId::Memcached);
    let mongodb = needs_cores(ServiceId::MongoDb);
    assert!(
        mongodb <= memcached,
        "MongoDB ({mongodb}) should need core reclamation no more often than memcached ({memcached})"
    );
}

#[test]
fn reclaim_only_ablation_sacrifices_more_batch_performance_than_pliant() {
    // Without approximation, restoring QoS requires taking more cores for longer, which
    // shows up as a longer batch execution time.
    let suite = Suite::new(scenario(
        ServiceId::Memcached,
        AppId::Bayesian,
        PolicyKind::Pliant,
        51,
    ))
    .named("ablation")
    .sweep_policies([PolicyKind::Pliant, PolicyKind::ReclaimOnly]);
    let results = Engine::new().run_collect(&suite);
    let pliant = &results[0].outcome;
    let reclaim_only = &results[1].outcome;
    assert!(
        reclaim_only.max_extra_service_cores >= pliant.max_extra_service_cores,
        "reclaim-only should take at least as many cores as Pliant"
    );
    assert!(
        reclaim_only.app_outcomes[0].relative_execution_time
            >= pliant.app_outcomes[0].relative_execution_time - 0.05,
        "reclaim-only should not finish the batch job faster than Pliant"
    );
    assert_eq!(reclaim_only.app_outcomes[0].inaccuracy_pct, 0.0);
}
