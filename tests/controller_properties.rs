//! Property-based integration tests: invariants of the Pliant controllers under arbitrary
//! sequences of monitor reports.

use pliant::runtime::actuator::Action;
use pliant::runtime::monitor::MonitorReport;
use pliant::runtime::multi::MultiAppController;
use pliant::runtime::{ControllerConfig, PliantController};
use proptest::prelude::*;

fn report(violated: bool, slack: f64) -> MonitorReport {
    MonitorReport {
        p99_s: if violated { 1.0 } else { 0.1 },
        mean_s: 0.05,
        smoothed_p99_s: 0.5,
        sampled: 100,
        qos_violated: violated,
        slack_fraction: if violated { -0.5 } else { slack },
        no_signal: false,
    }
}

proptest! {
    /// The single-application controller never selects a variant outside the admissible
    /// range, never "returns" more cores than it reclaimed, and only ever emits one action
    /// per decision.
    #[test]
    fn single_controller_invariants(
        variant_count in 0usize..9,
        initial_cores in 1u32..10,
        steps in proptest::collection::vec((any::<bool>(), 0.0f64..0.5), 1..200),
    ) {
        let mut controller = PliantController::new(ControllerConfig::default(), variant_count, initial_cores);
        let mut reclaimed: i64 = 0;
        for (violated, slack) in steps {
            let actions = controller.decide(0, &report(violated, slack));
            prop_assert!(actions.len() <= 1, "at most one action per decision interval");
            for action in actions {
                match action {
                    Action::SetVariant { variant: Some(v), .. } => {
                        prop_assert!(v < variant_count.max(1), "variant {v} out of range");
                    }
                    Action::SetVariant { variant: None, .. } => {}
                    Action::ReclaimCore { .. } => reclaimed += 1,
                    Action::ReturnCore { .. } => reclaimed -= 1,
                }
            }
            prop_assert!(reclaimed >= 0, "returned a core that was never reclaimed");
            prop_assert!(
                reclaimed < i64::from(initial_cores.max(1)),
                "reclaimed the application's last core"
            );
            prop_assert_eq!(controller.cores_reclaimed() as i64, reclaimed);
        }
    }

    /// The round-robin arbiter keeps per-application core reclamation balanced (spread of
    /// at most one) and never reclaims an application's last core.
    #[test]
    fn multi_controller_fairness_invariants(
        app_count in 1usize..5,
        cores in 2u32..6,
        violations in 1usize..60,
    ) {
        let variant_counts = vec![3usize; app_count];
        let initial_cores = vec![cores; app_count];
        let mut controller =
            MultiAppController::new(ControllerConfig::default(), &variant_counts, &initial_cores, 0);
        for _ in 0..violations {
            let _ = controller.decide(&report(true, 0.0));
        }
        let reclaimed: Vec<u32> = (0..app_count).map(|i| controller.cores_reclaimed(i)).collect();
        let max = *reclaimed.iter().max().unwrap();
        let min = *reclaimed.iter().min().unwrap();
        prop_assert!(max - min <= 1, "unbalanced reclamation under pure violations: {:?}", reclaimed);
        for &r in &reclaimed {
            prop_assert!(r < cores, "an application lost its last core");
        }
    }

    /// Round-robin fairness over arbitrary violation/slack sequences: among
    /// equal-capacity applications, the cumulative number of concessions charged to any
    /// two applications (escalations to the most approximate variant plus core
    /// reclamations) never differs by more than one, at every step, and no ledger ever
    /// exceeds its reclaimable budget.
    ///
    /// The slack draws stay below the relaxation threshold, so the sequences mix
    /// violations with arbitrary hold intervals (which reset slack streaks) but never
    /// trigger recovery. Once recovery interleaves, a strict global bound is impossible
    /// *by design*: Pliant concedes approximation before cores, so after a relaxation
    /// the re-opened (cheap) escalation must be charged to the relaxed application even
    /// if its concession count is already ahead — fairness in the charged concessions
    /// is the within-pressure-regime guarantee. The recovery side is pinned separately
    /// ([`recovery_always_reaches_precise`] and the heterogeneous ledger bound below).
    #[test]
    fn multi_controller_concessions_stay_balanced_under_pressure(
        app_count in 2usize..5,
        variant_count in 1usize..5,
        cores in 1u32..6,
        start_pointer in 0usize..5,
        steps in proptest::collection::vec((any::<bool>(), 0.0f64..0.099), 1..300),
    ) {
        let variant_counts = vec![variant_count; app_count];
        let initial_cores = vec![cores; app_count];
        let mut controller = MultiAppController::new(
            ControllerConfig::default(),
            &variant_counts,
            &initial_cores,
            start_pointer,
        );
        let mut concessions = vec![0u64; app_count];
        for (violated, slack) in steps {
            for action in controller.decide(&report(violated, slack)) {
                match action {
                    Action::SetVariant { app, variant: Some(_) } => concessions[app] += 1,
                    Action::SetVariant { variant: None, .. } => {}
                    Action::ReclaimCore { app } => concessions[app] += 1,
                    Action::ReturnCore { .. } => {}
                }
            }
            let ledgers: Vec<u32> =
                (0..app_count).map(|i| controller.cores_reclaimed(i)).collect();
            for &ledger in &ledgers {
                prop_assert!(
                    ledger < cores.max(1),
                    "ledger {ledger} exceeds the reclaimable budget of {cores}-core apps"
                );
            }
            let max_conc = *concessions.iter().max().unwrap();
            let min_conc = *concessions.iter().min().unwrap();
            prop_assert!(
                max_conc - min_conc <= 1,
                "concession counts drifted apart: {concessions:?} (ledgers {ledgers:?})"
            );
            let max_ledger = *ledgers.iter().max().unwrap();
            let min_ledger = *ledgers.iter().min().unwrap();
            prop_assert!(
                max_ledger - min_ledger <= 1,
                "core reclamation must stay balanced under pressure: {ledgers:?}"
            );
        }
    }

    /// The ledger bound holds for heterogeneous capacities too: no application's ledger
    /// ever exceeds its own reclaimable budget, whatever the report sequence.
    #[test]
    fn multi_controller_ledgers_respect_heterogeneous_budgets(
        capacities in proptest::collection::vec((0usize..6, 1u32..8), 1..5),
        steps in proptest::collection::vec((any::<bool>(), 0.0f64..0.5), 1..200),
    ) {
        let variant_counts: Vec<usize> = capacities.iter().map(|(vc, _)| *vc).collect();
        let initial_cores: Vec<u32> = capacities.iter().map(|(_, c)| *c).collect();
        let mut controller =
            MultiAppController::new(ControllerConfig::default(), &variant_counts, &initial_cores, 1);
        for (violated, slack) in steps {
            let _ = controller.decide(&report(violated, slack));
            for (i, &(_, cores)) in capacities.iter().enumerate() {
                prop_assert!(
                    controller.cores_reclaimed(i) <= cores.saturating_sub(1),
                    "app {i} ledger {} exceeds its reclaimable {}",
                    controller.cores_reclaimed(i),
                    cores.saturating_sub(1)
                );
            }
        }
    }

    /// After any violation burst followed by a long stretch of ample slack, the controller
    /// returns to precise execution with all cores given back.
    #[test]
    fn recovery_always_reaches_precise(
        variant_count in 1usize..9,
        initial_cores in 1u32..10,
        violation_burst in 1usize..20,
    ) {
        let mut controller = PliantController::new(ControllerConfig::default(), variant_count, initial_cores);
        for _ in 0..violation_burst {
            let _ = controller.decide(0, &report(true, 0.0));
        }
        // Enough high-slack intervals to unwind every core and every variant step even with
        // the 2-interval hysteresis.
        for _ in 0..(2 * (violation_burst + variant_count + 2)) {
            let _ = controller.decide(0, &report(false, 0.4));
        }
        prop_assert_eq!(controller.variant(), None, "must relax back to precise");
        prop_assert_eq!(controller.cores_reclaimed(), 0, "must return every reclaimed core");
    }
}
