//! Integration test: multi-application colocations (§4.4, Fig. 6, Fig. 7), driven through
//! the Scenario/Suite/Engine API.

use pliant::prelude::*;

fn scenario(service: ServiceId, apps: &[AppId], seed: u64) -> Scenario {
    Scenario::builder(service)
        .apps(apps.iter().copied())
        .policy(PolicyKind::Pliant)
        .horizon_intervals(60)
        .seed(seed)
        .build()
}

#[test]
fn two_way_colocation_keeps_qos_and_shares_the_burden() {
    let suite = Suite::new(scenario(
        ServiceId::Nginx,
        &[AppId::Canneal, AppId::Bayesian],
        55,
    ))
    .named("two-way")
    .for_each_service(ServiceId::all());
    for cell in Engine::new().parallel().run_collect(&suite) {
        let outcome = &cell.outcome;
        let service = cell.scenario.service;
        assert!(
            outcome.tail_latency_ratio < 1.3,
            "{service}: 2-way Pliant colocation should hold the tail near QoS (got {:.2})",
            outcome.tail_latency_ratio
        );
        let reclaimed: Vec<u32> = outcome
            .app_outcomes
            .iter()
            .map(|a| a.max_cores_reclaimed)
            .collect();
        let spread = reclaimed.iter().max().unwrap() - reclaimed.iter().min().unwrap();
        assert!(
            spread <= 2,
            "{service}: unbalanced core reclamation {reclaimed:?}"
        );
        let inaccs: Vec<f64> = outcome
            .app_outcomes
            .iter()
            .map(|a| a.inaccuracy_pct)
            .collect();
        assert!(
            inaccs.iter().all(|&x| x <= 5.5),
            "{service}: inaccuracies {inaccs:?}"
        );
    }
}

#[test]
fn three_way_colocation_still_meets_quality_threshold() {
    let outcome = scenario(
        ServiceId::Nginx,
        &[AppId::KMeans, AppId::Snp, AppId::Hmmer],
        66,
    )
    .run();
    assert_eq!(outcome.app_outcomes.len(), 3);
    for a in &outcome.app_outcomes {
        assert!(
            a.inaccuracy_pct <= 5.5,
            "{}: {:.1}%",
            a.app,
            a.inaccuracy_pct
        );
    }
    assert!(outcome.tail_latency_ratio < 1.4);
}

#[test]
fn more_corunners_centralize_inaccuracy_distribution() {
    // Fig. 7's observation: with more co-located applications, each sacrifices a more
    // moderate (similar) amount of quality than a lone co-runner might.
    let suite = Suite::new(scenario(ServiceId::Memcached, &[AppId::Canneal], 77))
        .named("mix-size")
        .for_each_app_set([
            vec![AppId::Canneal],
            vec![AppId::Canneal, AppId::Bayesian, AppId::Snp],
        ]);
    let results = Engine::new().run_collect(&suite);
    let single = &results[0].outcome;
    let triple = &results[1].outcome;
    let single_max = single
        .app_outcomes
        .iter()
        .map(|a| a.inaccuracy_pct)
        .fold(0.0f64, f64::max);
    let triple_canneal = triple
        .app_outcomes
        .iter()
        .find(|a| a.app == AppId::Canneal)
        .unwrap()
        .inaccuracy_pct;
    assert!(
        triple_canneal <= single_max + 0.5,
        "canneal should not sacrifice more quality with co-runners sharing the burden \
         (alone: {single_max:.1}%, in a 3-way mix: {triple_canneal:.1}%)"
    );
}

#[test]
fn precise_multi_app_baseline_is_worse_than_pliant() {
    let suite = Suite::new(scenario(
        ServiceId::Nginx,
        &[AppId::Canneal, AppId::Streamcluster],
        88,
    ))
    .named("multi-baseline")
    .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
    let results = Engine::new().run_collect(&suite);
    let precise = &results[0].outcome;
    let pliant = &results[1].outcome;
    assert!(precise.tail_latency_ratio > pliant.tail_latency_ratio);
    assert!(precise.qos_violation_fraction > pliant.qos_violation_fraction);
}
