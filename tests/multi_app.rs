//! Integration test: multi-application colocations (§4.4, Fig. 6, Fig. 7).

use pliant::prelude::*;

fn options(seed: u64) -> ExperimentOptions {
    ExperimentOptions {
        max_intervals: 60,
        seed,
        ..ExperimentOptions::default()
    }
}

#[test]
fn two_way_colocation_keeps_qos_and_shares_the_burden() {
    for service in ServiceId::all() {
        let outcome = run_colocation(
            service,
            &[AppId::Canneal, AppId::Bayesian],
            PolicyKind::Pliant,
            &options(55),
        );
        assert!(
            outcome.tail_latency_ratio < 1.3,
            "{service}: 2-way Pliant colocation should hold the tail near QoS (got {:.2})",
            outcome.tail_latency_ratio
        );
        let reclaimed: Vec<u32> = outcome.app_outcomes.iter().map(|a| a.max_cores_reclaimed).collect();
        let spread = reclaimed.iter().max().unwrap() - reclaimed.iter().min().unwrap();
        assert!(spread <= 2, "{service}: unbalanced core reclamation {reclaimed:?}");
        let inaccs: Vec<f64> = outcome.app_outcomes.iter().map(|a| a.inaccuracy_pct).collect();
        assert!(inaccs.iter().all(|&x| x <= 5.5), "{service}: inaccuracies {inaccs:?}");
    }
}

#[test]
fn three_way_colocation_still_meets_quality_threshold() {
    let outcome = run_colocation(
        ServiceId::Nginx,
        &[AppId::KMeans, AppId::Snp, AppId::Hmmer],
        PolicyKind::Pliant,
        &options(66),
    );
    assert_eq!(outcome.app_outcomes.len(), 3);
    for a in &outcome.app_outcomes {
        assert!(a.inaccuracy_pct <= 5.5, "{}: {:.1}%", a.app, a.inaccuracy_pct);
    }
    assert!(outcome.tail_latency_ratio < 1.4);
}

#[test]
fn more_corunners_centralize_inaccuracy_distribution() {
    // Fig. 7's observation: with more co-located applications, each sacrifices a more
    // moderate (similar) amount of quality than a lone co-runner might.
    let single = run_colocation(ServiceId::Memcached, &[AppId::Canneal], PolicyKind::Pliant, &options(77));
    let triple = run_colocation(
        ServiceId::Memcached,
        &[AppId::Canneal, AppId::Bayesian, AppId::Snp],
        PolicyKind::Pliant,
        &options(77),
    );
    let single_max = single
        .app_outcomes
        .iter()
        .map(|a| a.inaccuracy_pct)
        .fold(0.0f64, f64::max);
    let triple_canneal = triple
        .app_outcomes
        .iter()
        .find(|a| a.app == AppId::Canneal)
        .unwrap()
        .inaccuracy_pct;
    assert!(
        triple_canneal <= single_max + 0.5,
        "canneal should not sacrifice more quality with co-runners sharing the burden \
         (alone: {single_max:.1}%, in a 3-way mix: {triple_canneal:.1}%)"
    );
}

#[test]
fn precise_multi_app_baseline_is_worse_than_pliant() {
    let precise = run_colocation(
        ServiceId::Nginx,
        &[AppId::Canneal, AppId::Streamcluster],
        PolicyKind::Precise,
        &options(88),
    );
    let pliant = run_colocation(
        ServiceId::Nginx,
        &[AppId::Canneal, AppId::Streamcluster],
        PolicyKind::Pliant,
        &options(88),
    );
    assert!(precise.tail_latency_ratio > pliant.tail_latency_ratio);
    assert!(precise.qos_violation_fraction > pliant.qos_violation_fraction);
}
