//! Integration test: the engine's core guarantees.
//!
//! 1. A suite run serially and a suite run on the parallel engine must produce
//!    byte-identical serialized outcomes, cell for cell — parallelism changes wall-clock
//!    time, never output.
//! 2. Per-cell seeds in `SeedMode::Independent` must never collide across sweep axes.
//! 3. The wall-clock horizon must hold the simulated time constant across a
//!    decision-interval sweep.

use pliant::prelude::*;

fn base() -> Scenario {
    Scenario::builder(ServiceId::Memcached)
        .app(AppId::Canneal)
        .horizon_intervals(25)
        .seed(2024)
        .build()
}

fn grid() -> Suite {
    Suite::new(base())
        .named("determinism")
        .for_each_service([ServiceId::Memcached, ServiceId::Nginx])
        .for_each_app([AppId::Canneal, AppId::Snp, AppId::Bayesian])
        .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
        .sweep_loads([0.6, 0.9])
}

#[test]
fn parallel_engine_is_byte_identical_to_serial() {
    let suite = grid();
    let serial = Engine::new().run_collect(&suite);
    let parallel = Engine::new().parallel().run_collect(&suite);
    let two_workers = Engine::new().parallel_threads(2).run_collect(&suite);
    assert_eq!(serial.len(), suite.len());
    assert_eq!(parallel.len(), suite.len());
    for ((s, p), w2) in serial.iter().zip(&parallel).zip(&two_workers) {
        let s_json = serde_json::to_string(s).expect("serializable");
        let p_json = serde_json::to_string(p).expect("serializable");
        let w2_json = serde_json::to_string(w2).expect("serializable");
        assert_eq!(
            s_json, p_json,
            "cell {} differs between serial and parallel",
            s.index
        );
        assert_eq!(s_json, w2_json, "cell {} differs with 2 workers", s.index);
    }
}

#[test]
fn results_stream_in_cell_order_even_in_parallel() {
    struct Ordered(Vec<usize>);
    impl ResultSink for Ordered {
        fn on_result(&mut self, index: usize, _s: &Scenario, _o: &ColocationOutcome) {
            self.0.push(index);
        }
    }
    let suite = grid();
    let mut sink = Ordered(Vec::new());
    Engine::new().parallel().run_suite(&suite, &mut sink);
    let expected: Vec<usize> = (0..suite.len()).collect();
    assert_eq!(sink.0, expected);
}

#[test]
fn independent_seeds_do_not_collide_across_axes() {
    let suite = grid()
        .seed_mode(SeedMode::Independent)
        .sweep_seeds([1, 2, 3]);
    let scenarios = suite.scenarios();
    let unique: std::collections::BTreeSet<u64> = scenarios.iter().map(|s| s.seed).collect();
    assert_eq!(
        unique.len(),
        scenarios.len(),
        "every cell must draw from its own RNG stream"
    );
}

#[test]
fn common_random_numbers_share_seeds_across_paired_cells() {
    let suite = Suite::new(base()).sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
    let scenarios = suite.scenarios();
    assert_eq!(scenarios[0].seed, scenarios[1].seed);
    // And the paired cells really do see the same workload: their QoS targets and
    // interval counts line up.
    let results = Engine::new().run_collect(&suite);
    assert_eq!(
        results[0].outcome.qos_target_s,
        results[1].outcome.qos_target_s
    );
}

#[test]
fn suite_expansion_is_deterministic() {
    let a = grid().scenarios();
    let b = grid().scenarios();
    assert_eq!(a, b);
}

#[test]
fn wall_clock_horizon_is_constant_across_interval_sweep() {
    let base = Scenario::builder(ServiceId::Memcached)
        .app(AppId::Canneal)
        .horizon_seconds(30.0)
        .stop_when_apps_finish(false)
        .build();
    let suite = Suite::new(base)
        .named("wall-clock")
        .sweep_decision_intervals_s([0.5, 1.0, 3.0, 8.0]);
    for cell in Engine::new().run_collect(&suite) {
        let dt = cell.scenario.decision_interval_s;
        let simulated_s = dt * cell.outcome.intervals as f64;
        assert!(
            (simulated_s - 30.0).abs() <= dt,
            "dt={dt}: simulated {simulated_s:.1}s of a 30s horizon"
        );
    }
}

#[test]
fn scenario_and_outcome_round_trip_through_json() {
    let suite = Suite::new(base()).sweep_loads([0.5]);
    let results = Engine::new().run_collect(&suite);
    let json = serde_json::to_string(&results[0]).expect("serializable");
    let back: CellOutcome = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back.scenario, results[0].scenario);
    assert_eq!(back.outcome.mean_p99_s, results[0].outcome.mean_p99_s);
    assert_eq!(back.outcome.policy, results[0].outcome.policy);
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
}
