//! Integration test: the engine's core guarantees.
//!
//! 1. A suite run serially and a suite run on the parallel engine must produce
//!    byte-identical serialized outcomes, cell for cell — parallelism changes wall-clock
//!    time, never output. This includes suites that sweep time-varying load profiles.
//! 2. Per-cell seeds in `SeedMode::Independent` must never collide across sweep axes.
//! 3. The wall-clock horizon must hold the simulated time constant across a
//!    decision-interval sweep.
//! 4. The controller's core ledger stays in lock-step with the simulator through the
//!    one-core floor, and Pliant re-approximates through a flash crowd then steps back
//!    toward precise afterward.

use pliant::prelude::*;
use pliant::runtime::actuator::Actuator;
use pliant::runtime::monitor::MonitorReport;

fn base() -> Scenario {
    Scenario::builder(ServiceId::Memcached)
        .app(AppId::Canneal)
        .horizon_intervals(25)
        .seed(2024)
        .build()
}

fn grid() -> Suite {
    Suite::new(base())
        .named("determinism")
        .for_each_service([ServiceId::Memcached, ServiceId::Nginx])
        .for_each_app([AppId::Canneal, AppId::Snp, AppId::Bayesian])
        .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
        .sweep_loads([0.6, 0.9])
}

#[test]
fn parallel_engine_is_byte_identical_to_serial() {
    let suite = grid();
    let serial = Engine::new().run_collect(&suite);
    let parallel = Engine::new().parallel().run_collect(&suite);
    let two_workers = Engine::new().parallel_threads(2).run_collect(&suite);
    assert_eq!(serial.len(), suite.len());
    assert_eq!(parallel.len(), suite.len());
    for ((s, p), w2) in serial.iter().zip(&parallel).zip(&two_workers) {
        let s_json = serde_json::to_string(s).expect("serializable");
        let p_json = serde_json::to_string(p).expect("serializable");
        let w2_json = serde_json::to_string(w2).expect("serializable");
        assert_eq!(
            s_json, p_json,
            "cell {} differs between serial and parallel",
            s.index
        );
        assert_eq!(s_json, w2_json, "cell {} differs with 2 workers", s.index);
    }
}

#[test]
fn results_stream_in_cell_order_even_in_parallel() {
    struct Ordered(Vec<usize>);
    impl ResultSink for Ordered {
        fn on_result(&mut self, index: usize, _s: &Scenario, _o: &ColocationOutcome) {
            self.0.push(index);
        }
    }
    let suite = grid();
    let mut sink = Ordered(Vec::new());
    Engine::new().parallel().run_suite(&suite, &mut sink);
    let expected: Vec<usize> = (0..suite.len()).collect();
    assert_eq!(sink.0, expected);
}

#[test]
fn independent_seeds_do_not_collide_across_axes() {
    let suite = grid()
        .seed_mode(SeedMode::Independent)
        .sweep_seeds([1, 2, 3]);
    let scenarios = suite.scenarios();
    let unique: std::collections::BTreeSet<u64> = scenarios.iter().map(|s| s.seed).collect();
    assert_eq!(
        unique.len(),
        scenarios.len(),
        "every cell must draw from its own RNG stream"
    );
}

#[test]
fn common_random_numbers_share_seeds_across_paired_cells() {
    let suite = Suite::new(base()).sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
    let scenarios = suite.scenarios();
    assert_eq!(scenarios[0].seed, scenarios[1].seed);
    // And the paired cells really do see the same workload: their QoS targets and
    // interval counts line up.
    let results = Engine::new().run_collect(&suite);
    assert_eq!(
        results[0].outcome.qos_target_s,
        results[1].outcome.qos_target_s
    );
}

#[test]
fn suite_expansion_is_deterministic() {
    let a = grid().scenarios();
    let b = grid().scenarios();
    assert_eq!(a, b);
}

#[test]
fn wall_clock_horizon_is_constant_across_interval_sweep() {
    let base = Scenario::builder(ServiceId::Memcached)
        .app(AppId::Canneal)
        .horizon_seconds(30.0)
        .stop_when_apps_finish(false)
        .build();
    let suite = Suite::new(base)
        .named("wall-clock")
        .sweep_decision_intervals_s([0.5, 1.0, 3.0, 8.0]);
    for cell in Engine::new().run_collect(&suite) {
        let dt = cell.scenario.decision_interval_s;
        let simulated_s = dt * cell.outcome.intervals as f64;
        assert!(
            (simulated_s - 30.0).abs() <= dt,
            "dt={dt}: simulated {simulated_s:.1}s of a 30s horizon"
        );
    }
}

fn flash_crowd() -> LoadProfile {
    LoadProfile::FlashCrowd {
        base: 0.35,
        peak: 1.0,
        start_s: 10.0,
        ramp_s: 2.0,
        hold_s: 8.0,
        decay_s: 2.0,
    }
}

fn profile_grid() -> Suite {
    let base = Scenario::builder(ServiceId::Memcached)
        .app(AppId::Bayesian)
        .horizon_seconds(45.0)
        .stop_when_apps_finish(false)
        .seed(77)
        .build();
    Suite::new(base)
        .named("profile-determinism")
        .sweep_load_profiles([
            LoadProfile::constant(0.75),
            LoadProfile::Diurnal {
                base: 0.6,
                amplitude: 0.35,
                period_s: 40.0,
                phase_s: 0.0,
            },
            flash_crowd(),
            LoadProfile::Trace {
                points: vec![(0.0, 0.4), (15.0, 0.9), (30.0, 0.5)],
            },
        ])
        .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
}

#[test]
fn load_profile_suites_stay_byte_identical_in_parallel() {
    let suite = profile_grid();
    let serial = Engine::new().run_collect(&suite);
    let parallel = Engine::new().parallel().run_collect(&suite);
    assert_eq!(serial.len(), suite.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let s_json = serde_json::to_string(s).expect("serializable");
        let p_json = serde_json::to_string(p).expect("serializable");
        assert_eq!(
            s_json, p_json,
            "profile-sweep cell {} differs between serial and parallel",
            s.index
        );
    }
}

#[test]
fn load_profile_scenarios_replay_identically_from_json_archives() {
    let scenario = Scenario::builder(ServiceId::Nginx)
        .app(AppId::Canneal)
        .load_profile(LoadProfile::Diurnal {
            base: 0.6,
            amplitude: 0.3,
            period_s: 30.0,
            phase_s: 5.0,
        })
        .horizon_seconds(40.0)
        .stop_when_apps_finish(false)
        .seed(90210)
        .build();
    let engine = Engine::new();
    let original = engine.run_scenario(&scenario);
    let archived = serde_json::to_string(&scenario).expect("serializable");
    let restored: Scenario = serde_json::from_str(&archived).expect("deserializable");
    assert_eq!(restored, scenario);
    let replayed = engine.run_scenario(&restored);
    assert_eq!(
        serde_json::to_string(&original).unwrap(),
        serde_json::to_string(&replayed).unwrap(),
        "a replayed archive must reproduce the original run bit-for-bit"
    );
}

#[test]
fn controller_and_simulator_core_ledgers_stay_in_sync_at_the_floor() {
    let catalog = Catalog::default();
    let config = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Canneal], 3);
    let mut sim = ColocationSim::new(config, &catalog);
    let fair_service_cores = sim.service_cores();
    let app_cores = sim.app(0).cores();
    let variant_count = catalog.profile(AppId::Canneal).unwrap().variant_count();
    let mut controller =
        PliantController::new(ControllerConfig::default(), variant_count, app_cores);
    let mut actuator = Actuator::new();

    let violated = MonitorReport {
        p99_s: 0.05,
        mean_s: 0.02,
        smoothed_p99_s: 0.05,
        sampled: 500,
        qos_violated: true,
        slack_fraction: -1.0,
        no_signal: false,
    };
    let relaxed = MonitorReport {
        p99_s: 0.004,
        mean_s: 0.002,
        smoothed_p99_s: 0.004,
        sampled: 500,
        qos_violated: false,
        slack_fraction: 0.4,
        no_signal: false,
    };

    // Drive far past core exhaustion: the controller must stop at the one-core floor
    // with its ledger exactly matching the cores the simulator actually moved.
    for _ in 0..(2 * app_cores + 6) {
        let actions = controller.decide(0, &violated);
        actuator.apply_all(&mut sim, &actions);
        assert_eq!(
            controller.cores_reclaimed(),
            sim.service_cores() - fair_service_cores,
            "controller ledger drifted from the simulator during reclamation"
        );
    }
    assert_eq!(controller.cores_reclaimed(), app_cores - 1);
    assert_eq!(sim.app(0).cores(), 1, "the application keeps its last core");
    assert_eq!(
        actuator.stats().rejected,
        0,
        "a synced ledger never emits actions the simulator refuses"
    );

    // Recovery: every ReturnCore lands, the ledger unwinds to zero, and the run ends
    // back at precise execution with the fair allocation restored.
    for _ in 0..(4 * app_cores as usize + 4 * variant_count + 8) {
        let actions = controller.decide(0, &relaxed);
        actuator.apply_all(&mut sim, &actions);
        assert_eq!(
            controller.cores_reclaimed(),
            sim.service_cores() - fair_service_cores,
            "controller ledger drifted from the simulator during recovery"
        );
    }
    assert_eq!(controller.cores_reclaimed(), 0);
    assert_eq!(sim.service_cores(), fair_service_cores);
    assert_eq!(controller.variant(), None, "fully relaxed back to precise");
    assert_eq!(
        actuator.stats().rejected,
        0,
        "recovery must not burn intervals on no-op ReturnCore actions"
    );
}

#[test]
fn flash_crowd_forces_reapproximation_then_stepwise_recovery() {
    let scenario = Scenario::builder(ServiceId::Memcached)
        .app(AppId::Bayesian)
        .load_profile(flash_crowd())
        .horizon_seconds(45.0)
        .stop_when_apps_finish(false)
        .seed(77)
        .build();
    let suite = Suite::new(scenario)
        .named("flash")
        .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
    let cells = Engine::new().run_collect(&suite);
    let precise = &cells[0].outcome;
    let pliant = &cells[1].outcome;

    let variants = pliant
        .trace
        .get("variant_bayesian")
        .expect("variant series")
        .values();
    let reclaimed = pliant
        .trace
        .get("reclaimed_bayesian")
        .expect("reclaimed series")
        .values();
    let most_approx_plotted = 8.0; // bayesian has 8 variants; the trace plots v+1

    // Before the crowd: fully precise, nothing reclaimed.
    assert!(
        variants[..10].iter().all(|v| *v == 0.0) && reclaimed[..10].iter().all(|r| *r == 0.0),
        "the steady base load must not need approximation"
    );
    // During the crowd (t = 10..22): jump to the most approximate variant plus cores.
    let spike_variant_max = variants[10..22].iter().cloned().fold(0.0f64, f64::max);
    let spike_reclaimed_max = reclaimed[10..22].iter().cloned().fold(0.0f64, f64::max);
    assert_eq!(
        spike_variant_max, most_approx_plotted,
        "the flash crowd must force re-approximation to the most aggressive variant"
    );
    assert!(
        spike_reclaimed_max >= 1.0,
        "approximation alone cannot absorb full saturation"
    );
    // After the crowd: cores all returned and the variant stepped back toward precise.
    let final_variant = *variants.last().unwrap();
    assert_eq!(
        *reclaimed.last().unwrap(),
        0.0,
        "cores returned after the spike"
    );
    assert!(
        final_variant < most_approx_plotted,
        "the variant must relax stepwise toward precise after the crowd (got {final_variant})"
    );

    // Per-phase QoS: the steady base is clean under Pliant, and Pliant absorbs the peak
    // the Precise baseline cannot.
    let pliant_steady = pliant.phase(LoadPhase::Steady).expect("steady phase");
    let pliant_peak = pliant.phase(LoadPhase::Peak).expect("peak phase");
    let precise_peak = precise.phase(LoadPhase::Peak).expect("peak phase");
    assert!(pliant_steady.qos_violation_fraction < 0.1);
    assert!(
        pliant_peak.qos_violation_fraction < precise_peak.qos_violation_fraction,
        "Pliant must violate QoS less than Precise at the peak ({} vs {})",
        pliant_peak.qos_violation_fraction,
        precise_peak.qos_violation_fraction
    );
}

#[test]
fn scenario_and_outcome_round_trip_through_json() {
    let suite = Suite::new(base()).sweep_loads([0.5]);
    let results = Engine::new().run_collect(&suite);
    let json = serde_json::to_string(&results[0]).expect("serializable");
    let back: CellOutcome = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back.scenario, results[0].scenario);
    assert_eq!(back.outcome.mean_p99_s, results[0].outcome.mean_p99_s);
    assert_eq!(back.outcome.policy, results[0].outcome.policy);
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
}
