//! Integration tests: energy-accounting invariants and the fig_energy headline.
//!
//! 1. Energy accounting is deterministic and execution-mode invariant: serial and
//!    parallel runs produce byte-identical power traces and energy totals, at both the
//!    single-node and the (autoscaled) fleet level.
//! 2. Fleet energy is the exact sum of per-node accounting, which itself integrates
//!    the per-interval observations.
//! 3. Idle and parked machines bill exactly what the power model says they must.
//! 4. The headline: under one day/night cycle with the energy-aware autoscaler, the
//!    Pliant fleet serves the same load and completes the same batch within QoS at
//!    ≤ 0.9× the Precise fleet's joules.

use pliant::prelude::*;
use pliant_sim::colocation::{ColocationConfig, ColocationSim};

fn single_node_scenario(seed: u64) -> Scenario {
    Scenario::builder(ServiceId::Memcached)
        .app(AppId::Canneal)
        .load_profile(LoadProfile::Diurnal {
            base: 0.6,
            amplitude: 0.3,
            period_s: 30.0,
            phase_s: 0.0,
        })
        .horizon_intervals(40)
        .stop_when_apps_finish(false)
        .seed(seed)
        .build()
}

#[test]
fn energy_series_is_byte_identical_across_execution_modes() {
    let suite = Suite::new(single_node_scenario(29))
        .named("energy-modes")
        .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
    let serial = Engine::new().run_collect(&suite);
    let parallel = Engine::new().parallel_threads(4).run_collect(&suite);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.outcome.total_energy_j, b.outcome.total_energy_j);
        assert_eq!(
            serde_json::to_string(a.outcome.trace.get("power_w").unwrap()).unwrap(),
            serde_json::to_string(b.outcome.trace.get("power_w").unwrap()).unwrap(),
            "the power trace must be byte-identical across execution modes"
        );
    }
}

#[test]
fn single_node_energy_integrates_the_power_trace() {
    let outcome = Engine::new().run_scenario(&single_node_scenario(3));
    let power = outcome.trace.get("power_w").expect("power_w series");
    assert_eq!(power.len(), outcome.intervals);
    let integral: f64 = power.values().iter().sum();
    assert!((outcome.total_energy_j - integral).abs() < 1e-9 * integral);
    assert!(outcome.mean_power_w > 0.0);
}

fn autoscaled_fleet(seed: u64) -> ClusterScenario {
    let mut scenario = pliant_bench::cluster_energy_scenario(PolicyKind::Pliant, seed);
    // A shorter cycle keeps the invariant tests fast; the headline test below runs the
    // full fig_energy horizon.
    scenario.horizon = Horizon::Seconds(80.0);
    scenario
}

#[test]
fn fleet_energy_is_the_exact_sum_of_per_node_recomputes() {
    let scenario = autoscaled_fleet(11);
    let outcome = Engine::new().parallel().run_cluster(&scenario);

    // Re-drive the same fleet through the lower-level ClusterSim and integrate every
    // node's per-interval energy by hand; the engine's fleet total must equal the sum
    // of the per-node integrals exactly (energy summation is per-node, then summed
    // once — no reassociation).
    let mut sim = ClusterSim::new(&scenario, Engine::new().catalog());
    let mut per_node = vec![0.0f64; scenario.nodes];
    for _ in 0..scenario.max_intervals() {
        let interval = sim.advance();
        for node_interval in &interval.nodes {
            per_node[node_interval.node] += node_interval.observation.energy_j;
        }
    }
    for (node_outcome, recomputed) in outcome.node_outcomes.iter().zip(&per_node) {
        assert_eq!(
            node_outcome.energy_j, *recomputed,
            "node {} energy must integrate its own observations exactly",
            node_outcome.node
        );
    }
    assert_eq!(
        outcome.fleet_energy_j,
        outcome
            .node_outcomes
            .iter()
            .map(|node| node.energy_j)
            .sum::<f64>(),
        "fleet energy must be the exact sum over nodes"
    );
    // And the trace's power series integrates to the same total.
    let power = outcome.trace.get("fleet_power_w").expect("fleet_power_w");
    let integral: f64 = power.values().iter().sum();
    assert!((outcome.fleet_energy_j - integral).abs() < 1e-9 * integral);
}

#[test]
fn idle_and_parked_machines_bill_exactly_what_the_model_says() {
    // Zero-load idle intervals with finished batch work bill exactly the
    // allocated-core idle power; parked machines bill exactly the suspend draw.
    let cfg = ColocationConfig::paper_default(ServiceId::MongoDb, &[AppId::Raytrace], 5);
    let power = cfg.server.power.clone();
    let freq = cfg.server.base_freq_ghz;
    let mut sim = ColocationSim::new(cfg, Engine::new().catalog());
    for _ in 0..120 {
        if sim.advance(1.0).all_apps_finished {
            break;
        }
    }
    assert!(sim.app(0).is_finished(), "raytrace finishes within 120 s");
    sim.set_load_fraction(0.0);
    let idle = sim.advance(1.0);
    let allocated = sim.service_cores() + sim.app(0).cores();
    assert_eq!(idle.arrivals, 0);
    assert_eq!(idle.power_w, power.idle_node_power_w(allocated, freq));
    sim.set_parked(true);
    let parked = sim.advance(1.0);
    assert_eq!(parked.power_w, power.parked_w);
    assert!(parked.power_w < idle.power_w);
}

#[test]
fn autoscaled_fleets_are_deterministic_and_mode_invariant_under_crn() {
    let scenario = autoscaled_fleet(2024);
    let serial = Engine::new().run_cluster(&scenario);
    let parallel = Engine::new().parallel().run_cluster(&scenario);
    let replay = Engine::new().run_cluster(&scenario);
    let serial_json = serde_json::to_string(&serial).expect("serializable");
    assert_eq!(
        serial_json,
        serde_json::to_string(&parallel).expect("serializable"),
        "autoscaling decisions must not depend on the execution mode"
    );
    assert_eq!(
        serial_json,
        serde_json::to_string(&replay).expect("serializable"),
        "the same seed must reproduce the same autoscaled run bit-for-bit"
    );
    // The autoscaler actually acted: the active set shrank below the fleet size.
    assert!(serial.min_active_nodes < scenario.nodes);
    assert!(serial.mean_active_nodes < scenario.nodes as f64);
    // CRN pairing: a different policy at the same seed sees the same offered load.
    let mut precise = scenario.clone();
    precise.policy = PolicyKind::Precise;
    let baseline = Engine::new().run_cluster(&precise);
    assert_eq!(
        baseline.mean_total_offered_load,
        serial.mean_total_offered_load
    );
}

#[test]
fn pliant_fleet_serves_the_same_load_within_qos_at_lower_joules() {
    // The fig_energy headline, at the exact operating point the binary runs (the
    // scenario constructor is shared with it): one day/night cycle over a 6-machine
    // fleet, day plateau at the fig_cluster load, fixed 12-job batch. Under common
    // random numbers both fleets meet QoS and complete the whole batch, and the
    // energy-aware autoscaler converts Pliant's tail headroom into parked machines:
    // ≤ 0.9× the Precise fleet's joules.
    let engine = Engine::new().parallel();
    let precise = engine.run_cluster(&pliant_bench::cluster_energy_scenario(
        PolicyKind::Precise,
        7,
    ));
    let pliant = engine.run_cluster(&pliant_bench::cluster_energy_scenario(
        PolicyKind::Pliant,
        7,
    ));

    // Equal QoS, equal work.
    assert!(precise.qos_met(), "the Precise fleet must meet QoS");
    assert!(pliant.qos_met(), "the Pliant fleet must meet QoS");
    assert_eq!(precise.jobs_completed(), 12);
    assert_eq!(pliant.jobs_completed(), 12);
    assert_eq!(
        precise.mean_total_offered_load,
        pliant.mean_total_offered_load
    );

    // The headline: measurably fewer joules, from fewer active machines.
    let ratio = pliant.fleet_energy_j / precise.fleet_energy_j;
    assert!(
        ratio <= 0.9,
        "Pliant fleet joules must be at most 0.9x Precise ({:.0} vs {:.0} J, ratio {ratio:.3})",
        pliant.fleet_energy_j,
        precise.fleet_energy_j
    );
    assert!(
        pliant.mean_active_nodes < precise.mean_active_nodes,
        "the saving must come from a smaller active set ({:.2} vs {:.2})",
        pliant.mean_active_nodes,
        precise.mean_active_nodes
    );
    assert!(
        pliant.min_active_nodes < precise.min_active_nodes,
        "at the night valley Pliant must serve on fewer machines ({} vs {})",
        pliant.min_active_nodes,
        precise.min_active_nodes
    );
    assert!(
        pliant.energy_per_completed_job_j < precise.energy_per_completed_job_j,
        "equal work at lower total energy means cheaper jobs"
    );
    // The saving comes from approximation: Pliant's jobs trade a bounded quality loss.
    assert!(pliant.mean_completed_inaccuracy_pct() > 0.0);
    assert!(pliant.mean_completed_inaccuracy_pct() <= 5.0);
    assert_eq!(precise.mean_completed_inaccuracy_pct(), 0.0);
}
