//! Experiment drivers.
//!
//! These functions run complete co-location experiments — one interactive service, one or
//! more approximate applications, one policy — and produce the summaries and time series
//! the figure-regeneration binaries in `pliant-bench` print. They are also exercised
//! directly by the integration tests, which assert the paper's headline results as shape
//! properties.

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::{AppId, Catalog};
use pliant_sim::colocation::{ColocationConfig, ColocationSim};
use pliant_telemetry::rng::derive_seed;
use pliant_telemetry::series::{TimeSeries, TraceBundle};
use pliant_telemetry::stats::OnlineStats;
use pliant_workloads::service::{ServiceId, ServiceProfile};

use crate::actuator::Actuator;
use crate::controller::ControllerConfig;
use crate::monitor::{MonitorConfig, PerformanceMonitor};
use crate::policy::PolicyKind;

/// Options controlling one co-location experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOptions {
    /// Offered load as a fraction of the service's saturation throughput.
    pub load_fraction: f64,
    /// Decision interval in seconds.
    pub decision_interval_s: f64,
    /// Latency-slack threshold for relaxing approximation / returning cores.
    pub slack_threshold: f64,
    /// Hard cap on the number of decision intervals simulated.
    pub max_intervals: usize,
    /// Whether to stop as soon as every batch application finishes.
    pub stop_when_apps_finish: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            load_fraction: 0.75,
            decision_interval_s: 1.0,
            slack_threshold: 0.10,
            max_intervals: 120,
            stop_when_apps_finish: true,
            seed: 42,
        }
    }
}

/// Per-application outcome of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// The application.
    pub app: AppId,
    /// Whether it finished within the simulated horizon.
    pub finished: bool,
    /// Execution time relative to the nominal precise run (1.0 = nominal).
    pub relative_execution_time: f64,
    /// Final output-quality loss in percent.
    pub inaccuracy_pct: f64,
    /// Maximum number of cores simultaneously reclaimed from this application.
    pub max_cores_reclaimed: u32,
    /// Instrumentation (dynamic recompilation) overhead fraction of this application.
    pub instrumentation_overhead: f64,
}

/// Outcome of one co-location experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColocationOutcome {
    /// Interactive service.
    pub service: ServiceId,
    /// Policy used.
    pub policy: &'static str,
    /// Co-located applications.
    pub apps: Vec<AppId>,
    /// Number of decision intervals simulated.
    pub intervals: usize,
    /// QoS target in seconds.
    pub qos_target_s: f64,
    /// Mean of the per-interval p99 latencies, in seconds.
    pub mean_p99_s: f64,
    /// Maximum per-interval p99 latency, in seconds.
    pub max_p99_s: f64,
    /// Fraction of intervals that violated QoS.
    pub qos_violation_fraction: f64,
    /// `mean_p99_s / qos_target_s` — the headline tail-latency-to-QoS ratio.
    pub tail_latency_ratio: f64,
    /// Maximum number of cores the service held beyond its fair share at any point.
    pub max_extra_service_cores: u32,
    /// Per-application outcomes.
    pub app_outcomes: Vec<AppOutcome>,
    /// Time series recorded during the run (tail latency, reclaimed cores, variants).
    pub trace: TraceBundle,
}

impl ColocationOutcome {
    /// Whether QoS was met for (almost) the entire run; the 5% allowance absorbs isolated
    /// measurement-noise spikes, matching how the paper reports "QoS is met".
    pub fn qos_met(&self) -> bool {
        self.qos_violation_fraction <= 0.05 && self.tail_latency_ratio <= 1.0
    }

    /// Mean inaccuracy across the co-located applications, in percent.
    pub fn mean_inaccuracy_pct(&self) -> f64 {
        if self.app_outcomes.is_empty() {
            return 0.0;
        }
        self.app_outcomes.iter().map(|a| a.inaccuracy_pct).sum::<f64>() / self.app_outcomes.len() as f64
    }

    /// Whether approximation alone (no core reclamation) was sufficient for the whole run.
    pub fn approximation_alone(&self) -> bool {
        self.max_extra_service_cores == 0
    }
}

/// Runs one co-location experiment with the paper-default platform and calibration.
pub fn run_colocation(
    service: ServiceId,
    apps: &[AppId],
    policy: PolicyKind,
    options: &ExperimentOptions,
) -> ColocationOutcome {
    let catalog = Catalog::default();
    let mut config = ColocationConfig::paper_default(service, apps, options.seed)
        .with_load(options.load_fraction);
    if policy == PolicyKind::Precise {
        config = config.without_instrumentation();
    }
    run_colocation_with_config(config, policy, options, &catalog)
}

/// Runs one co-location experiment with an explicit simulator configuration (used by the
/// sensitivity sweeps and the benches).
pub fn run_colocation_with_config(
    config: ColocationConfig,
    policy_kind: PolicyKind,
    options: &ExperimentOptions,
    catalog: &Catalog,
) -> ColocationOutcome {
    let service_id = config.service.id;
    let service_profile: ServiceProfile = config.service.clone();
    let app_ids = config.apps.clone();
    let mut sim = ColocationSim::new(config, catalog);

    let variant_counts: Vec<usize> = app_ids
        .iter()
        .map(|id| catalog.profile(*id).map_or(0, |p| p.variant_count()))
        .collect();
    let initial_cores: Vec<u32> = (0..app_ids.len()).map(|i| sim.app(i).cores()).collect();
    let controller_config = ControllerConfig {
        decision_interval_s: options.decision_interval_s,
        slack_threshold: options.slack_threshold,
        ..ControllerConfig::default()
    };
    let start_pointer = (derive_seed(options.seed, 7) % app_ids.len() as u64) as usize;
    let mut policy = policy_kind.build(controller_config, &variant_counts, &initial_cores, start_pointer);
    let mut monitor = PerformanceMonitor::new(
        MonitorConfig::for_qos(service_profile.qos_target_s),
        derive_seed(options.seed, 8),
    );
    let mut actuator = Actuator::new();

    let fair_service_cores = sim.service_cores();
    let mut p99_stats = OnlineStats::new();
    let mut violations = 0usize;
    let mut intervals = 0usize;
    let mut max_extra_cores = 0u32;
    let mut max_reclaimed_per_app = vec![0u32; app_ids.len()];

    let mut latency_series = TimeSeries::new("p99_latency_s");
    let mut cores_series = TimeSeries::new("service_extra_cores");
    let mut variant_series: Vec<TimeSeries> = app_ids
        .iter()
        .map(|id| TimeSeries::new(format!("variant_{}", id.name())))
        .collect();
    let mut reclaimed_series: Vec<TimeSeries> = app_ids
        .iter()
        .map(|id| TimeSeries::new(format!("reclaimed_{}", id.name())))
        .collect();

    for _ in 0..options.max_intervals {
        let obs = sim.advance(options.decision_interval_s);
        intervals += 1;
        p99_stats.push(obs.p99_latency_s);
        if obs.qos_violated() {
            violations += 1;
        }
        let extra = sim.service_cores().saturating_sub(fair_service_cores);
        max_extra_cores = max_extra_cores.max(extra);

        latency_series.push(obs.time_s, obs.p99_latency_s);
        cores_series.push(obs.time_s, extra as f64);
        for (i, status) in obs.apps.iter().enumerate() {
            // Variant index for plotting: 0 = precise, k = k-th approximate variant.
            let v = status.variant.map_or(0.0, |x| (x + 1) as f64);
            variant_series[i].push(obs.time_s, v);
            reclaimed_series[i].push(obs.time_s, status.cores_reclaimed as f64);
            max_reclaimed_per_app[i] = max_reclaimed_per_app[i].max(status.cores_reclaimed);
        }

        if options.stop_when_apps_finish && obs.all_apps_finished {
            break;
        }

        // Monitor → policy → actuator, exactly once per decision interval.
        let report = monitor.observe_interval(&obs.latency_samples_s);
        let actions = policy.decide(&report);
        actuator.apply_all(&mut sim, &actions);
    }

    let app_outcomes: Vec<AppOutcome> = (0..app_ids.len())
        .map(|i| {
            let state = sim.app(i);
            AppOutcome {
                app: app_ids[i],
                finished: state.is_finished(),
                relative_execution_time: state.relative_execution_time(),
                inaccuracy_pct: state.inaccuracy_pct(),
                max_cores_reclaimed: max_reclaimed_per_app[i],
                instrumentation_overhead: state.profile().instrumentation_overhead,
            }
        })
        .collect();

    let mut trace = TraceBundle::new();
    trace.insert(latency_series);
    trace.insert(cores_series);
    for s in variant_series {
        trace.insert(s);
    }
    for s in reclaimed_series {
        trace.insert(s);
    }

    let mean_p99_s = p99_stats.mean();
    ColocationOutcome {
        service: service_id,
        policy: policy_kind.name(),
        apps: app_ids,
        intervals,
        qos_target_s: service_profile.qos_target_s,
        mean_p99_s,
        max_p99_s: p99_stats.max(),
        qos_violation_fraction: violations as f64 / intervals.max(1) as f64,
        tail_latency_ratio: mean_p99_s / service_profile.qos_target_s,
        max_extra_service_cores: max_extra_cores,
        app_outcomes,
        trace,
    }
}

/// Runs the Fig. 5-style aggregate comparison (Precise vs Pliant) for one service across a
/// set of applications, returning `(app, precise outcome, pliant outcome)` triples.
pub fn aggregate_comparison(
    service: ServiceId,
    apps: &[AppId],
    options: &ExperimentOptions,
) -> Vec<(AppId, ColocationOutcome, ColocationOutcome)> {
    apps.iter()
        .map(|&app| {
            let precise = run_colocation(service, &[app], PolicyKind::Precise, options);
            let pliant = run_colocation(service, &[app], PolicyKind::Pliant, options);
            (app, precise, pliant)
        })
        .collect()
}

/// Runs the Fig. 8 load sweep for one service/application pair, returning
/// `(load_fraction, outcome)` pairs under the Pliant policy.
pub fn load_sweep(
    service: ServiceId,
    app: AppId,
    loads: &[f64],
    options: &ExperimentOptions,
) -> Vec<(f64, ColocationOutcome)> {
    loads
        .iter()
        .map(|&load| {
            let opts = ExperimentOptions {
                load_fraction: load,
                ..*options
            };
            (load, run_colocation(service, &[app], PolicyKind::Pliant, &opts))
        })
        .collect()
}

/// Runs the Fig. 9 decision-interval sweep for one service/application pair, returning
/// `(interval_s, outcome)` pairs under the Pliant policy.
pub fn interval_sweep(
    service: ServiceId,
    app: AppId,
    intervals_s: &[f64],
    options: &ExperimentOptions,
) -> Vec<(f64, ColocationOutcome)> {
    intervals_s
        .iter()
        .map(|&dt| {
            let opts = ExperimentOptions {
                decision_interval_s: dt,
                // Keep the simulated wall-clock horizon comparable across intervals.
                max_intervals: ((options.max_intervals as f64)
                    * (options.decision_interval_s / dt).max(0.25)) as usize,
                ..*options
            };
            (dt, run_colocation(service, &[app], PolicyKind::Pliant, &opts))
        })
        .collect()
}

/// Classification used by the Fig. 10 breakdown: what it took to restore QoS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EffortClass {
    /// Approximation alone was sufficient.
    ApproximationOnly,
    /// Exactly this many cores had to be reclaimed (1–3).
    Cores(u32),
    /// Four or more cores had to be reclaimed.
    FourPlusCores,
}

/// Classifies an outcome for the Fig. 10 breakdown.
pub fn classify_effort(outcome: &ColocationOutcome) -> EffortClass {
    match outcome.max_extra_service_cores {
        0 => EffortClass::ApproximationOnly,
        n @ 1..=3 => EffortClass::Cores(n),
        _ => EffortClass::FourPlusCores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options(seed: u64) -> ExperimentOptions {
        ExperimentOptions {
            max_intervals: 60,
            seed,
            ..ExperimentOptions::default()
        }
    }

    #[test]
    fn pliant_meets_qos_where_precise_does_not() {
        let options = quick_options(5);
        for service in [ServiceId::Nginx, ServiceId::Memcached] {
            let precise = run_colocation(service, &[AppId::Canneal], PolicyKind::Precise, &options);
            let pliant = run_colocation(service, &[AppId::Canneal], PolicyKind::Pliant, &options);
            assert!(
                precise.tail_latency_ratio > 1.4,
                "{service}: precise baseline should violate QoS (ratio {})",
                precise.tail_latency_ratio
            );
            assert!(
                pliant.qos_violation_fraction < precise.qos_violation_fraction,
                "{service}: Pliant must violate QoS less often than the precise baseline"
            );
            assert!(
                pliant.tail_latency_ratio < precise.tail_latency_ratio * 0.7,
                "{service}: Pliant must substantially reduce the tail-latency ratio"
            );
        }
    }

    #[test]
    fn pliant_respects_the_quality_threshold() {
        let options = quick_options(7);
        let outcome = run_colocation(ServiceId::Memcached, &[AppId::Canneal], PolicyKind::Pliant, &options);
        for app in &outcome.app_outcomes {
            assert!(
                app.inaccuracy_pct <= 5.5,
                "{}: inaccuracy {} exceeds the tolerance band",
                app.app,
                app.inaccuracy_pct
            );
        }
    }

    #[test]
    fn precise_baseline_has_zero_inaccuracy() {
        let options = quick_options(9);
        let outcome = run_colocation(ServiceId::Nginx, &[AppId::Bayesian], PolicyKind::Precise, &options);
        assert_eq!(outcome.mean_inaccuracy_pct(), 0.0);
        assert_eq!(outcome.max_extra_service_cores, 0);
        assert_eq!(outcome.policy, "precise");
    }

    #[test]
    fn trace_contains_expected_series() {
        let options = quick_options(11);
        let outcome = run_colocation(ServiceId::Nginx, &[AppId::Snp], PolicyKind::Pliant, &options);
        assert!(outcome.trace.get("p99_latency_s").is_some());
        assert!(outcome.trace.get("service_extra_cores").is_some());
        assert!(outcome.trace.get("variant_snp").is_some());
        assert!(outcome.trace.get("reclaimed_snp").is_some());
        assert_eq!(outcome.trace.get("p99_latency_s").unwrap().len(), outcome.intervals);
    }

    #[test]
    fn snp_with_memcached_uses_approximation_alone() {
        let options = quick_options(13);
        let outcome = run_colocation(ServiceId::Memcached, &[AppId::Snp], PolicyKind::Pliant, &options);
        assert!(
            outcome.max_extra_service_cores <= 1,
            "SNP + memcached should need at most a brief single-core reclamation, got {}",
            outcome.max_extra_service_cores
        );
        assert_eq!(classify_effort(&outcome), match outcome.max_extra_service_cores {
            0 => EffortClass::ApproximationOnly,
            n => EffortClass::Cores(n),
        });
    }

    #[test]
    fn multi_app_colocation_balances_the_burden() {
        let options = quick_options(17);
        let outcome = run_colocation(
            ServiceId::Nginx,
            &[AppId::Canneal, AppId::Bayesian],
            PolicyKind::Pliant,
            &options,
        );
        assert_eq!(outcome.app_outcomes.len(), 2);
        let reclaimed: Vec<u32> = outcome.app_outcomes.iter().map(|a| a.max_cores_reclaimed).collect();
        let spread = reclaimed.iter().max().unwrap() - reclaimed.iter().min().unwrap();
        assert!(spread <= 2, "round-robin should not lopside core reclamation: {reclaimed:?}");
    }

    #[test]
    fn load_sweep_is_monotone_in_violations_at_the_extremes() {
        let options = ExperimentOptions {
            max_intervals: 30,
            ..quick_options(19)
        };
        let sweep = load_sweep(ServiceId::Nginx, AppId::KMeans, &[0.4, 0.95], &options);
        let low = &sweep[0].1;
        let high = &sweep[1].1;
        assert!(low.qos_violation_fraction <= high.qos_violation_fraction);
        assert!(low.tail_latency_ratio < high.tail_latency_ratio);
    }

    #[test]
    fn interval_sweep_penalizes_coarse_intervals() {
        let options = ExperimentOptions {
            max_intervals: 60,
            ..quick_options(23)
        };
        let sweep = interval_sweep(ServiceId::Memcached, AppId::Canneal, &[1.0, 8.0], &options);
        let fine = &sweep[0].1;
        let coarse = &sweep[1].1;
        assert!(
            fine.qos_violation_fraction <= coarse.qos_violation_fraction + 0.05,
            "1 s decisions ({}) should not be worse than 8 s decisions ({})",
            fine.qos_violation_fraction,
            coarse.qos_violation_fraction
        );
    }

    #[test]
    fn effort_classification_bins_correctly() {
        let options = quick_options(29);
        let outcome = run_colocation(ServiceId::MongoDb, &[AppId::Raytrace], PolicyKind::Pliant, &options);
        let class = classify_effort(&outcome);
        match outcome.max_extra_service_cores {
            0 => assert_eq!(class, EffortClass::ApproximationOnly),
            n if n <= 3 => assert_eq!(class, EffortClass::Cores(n)),
            _ => assert_eq!(class, EffortClass::FourPlusCores),
        }
    }
}
