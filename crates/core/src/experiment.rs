//! Experiment outcome types and legacy free-function drivers.
//!
//! The outcome types ([`ColocationOutcome`], [`AppOutcome`], [`EffortClass`]) are produced
//! by the [`crate::engine::Engine`] for every scenario it runs.
//!
//! The free functions in this module ([`run_colocation`], [`aggregate_comparison`],
//! [`load_sweep`], [`interval_sweep`]) are the pre-scenario API, kept as thin wrappers
//! over [`crate::scenario::Scenario`] / [`crate::suite::Suite`] so code importing them
//! from this module path (and the equivalence tests below) can keep calling them; they
//! are intentionally no longer re-exported from the `pliant` prelude. Two behavioral
//! notes versus the pre-scenario implementations: options now pass through scenario
//! validation, so degenerate inputs (zero `max_intervals`, non-positive loads or
//! intervals) panic with a clear message instead of silently producing empty outcomes,
//! and `interval_sweep` holds the wall clock constant (see its docs). New code should
//! build scenarios directly — see the crate-level docs.

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::AppId;
use pliant_telemetry::obs::ObsSummary;
use pliant_telemetry::series::TraceBundle;
use pliant_workloads::profile::LoadPhase;
use pliant_workloads::service::ServiceId;

use crate::engine::Engine;
use crate::policy::PolicyKind;
use crate::scenario::Scenario;
use crate::suite::Suite;

/// Options controlling one co-location experiment (legacy; superseded by
/// [`crate::scenario::Scenario`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOptions {
    /// Offered load as a fraction of the service's saturation throughput.
    pub load_fraction: f64,
    /// Decision interval in seconds.
    pub decision_interval_s: f64,
    /// Latency-slack threshold for relaxing approximation / returning cores.
    pub slack_threshold: f64,
    /// Hard cap on the number of decision intervals simulated.
    pub max_intervals: usize,
    /// Whether to stop as soon as every batch application finishes.
    pub stop_when_apps_finish: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            load_fraction: 0.75,
            decision_interval_s: 1.0,
            slack_threshold: 0.10,
            max_intervals: 120,
            stop_when_apps_finish: true,
            seed: 42,
        }
    }
}

impl ExperimentOptions {
    /// The equivalent scenario for one (service, apps, policy) triple.
    ///
    /// # Panics
    ///
    /// Panics if the options describe an invalid scenario (no applications, zero
    /// `max_intervals`, non-positive load or decision interval).
    pub fn to_scenario(&self, service: ServiceId, apps: &[AppId], policy: PolicyKind) -> Scenario {
        Scenario::builder(service)
            .apps(apps.iter().copied())
            .policy(policy)
            .load(self.load_fraction)
            .decision_interval_s(self.decision_interval_s)
            .slack_threshold(self.slack_threshold)
            .horizon_intervals(self.max_intervals)
            .stop_when_apps_finish(self.stop_when_apps_finish)
            .seed(self.seed)
            .build()
    }
}

/// Per-application outcome of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// The application.
    pub app: AppId,
    /// Whether it finished within the simulated horizon.
    pub finished: bool,
    /// Execution time relative to the nominal precise run (1.0 = nominal).
    pub relative_execution_time: f64,
    /// Final output-quality loss in percent.
    pub inaccuracy_pct: f64,
    /// Maximum number of cores simultaneously reclaimed from this application.
    pub max_cores_reclaimed: u32,
    /// Instrumentation (dynamic recompilation) overhead fraction of this application.
    pub instrumentation_overhead: f64,
}

/// QoS statistics aggregated over the intervals a run spent in one [`LoadPhase`].
///
/// Time-varying load profiles split a run into phases (steady, ramp-up, peak,
/// ramp-down); comparing the violation rate during ramps against the steady state shows
/// how quickly the runtime re-approximates into a transient and recovers out of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseQosStats {
    /// The load phase these statistics cover.
    pub phase: LoadPhase,
    /// Number of decision intervals spent in this phase.
    pub intervals: usize,
    /// Intervals in this phase that violated the QoS target.
    pub qos_violations: usize,
    /// `qos_violations / intervals`.
    pub qos_violation_fraction: f64,
    /// Mean of the per-interval p99 latencies in this phase, in seconds.
    pub mean_p99_s: f64,
    /// Mean offered load during this phase, as a fraction of saturation throughput.
    pub mean_offered_load: f64,
}

/// Outcome of one co-location experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColocationOutcome {
    /// Interactive service.
    pub service: ServiceId,
    /// Policy used.
    pub policy: PolicyKind,
    /// Co-located applications.
    pub apps: Vec<AppId>,
    /// Number of decision intervals simulated (including idle ones).
    pub intervals: usize,
    /// Intervals that served no requests at all (zero arrivals, e.g. the trough of a
    /// load profile). Idle intervals carry no latency evidence, so they are excluded
    /// from every latency/QoS statistic below. Absent in pre-profile archives
    /// (deserializes as 0).
    #[serde(default)]
    pub idle_intervals: usize,
    /// QoS target in seconds.
    pub qos_target_s: f64,
    /// Mean of the per-interval p99 latencies over intervals that served traffic, in
    /// seconds.
    pub mean_p99_s: f64,
    /// Maximum per-interval p99 latency, in seconds.
    pub max_p99_s: f64,
    /// Fraction of traffic-serving intervals that violated QoS.
    pub qos_violation_fraction: f64,
    /// `mean_p99_s / qos_target_s` — the headline tail-latency-to-QoS ratio.
    pub tail_latency_ratio: f64,
    /// Maximum number of cores the service held beyond its fair share at any point.
    pub max_extra_service_cores: u32,
    /// Total electrical energy the node consumed over the run, in joules (idle and
    /// parked intervals included — energy is billed whenever the machine is on).
    /// Absent in pre-energy archives (deserializes as 0).
    #[serde(default)]
    pub total_energy_j: f64,
    /// Mean electrical power over the run, in watts (`total_energy_j` divided by the
    /// simulated wall clock). Absent in pre-energy archives (deserializes as 0).
    #[serde(default)]
    pub mean_power_w: f64,
    /// Energy per completed batch job, in joules (`total_energy_j` divided by the
    /// number of applications that finished; `0.0` when none finished). Absent in
    /// pre-energy archives (deserializes as 0).
    #[serde(default)]
    pub energy_per_completed_job_j: f64,
    /// QoS statistics per load phase over traffic-serving intervals, in
    /// [`LoadPhase::all`] order, omitting phases the run never entered (constant-load
    /// runs report a single `steady` entry). Absent in pre-profile archives
    /// (deserializes as empty).
    #[serde(default)]
    pub phase_qos: Vec<PhaseQosStats>,
    /// Per-application outcomes.
    pub app_outcomes: Vec<AppOutcome>,
    /// Time series recorded during the run (tail latency, reclaimed cores, variants).
    pub trace: TraceBundle,
    /// Observability rollup: what the run emitted, per event kind (empty at the
    /// default [`pliant_telemetry::obs::ObsLevel::Off`]). Absent in pre-observability
    /// archives (deserializes as the empty summary).
    #[serde(default)]
    pub obs: ObsSummary,
}

impl ColocationOutcome {
    /// Whether QoS was met for (almost) the entire run; the 5% allowance absorbs isolated
    /// measurement-noise spikes, matching how the paper reports "QoS is met".
    pub fn qos_met(&self) -> bool {
        self.qos_violation_fraction <= 0.05 && self.tail_latency_ratio <= 1.0
    }

    /// Mean inaccuracy across the co-located applications, in percent.
    pub fn mean_inaccuracy_pct(&self) -> f64 {
        if self.app_outcomes.is_empty() {
            return 0.0;
        }
        self.app_outcomes
            .iter()
            .map(|a| a.inaccuracy_pct)
            .sum::<f64>()
            / self.app_outcomes.len() as f64
    }

    /// Whether approximation alone (no core reclamation) was sufficient for the whole run.
    pub fn approximation_alone(&self) -> bool {
        self.max_extra_service_cores == 0
    }

    /// The QoS statistics of one load phase, if the run entered it.
    pub fn phase(&self, phase: LoadPhase) -> Option<&PhaseQosStats> {
        self.phase_qos.iter().find(|s| s.phase == phase)
    }
}

/// Runs one co-location experiment with the paper-default platform and calibration.
///
/// Legacy wrapper over [`Scenario`]; equivalent to
/// `options.to_scenario(service, apps, policy).run()`.
pub fn run_colocation(
    service: ServiceId,
    apps: &[AppId],
    policy: PolicyKind,
    options: &ExperimentOptions,
) -> ColocationOutcome {
    options.to_scenario(service, apps, policy).run()
}

/// Runs the Fig. 5-style aggregate comparison (Precise vs Pliant) for one service across a
/// set of applications, returning `(app, precise outcome, pliant outcome)` triples.
///
/// Legacy wrapper over a policy-sweep [`Suite`] with common random numbers, so each
/// (precise, pliant) pair sees identical workload randomness.
pub fn aggregate_comparison(
    service: ServiceId,
    apps: &[AppId],
    options: &ExperimentOptions,
) -> Vec<(AppId, ColocationOutcome, ColocationOutcome)> {
    if apps.is_empty() {
        return Vec::new();
    }
    let suite = Suite::new(options.to_scenario(service, &[apps[0]], PolicyKind::Pliant))
        .named("aggregate-comparison")
        .for_each_app(apps.iter().copied())
        .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
    let results = Engine::new().run_collect(&suite);
    results
        .chunks_exact(2)
        .zip(apps)
        .map(|(pair, &app)| (app, pair[0].outcome.clone(), pair[1].outcome.clone()))
        .collect()
}

/// Runs the Fig. 8 load sweep for one service/application pair, returning
/// `(load_fraction, outcome)` pairs under the Pliant policy.
///
/// Legacy wrapper over a load-sweep [`Suite`].
pub fn load_sweep(
    service: ServiceId,
    app: AppId,
    loads: &[f64],
    options: &ExperimentOptions,
) -> Vec<(f64, ColocationOutcome)> {
    let suite = Suite::new(options.to_scenario(service, &[app], PolicyKind::Pliant))
        .named("load-sweep")
        .sweep_loads(loads.iter().copied());
    Engine::new()
        .run_collect(&suite)
        .into_iter()
        .map(|cell| (cell.scenario.load_fraction, cell.outcome))
        .collect()
}

/// Runs the Fig. 9 decision-interval sweep for one service/application pair, returning
/// `(interval_s, outcome)` pairs under the Pliant policy.
///
/// Legacy wrapper over an interval-sweep [`Suite`] with a wall-clock horizon: every cell
/// simulates the same `options.max_intervals × options.decision_interval_s` seconds of
/// service time. (The pre-scenario implementation clamped coarse cells to ≥25% of the
/// fine cell's interval *count*, silently giving 8 s decisions several times the wall
/// clock of 1 s decisions.)
pub fn interval_sweep(
    service: ServiceId,
    app: AppId,
    intervals_s: &[f64],
    options: &ExperimentOptions,
) -> Vec<(f64, ColocationOutcome)> {
    let wall_clock_s = options.max_intervals as f64 * options.decision_interval_s;
    let base = Scenario::builder(service)
        .app(app)
        .policy(PolicyKind::Pliant)
        .load(options.load_fraction)
        .decision_interval_s(options.decision_interval_s)
        .slack_threshold(options.slack_threshold)
        .horizon_seconds(wall_clock_s)
        .stop_when_apps_finish(options.stop_when_apps_finish)
        .seed(options.seed)
        .build();
    let suite = Suite::new(base)
        .named("interval-sweep")
        .sweep_decision_intervals_s(intervals_s.iter().copied());
    Engine::new()
        .run_collect(&suite)
        .into_iter()
        .map(|cell| (cell.scenario.decision_interval_s, cell.outcome))
        .collect()
}

/// Classification used by the Fig. 10 breakdown: what it took to restore QoS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EffortClass {
    /// Approximation alone was sufficient.
    ApproximationOnly,
    /// Exactly this many cores had to be reclaimed (1–3).
    Cores(u32),
    /// Four or more cores had to be reclaimed.
    FourPlusCores,
}

/// Classifies an outcome for the Fig. 10 breakdown.
pub fn classify_effort(outcome: &ColocationOutcome) -> EffortClass {
    match outcome.max_extra_service_cores {
        0 => EffortClass::ApproximationOnly,
        n @ 1..=3 => EffortClass::Cores(n),
        _ => EffortClass::FourPlusCores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options(seed: u64) -> ExperimentOptions {
        ExperimentOptions {
            max_intervals: 60,
            seed,
            ..ExperimentOptions::default()
        }
    }

    #[test]
    fn pliant_meets_qos_where_precise_does_not() {
        let options = quick_options(5);
        for service in [ServiceId::Nginx, ServiceId::Memcached] {
            let precise = run_colocation(service, &[AppId::Canneal], PolicyKind::Precise, &options);
            let pliant = run_colocation(service, &[AppId::Canneal], PolicyKind::Pliant, &options);
            assert!(
                precise.tail_latency_ratio > 1.4,
                "{service}: precise baseline should violate QoS (ratio {})",
                precise.tail_latency_ratio
            );
            assert!(
                pliant.qos_violation_fraction < precise.qos_violation_fraction,
                "{service}: Pliant must violate QoS less often than the precise baseline"
            );
            assert!(
                pliant.tail_latency_ratio < precise.tail_latency_ratio * 0.7,
                "{service}: Pliant must substantially reduce the tail-latency ratio"
            );
        }
    }

    #[test]
    fn aggregate_comparison_of_no_apps_is_empty() {
        let options = quick_options(1);
        assert!(aggregate_comparison(ServiceId::Nginx, &[], &options).is_empty());
    }

    #[test]
    fn wrapper_equals_scenario_api() {
        let options = quick_options(21);
        let via_wrapper = run_colocation(
            ServiceId::Nginx,
            &[AppId::KMeans],
            PolicyKind::Pliant,
            &options,
        );
        let via_scenario = options
            .to_scenario(ServiceId::Nginx, &[AppId::KMeans], PolicyKind::Pliant)
            .run();
        assert_eq!(via_wrapper.mean_p99_s, via_scenario.mean_p99_s);
        assert_eq!(
            via_wrapper.qos_violation_fraction,
            via_scenario.qos_violation_fraction
        );
        assert_eq!(via_wrapper.app_outcomes, via_scenario.app_outcomes);
    }

    #[test]
    fn pliant_respects_the_quality_threshold() {
        let options = quick_options(7);
        let outcome = run_colocation(
            ServiceId::Memcached,
            &[AppId::Canneal],
            PolicyKind::Pliant,
            &options,
        );
        for app in &outcome.app_outcomes {
            assert!(
                app.inaccuracy_pct <= 5.5,
                "{}: inaccuracy {} exceeds the tolerance band",
                app.app,
                app.inaccuracy_pct
            );
        }
    }

    #[test]
    fn precise_baseline_has_zero_inaccuracy() {
        let options = quick_options(9);
        let outcome = run_colocation(
            ServiceId::Nginx,
            &[AppId::Bayesian],
            PolicyKind::Precise,
            &options,
        );
        assert_eq!(outcome.mean_inaccuracy_pct(), 0.0);
        assert_eq!(outcome.max_extra_service_cores, 0);
        assert_eq!(outcome.policy, PolicyKind::Precise);
    }

    #[test]
    fn trace_contains_expected_series() {
        let options = quick_options(11);
        let outcome = run_colocation(
            ServiceId::Nginx,
            &[AppId::Snp],
            PolicyKind::Pliant,
            &options,
        );
        assert!(outcome.trace.get("p99_latency_s").is_some());
        assert!(outcome.trace.get("service_extra_cores").is_some());
        assert!(outcome.trace.get("variant_snp").is_some());
        assert!(outcome.trace.get("reclaimed_snp").is_some());
        assert_eq!(
            outcome.trace.get("p99_latency_s").unwrap().len(),
            outcome.intervals
        );
    }

    #[test]
    fn snp_with_memcached_uses_approximation_alone() {
        let options = quick_options(13);
        let outcome = run_colocation(
            ServiceId::Memcached,
            &[AppId::Snp],
            PolicyKind::Pliant,
            &options,
        );
        assert!(
            outcome.max_extra_service_cores <= 1,
            "SNP + memcached should need at most a brief single-core reclamation, got {}",
            outcome.max_extra_service_cores
        );
        assert_eq!(
            classify_effort(&outcome),
            match outcome.max_extra_service_cores {
                0 => EffortClass::ApproximationOnly,
                n => EffortClass::Cores(n),
            }
        );
    }

    #[test]
    fn multi_app_colocation_balances_the_burden() {
        let options = quick_options(17);
        let outcome = run_colocation(
            ServiceId::Nginx,
            &[AppId::Canneal, AppId::Bayesian],
            PolicyKind::Pliant,
            &options,
        );
        assert_eq!(outcome.app_outcomes.len(), 2);
        let reclaimed: Vec<u32> = outcome
            .app_outcomes
            .iter()
            .map(|a| a.max_cores_reclaimed)
            .collect();
        let spread = reclaimed.iter().max().unwrap() - reclaimed.iter().min().unwrap();
        assert!(
            spread <= 2,
            "round-robin should not lopside core reclamation: {reclaimed:?}"
        );
    }

    #[test]
    fn load_sweep_is_monotone_in_violations_at_the_extremes() {
        let options = ExperimentOptions {
            max_intervals: 30,
            ..quick_options(19)
        };
        let sweep = load_sweep(ServiceId::Nginx, AppId::KMeans, &[0.4, 0.95], &options);
        let low = &sweep[0].1;
        let high = &sweep[1].1;
        assert!(low.qos_violation_fraction <= high.qos_violation_fraction);
        assert!(low.tail_latency_ratio < high.tail_latency_ratio);
    }

    #[test]
    fn interval_sweep_penalizes_coarse_intervals() {
        let options = ExperimentOptions {
            max_intervals: 60,
            ..quick_options(23)
        };
        let sweep = interval_sweep(ServiceId::Memcached, AppId::Canneal, &[1.0, 8.0], &options);
        let fine = &sweep[0].1;
        let coarse = &sweep[1].1;
        assert!(
            fine.qos_violation_fraction <= coarse.qos_violation_fraction + 0.05,
            "1 s decisions ({}) should not be worse than 8 s decisions ({})",
            fine.qos_violation_fraction,
            coarse.qos_violation_fraction
        );
    }

    #[test]
    fn interval_sweep_holds_wall_clock_constant() {
        let options = ExperimentOptions {
            max_intervals: 40,
            stop_when_apps_finish: false,
            ..quick_options(27)
        };
        let sweep = interval_sweep(
            ServiceId::Memcached,
            AppId::Canneal,
            &[1.0, 2.0, 8.0],
            &options,
        );
        for (dt, outcome) in &sweep {
            let simulated_s = *dt * outcome.intervals as f64;
            assert!(
                (simulated_s - 40.0).abs() <= *dt,
                "dt={dt}: simulated {simulated_s}s, want ≈40s of wall clock"
            );
        }
    }

    #[test]
    fn effort_classification_bins_correctly() {
        let options = quick_options(29);
        let outcome = run_colocation(
            ServiceId::MongoDb,
            &[AppId::Raytrace],
            PolicyKind::Pliant,
            &options,
        );
        let class = classify_effort(&outcome);
        match outcome.max_extra_service_cores {
            0 => assert_eq!(class, EffortClass::ApproximationOnly),
            n if n <= 3 => assert_eq!(class, EffortClass::Cores(n)),
            _ => assert_eq!(class, EffortClass::FourPlusCores),
        }
    }
}
