//! Declarative description of one co-location experiment.
//!
//! A [`Scenario`] is a complete, serializable description of a single run: which
//! interactive service shares the node with which approximate applications, under which
//! [`PolicyKind`], at what load, with which controller knobs, for how long, and from which
//! seed. Scenarios are built with the fluent [`ScenarioBuilder`] and executed by the
//! [`crate::engine::Engine`] (or [`Scenario::run`] for one-off runs); grids of scenarios
//! are composed with [`crate::suite::Suite`].
//!
//! Scenarios are plain data — serde round-trippable — so suites can be archived next to
//! their results and replayed bit-for-bit.

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::AppId;
use pliant_workloads::profile::LoadProfile;
use pliant_workloads::service::ServiceId;

use crate::engine::Engine;
use crate::experiment::ColocationOutcome;
use crate::policy::PolicyKind;

/// How long a scenario runs.
///
/// `Seconds` is the right choice for sweeps over the decision interval: it pins the
/// simulated wall-clock horizon, so an 8 s-interval cell simulates the same amount of
/// service time as a 1 s-interval cell instead of 8× more.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Horizon {
    /// A fixed number of decision intervals (wall-clock horizon scales with the interval).
    Intervals(usize),
    /// A fixed amount of simulated wall-clock time (interval count scales inversely with
    /// the decision interval).
    Seconds(f64),
}

impl Horizon {
    /// The number of decision intervals this horizon allows at interval length `dt_s`.
    pub fn max_intervals(&self, dt_s: f64) -> usize {
        match *self {
            Horizon::Intervals(n) => n.max(1),
            Horizon::Seconds(s) => ((s / dt_s).ceil() as usize).max(1),
        }
    }

    /// The simulated wall-clock budget in seconds at interval length `dt_s`.
    pub fn wall_clock_s(&self, dt_s: f64) -> f64 {
        match *self {
            Horizon::Intervals(n) => n.max(1) as f64 * dt_s,
            Horizon::Seconds(s) => s,
        }
    }
}

/// A complete, serializable description of one co-location experiment.
///
/// Construct with [`Scenario::builder`]. All fields are public so sinks and analysis code
/// can read them back from archived suites.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Scenario {
    /// Optional display label (suites set this to the cell's sweep coordinates).
    pub label: Option<String>,
    /// Interactive service sharing the node.
    pub service: ServiceId,
    /// Co-located approximate applications (at least one).
    pub apps: Vec<AppId>,
    /// Runtime policy managing the co-location.
    pub policy: PolicyKind,
    /// Offered load as a fraction of the service's saturation throughput. When
    /// `load_profile` is set, this is only the fallback the profile overrides; see
    /// [`Scenario::effective_load_profile`].
    pub load_fraction: f64,
    /// Time-varying load profile (`None` = constant at `load_fraction`). Sampled by the
    /// simulator at the start of every decision interval.
    pub load_profile: Option<LoadProfile>,
    /// Decision interval in seconds.
    pub decision_interval_s: f64,
    /// Latency-slack threshold for relaxing approximation / returning cores.
    pub slack_threshold: f64,
    /// Consecutive high-slack intervals required before the controller relaxes.
    pub consecutive_slack_required: u32,
    /// How long to simulate.
    pub horizon: Horizon,
    /// Whether to stop as soon as every batch application finishes.
    pub stop_when_apps_finish: bool,
    /// Overrides whether applications run under dynamic instrumentation. `None` picks the
    /// policy default: instrumented for every policy except the precise baseline, which
    /// needs no instrumentation.
    pub instrumented: Option<bool>,
    /// Overrides the service's QoS target in seconds (`None` = paper default).
    pub qos_target_s: Option<f64>,
    /// Overrides the number of latency samples delivered per decision interval.
    pub samples_per_interval: Option<usize>,
    /// Master seed for every stochastic component of the run.
    pub seed: u64,
}

impl Scenario {
    /// Starts building a scenario for `service` with paper-default knobs.
    pub fn builder(service: ServiceId) -> ScenarioBuilder {
        ScenarioBuilder::new(service)
    }

    /// Whether the applications run instrumented (resolving the policy default).
    pub fn effective_instrumented(&self) -> bool {
        self.instrumented
            .unwrap_or(self.policy != PolicyKind::Precise)
    }

    /// The load profile the simulator runs: the explicit `load_profile` if one is set,
    /// otherwise constant at `load_fraction`.
    pub fn effective_load_profile(&self) -> LoadProfile {
        self.load_profile
            .clone()
            .unwrap_or_else(|| LoadProfile::constant(self.load_fraction))
    }

    /// The number of decision intervals this scenario simulates at most.
    pub fn max_intervals(&self) -> usize {
        self.horizon.max_intervals(self.decision_interval_s)
    }

    /// Checks the same invariants [`ScenarioBuilder::try_build`] enforces.
    ///
    /// Scenarios are plain serde-able data, so a deserialized archive (or a hand-edited
    /// one) can describe an impossible experiment; the engine re-checks this before
    /// running.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.apps.is_empty() {
            return Err(ScenarioError::NoApps);
        }
        if !(self.load_fraction > 0.0 && self.load_fraction <= 1.5) {
            return Err(ScenarioError::InvalidLoad);
        }
        if !(self.decision_interval_s > 0.0 && self.decision_interval_s.is_finite()) {
            return Err(ScenarioError::InvalidDecisionInterval);
        }
        let horizon_ok = match self.horizon {
            Horizon::Intervals(n) => n > 0,
            Horizon::Seconds(secs) => secs > 0.0 && secs.is_finite(),
        };
        if !horizon_ok {
            return Err(ScenarioError::InvalidHorizon);
        }
        if !(self.slack_threshold >= 0.0 && self.slack_threshold.is_finite()) {
            return Err(ScenarioError::InvalidSlackThreshold);
        }
        if let Some(qos_s) = self.qos_target_s {
            if !(qos_s > 0.0 && qos_s.is_finite()) {
                return Err(ScenarioError::InvalidQosTarget);
            }
        }
        if let Some(profile) = &self.load_profile {
            profile
                .validate()
                .map_err(ScenarioError::InvalidLoadProfile)?;
        }
        Ok(())
    }

    /// Runs this scenario on a fresh serial [`Engine`] with the paper-default catalog.
    ///
    /// For more than a handful of runs, build one [`Engine`] and reuse it — the engine
    /// caches the catalog and can execute suites in parallel.
    pub fn run(&self) -> ColocationOutcome {
        Engine::new().run_scenario(self)
    }

    /// The label if set, otherwise a generated `service+apps/policy` description.
    pub fn describe(&self) -> String {
        match &self.label {
            Some(l) => l.clone(),
            None => {
                let apps: Vec<&str> = self.apps.iter().map(|a| a.name()).collect();
                format!("{}+{}/{}", self.service.name(), apps.join("+"), self.policy)
            }
        }
    }
}

// Hand-written (not derived) so the invariants are enforced at the archive boundary:
// a hand-edited or corrupted suite is rejected here with a descriptive error instead of
// deserializing into an impossible experiment that fails later, mid-run. The mirror
// struct keeps the derived field plumbing; only the validate() call is added on top.
impl serde::Deserialize for Scenario {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        #[derive(Deserialize)]
        struct ScenarioWire {
            label: Option<String>,
            service: ServiceId,
            apps: Vec<AppId>,
            policy: PolicyKind,
            load_fraction: f64,
            load_profile: Option<LoadProfile>,
            decision_interval_s: f64,
            slack_threshold: f64,
            consecutive_slack_required: u32,
            horizon: Horizon,
            stop_when_apps_finish: bool,
            instrumented: Option<bool>,
            qos_target_s: Option<f64>,
            samples_per_interval: Option<usize>,
            seed: u64,
        }
        let w = ScenarioWire::from_value(value)?;
        let scenario = Scenario {
            label: w.label,
            service: w.service,
            apps: w.apps,
            policy: w.policy,
            load_fraction: w.load_fraction,
            load_profile: w.load_profile,
            decision_interval_s: w.decision_interval_s,
            slack_threshold: w.slack_threshold,
            consecutive_slack_required: w.consecutive_slack_required,
            horizon: w.horizon,
            stop_when_apps_finish: w.stop_when_apps_finish,
            instrumented: w.instrumented,
            qos_target_s: w.qos_target_s,
            samples_per_interval: w.samples_per_interval,
            seed: w.seed,
        };
        scenario
            .validate()
            .map_err(|e| serde::Error::custom(format!("invalid scenario: {e}")))?;
        Ok(scenario)
    }
}

/// Why a [`ScenarioBuilder`] refused to produce a [`Scenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// No approximate application was added.
    NoApps,
    /// The load fraction is outside `(0, 1.5]`.
    InvalidLoad,
    /// The decision interval is not strictly positive.
    InvalidDecisionInterval,
    /// The horizon is empty or not finite.
    InvalidHorizon,
    /// The slack threshold is negative or not finite.
    InvalidSlackThreshold,
    /// The QoS-target override is zero, negative, or not finite (every latency ratio
    /// and slack fraction divides by it).
    InvalidQosTarget,
    /// The load profile failed its own validation.
    InvalidLoadProfile(pliant_workloads::profile::LoadProfileError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NoApps => {
                f.write_str("scenario needs at least one approximate application")
            }
            ScenarioError::InvalidLoad => f.write_str("load fraction must be in (0, 1.5]"),
            ScenarioError::InvalidDecisionInterval => {
                f.write_str("decision interval must be positive")
            }
            ScenarioError::InvalidHorizon => f.write_str("horizon must be positive and finite"),
            ScenarioError::InvalidSlackThreshold => {
                f.write_str("slack threshold must be non-negative")
            }
            ScenarioError::InvalidQosTarget => {
                f.write_str("QoS-target override must be positive and finite")
            }
            ScenarioError::InvalidLoadProfile(e) => write!(f, "invalid load profile: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Fluent builder for [`Scenario`] with paper-default knobs.
///
/// # Example
///
/// ```
/// use pliant_approx::catalog::AppId;
/// use pliant_core::policy::PolicyKind;
/// use pliant_core::scenario::Scenario;
/// use pliant_workloads::service::ServiceId;
///
/// let scenario = Scenario::builder(ServiceId::Memcached)
///     .app(AppId::Canneal)
///     .policy(PolicyKind::Pliant)
///     .load(0.75)
///     .horizon_intervals(40)
///     .seed(7)
///     .build();
/// let outcome = scenario.run();
/// assert!(outcome.intervals > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Starts from paper defaults: Pliant policy, 75% load, 1 s decisions, 10% slack
    /// threshold, 120-interval horizon, stop when applications finish, seed 42.
    pub fn new(service: ServiceId) -> Self {
        ScenarioBuilder {
            scenario: Scenario {
                label: None,
                service,
                apps: Vec::new(),
                policy: PolicyKind::Pliant,
                load_fraction: 0.75,
                load_profile: None,
                decision_interval_s: 1.0,
                slack_threshold: 0.10,
                consecutive_slack_required: 2,
                horizon: Horizon::Intervals(120),
                stop_when_apps_finish: true,
                instrumented: None,
                qos_target_s: None,
                samples_per_interval: None,
                seed: 42,
            },
        }
    }

    /// Adds one co-located approximate application.
    pub fn app(mut self, app: AppId) -> Self {
        self.scenario.apps.push(app);
        self
    }

    /// Adds several co-located approximate applications.
    pub fn apps(mut self, apps: impl IntoIterator<Item = AppId>) -> Self {
        self.scenario.apps.extend(apps);
        self
    }

    /// Selects the runtime policy (default: [`PolicyKind::Pliant`]).
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.scenario.policy = policy;
        self
    }

    /// Sets a constant offered load as a fraction of saturation throughput, clearing any
    /// time-varying profile set earlier.
    pub fn load(mut self, load_fraction: f64) -> Self {
        self.scenario.load_fraction = load_fraction;
        self.scenario.load_profile = None;
        self
    }

    /// Sets a time-varying load profile (diurnal, flash crowd, trace, …). The profile
    /// overrides the constant `load` for the simulator; `load_fraction` remains the
    /// fallback if the profile is later cleared.
    pub fn load_profile(mut self, profile: LoadProfile) -> Self {
        self.scenario.load_profile = Some(profile);
        self
    }

    /// Sets the decision interval in seconds.
    pub fn decision_interval_s(mut self, dt_s: f64) -> Self {
        self.scenario.decision_interval_s = dt_s;
        self
    }

    /// Sets the latency-slack threshold for relaxing.
    pub fn slack_threshold(mut self, threshold: f64) -> Self {
        self.scenario.slack_threshold = threshold;
        self
    }

    /// Sets the relaxation hysteresis (consecutive high-slack intervals required).
    pub fn consecutive_slack_required(mut self, intervals: u32) -> Self {
        self.scenario.consecutive_slack_required = intervals;
        self
    }

    /// Caps the run at a number of decision intervals.
    pub fn horizon_intervals(mut self, intervals: usize) -> Self {
        self.scenario.horizon = Horizon::Intervals(intervals);
        self
    }

    /// Caps the run at a simulated wall-clock budget, independent of the decision
    /// interval (the right horizon for decision-interval sweeps).
    pub fn horizon_seconds(mut self, seconds: f64) -> Self {
        self.scenario.horizon = Horizon::Seconds(seconds);
        self
    }

    /// Sets whether the run stops as soon as every batch application finishes
    /// (default: true).
    pub fn stop_when_apps_finish(mut self, stop: bool) -> Self {
        self.scenario.stop_when_apps_finish = stop;
        self
    }

    /// Forces instrumentation on or off, overriding the policy default.
    pub fn instrumented(mut self, instrumented: bool) -> Self {
        self.scenario.instrumented = Some(instrumented);
        self
    }

    /// Overrides the service's QoS target in seconds.
    pub fn qos_target_s(mut self, qos_s: f64) -> Self {
        self.scenario.qos_target_s = Some(qos_s);
        self
    }

    /// Overrides the number of latency samples delivered per decision interval.
    pub fn samples_per_interval(mut self, samples: usize) -> Self {
        self.scenario.samples_per_interval = Some(samples);
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Attaches a display label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.scenario.label = Some(label.into());
        self
    }

    /// Validates and returns the scenario.
    pub fn try_build(self) -> Result<Scenario, ScenarioError> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }

    /// Validates and returns the scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is invalid (no applications, non-positive load/interval/
    /// horizon, or negative slack threshold); use [`Self::try_build`] to handle the error.
    pub fn build(self) -> Scenario {
        match self.try_build() {
            Ok(s) => s,
            Err(e) => panic!("invalid scenario: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_paper_defaults() {
        let s = Scenario::builder(ServiceId::Nginx)
            .app(AppId::Canneal)
            .build();
        assert_eq!(s.policy, PolicyKind::Pliant);
        assert_eq!(s.load_fraction, 0.75);
        assert_eq!(s.decision_interval_s, 1.0);
        assert_eq!(s.slack_threshold, 0.10);
        assert_eq!(s.horizon, Horizon::Intervals(120));
        assert!(s.stop_when_apps_finish);
        assert_eq!(s.seed, 42);
        assert!(s.effective_instrumented());
    }

    #[test]
    fn precise_policy_defaults_to_uninstrumented() {
        let s = Scenario::builder(ServiceId::Nginx)
            .app(AppId::Canneal)
            .policy(PolicyKind::Precise)
            .build();
        assert!(!s.effective_instrumented());
        let forced = Scenario::builder(ServiceId::Nginx)
            .app(AppId::Canneal)
            .policy(PolicyKind::Precise)
            .instrumented(true)
            .build();
        assert!(forced.effective_instrumented());
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            Scenario::builder(ServiceId::Nginx).try_build().unwrap_err(),
            ScenarioError::NoApps
        );
        assert_eq!(
            Scenario::builder(ServiceId::Nginx)
                .app(AppId::Snp)
                .load(0.0)
                .try_build()
                .unwrap_err(),
            ScenarioError::InvalidLoad
        );
        assert_eq!(
            Scenario::builder(ServiceId::Nginx)
                .app(AppId::Snp)
                .decision_interval_s(-1.0)
                .try_build()
                .unwrap_err(),
            ScenarioError::InvalidDecisionInterval
        );
        assert_eq!(
            Scenario::builder(ServiceId::Nginx)
                .app(AppId::Snp)
                .horizon_seconds(0.0)
                .try_build()
                .unwrap_err(),
            ScenarioError::InvalidHorizon
        );
        assert_eq!(
            Scenario::builder(ServiceId::Nginx)
                .app(AppId::Snp)
                .qos_target_s(f64::NAN)
                .try_build()
                .unwrap_err(),
            ScenarioError::InvalidQosTarget
        );
    }

    #[test]
    fn load_profile_overrides_the_constant_load() {
        let flash = LoadProfile::FlashCrowd {
            base: 0.4,
            peak: 1.0,
            start_s: 30.0,
            ramp_s: 5.0,
            hold_s: 10.0,
            decay_s: 5.0,
        };
        let s = Scenario::builder(ServiceId::Memcached)
            .app(AppId::Canneal)
            .load_profile(flash.clone())
            .build();
        assert_eq!(s.effective_load_profile(), flash);
        // Without a profile, the constant load is the effective profile.
        let plain = Scenario::builder(ServiceId::Memcached)
            .app(AppId::Canneal)
            .load(0.6)
            .build();
        assert_eq!(plain.effective_load_profile(), LoadProfile::constant(0.6));
        // `load()` clears a previously-set profile.
        let cleared = Scenario::builder(ServiceId::Memcached)
            .app(AppId::Canneal)
            .load_profile(flash)
            .load(0.5)
            .build();
        assert_eq!(cleared.load_profile, None);
    }

    #[test]
    fn invalid_load_profiles_fail_validation() {
        let err = Scenario::builder(ServiceId::Nginx)
            .app(AppId::Snp)
            .load_profile(LoadProfile::Trace { points: vec![] })
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidLoadProfile(_)));
        assert!(err.to_string().contains("load profile"));
    }

    #[test]
    fn profile_scenarios_round_trip_through_json() {
        let s = Scenario::builder(ServiceId::Nginx)
            .app(AppId::Canneal)
            .load_profile(LoadProfile::Diurnal {
                base: 0.6,
                amplitude: 0.3,
                period_s: 120.0,
                phase_s: 0.0,
            })
            .horizon_seconds(60.0)
            .build();
        let json = serde_json::to_string(&s).expect("serializable");
        let back: Scenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, s);
        // Archives written before load profiles existed (no `load_profile` key) still
        // deserialize, defaulting to the constant load.
        let value: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let entries = match value {
            serde::Value::Object(entries) => entries,
            _ => panic!("scenarios serialize as objects"),
        };
        let without_profile = serde::Value::Object(
            entries
                .into_iter()
                .filter(|(k, _)| k != "load_profile")
                .collect(),
        );
        let legacy = serde_json::to_string(&without_profile).expect("serializable");
        let old: Scenario = serde_json::from_str(&legacy).expect("legacy archives deserialize");
        assert_eq!(old.load_profile, None);
    }

    #[test]
    fn wall_clock_horizon_scales_interval_count() {
        let h = Horizon::Seconds(60.0);
        assert_eq!(h.max_intervals(1.0), 60);
        assert_eq!(h.max_intervals(8.0), 8);
        assert_eq!(h.max_intervals(0.2), 300);
        assert_eq!(h.wall_clock_s(8.0), 60.0);
        let fixed = Horizon::Intervals(60);
        assert_eq!(fixed.max_intervals(8.0), 60);
        assert_eq!(fixed.wall_clock_s(8.0), 480.0);
    }

    #[test]
    fn corrupted_archives_are_rejected_at_the_deserialization_boundary() {
        let good = Scenario::builder(ServiceId::Nginx).app(AppId::Snp).build();
        let mut json = serde_json::to_string(&good).expect("serializable");
        json = json.replace("[\"Snp\"]", "[]");
        let err = serde_json::from_str::<Scenario>(&json)
            .expect_err("a scenario violating its invariants must not deserialize");
        assert!(
            err.to_string().contains("approximate application"),
            "error should carry the validation message, got: {err}"
        );
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let s = Scenario::builder(ServiceId::MongoDb)
            .apps([AppId::Raytrace, AppId::Bayesian])
            .policy(PolicyKind::ReclaimOnly)
            .load(0.9)
            .decision_interval_s(0.5)
            .horizon_seconds(30.0)
            .qos_target_s(0.012)
            .samples_per_interval(500)
            .seed(1234567890123456789)
            .label("round-trip")
            .build();
        let json = serde_json::to_string_pretty(&s).expect("serializable");
        let back: Scenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, s);
    }

    #[test]
    fn describe_summarizes_the_cell() {
        let s = Scenario::builder(ServiceId::Memcached)
            .apps([AppId::Canneal, AppId::Snp])
            .build();
        assert_eq!(s.describe(), "memcached+canneal+snp/pliant");
        let labeled = Scenario::builder(ServiceId::Memcached)
            .app(AppId::Canneal)
            .label("cell-3")
            .build();
        assert_eq!(labeled.describe(), "cell-3");
    }
}
