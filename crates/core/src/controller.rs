//! The single-application runtime algorithm (Fig. 3 of the paper).
//!
//! Execution starts in precise mode with a fair core allocation. On a QoS violation the
//! controller first jumps the co-scheduled application to its **most** approximate variant
//! (to avoid prolonged degradation); if the violation persists it reclaims cores from the
//! application, one per decision interval. When QoS is met with more than 10% latency
//! slack, the controller first returns reclaimed cores, then steps the application back
//! toward precise execution one variant at a time. If the application is running at an
//! intermediate approximation degree when a violation occurs, it immediately reverts to
//! the most approximate variant.

use serde::{Deserialize, Serialize};

use crate::actuator::Action;
use crate::monitor::MonitorReport;

/// Configuration of the Pliant controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Decision interval in seconds (1 s by default, studied in Fig. 9).
    pub decision_interval_s: f64,
    /// Latency-slack threshold above which the controller relaxes approximation or returns
    /// cores (10% in the paper, §4.3).
    pub slack_threshold: f64,
    /// Number of consecutive high-slack intervals required before the controller relaxes
    /// (returns a core or steps toward precise). The paper notes that acting on every
    /// single high-slack interval causes ping-ponging between states; a short streak
    /// requirement is the hysteresis that prevents it.
    pub consecutive_slack_required: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            decision_interval_s: 1.0,
            slack_threshold: 0.10,
            consecutive_slack_required: 2,
        }
    }
}

/// Controller state for a single co-scheduled approximate application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PliantController {
    config: ControllerConfig,
    /// Number of admissible approximate variants of the managed application.
    variant_count: usize,
    /// Current variant (`None` = precise, `Some(i)` with 0 closest to precise).
    variant: Option<usize>,
    /// Cores reclaimed from the application so far.
    cores_reclaimed: u32,
    /// Cores that can still be reclaimed in total (the application keeps at least one
    /// core, matching the simulator's one-core floor).
    reclaimable: u32,
    /// Consecutive intervals with slack above the threshold.
    slack_streak: u32,
    /// Total decisions taken.
    decisions: u64,
}

impl PliantController {
    /// Creates a controller for an application with `variant_count` admissible variants
    /// holding `initial_cores` cores. The controller will reclaim at most
    /// `initial_cores - 1` cores, mirroring the simulator's refusal to take an
    /// application's last core — this keeps the controller's core ledger in lock-step
    /// with the actuator instead of drifting past the floor and later emitting no-op
    /// `ReturnCore` actions during recovery.
    pub fn new(config: ControllerConfig, variant_count: usize, initial_cores: u32) -> Self {
        Self {
            config,
            variant_count,
            variant: None,
            cores_reclaimed: 0,
            reclaimable: initial_cores.saturating_sub(1),
            slack_streak: 0,
            decisions: 0,
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Index of the most aggressive variant, or `None` when the application has none.
    fn most_approximate(&self) -> Option<usize> {
        if self.variant_count == 0 {
            None
        } else {
            Some(self.variant_count - 1)
        }
    }

    /// Currently selected variant.
    pub fn variant(&self) -> Option<usize> {
        self.variant
    }

    /// Cores currently reclaimed from the application, as tracked by the controller.
    pub fn cores_reclaimed(&self) -> u32 {
        self.cores_reclaimed
    }

    /// Total decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Takes one decision from the monitor's report, returning the actions to apply before
    /// the next interval. `app` is the index of the managed application within the
    /// co-location (0 for single-application experiments).
    pub fn decide(&mut self, app: usize, report: &MonitorReport) -> Vec<Action> {
        self.decisions += 1;
        if report.no_signal {
            // An idle interval (no arrivals) carries no latency evidence: hold the
            // current state and leave the slack streak as it is.
            return Vec::new();
        }
        if report.qos_violated {
            self.slack_streak = 0;
            // Violation path: escalate approximation first, then cores — but never past
            // the one-core floor the simulator enforces.
            match (self.variant, self.most_approximate()) {
                (current, Some(most)) if current != Some(most) => {
                    self.variant = Some(most);
                    vec![Action::SetVariant {
                        app,
                        variant: Some(most),
                    }]
                }
                _ if self.cores_reclaimed < self.reclaimable => {
                    self.cores_reclaimed += 1;
                    vec![Action::ReclaimCore { app }]
                }
                _ => Vec::new(),
            }
        } else if report.slack_fraction > self.config.slack_threshold {
            self.slack_streak += 1;
            if self.slack_streak < self.config.consecutive_slack_required {
                return Vec::new();
            }
            self.slack_streak = 0;
            // Recovery path: return cores first, then relax approximation one step.
            if self.cores_reclaimed > 0 {
                self.cores_reclaimed -= 1;
                vec![Action::ReturnCore { app }]
            } else {
                match self.variant {
                    Some(0) => {
                        self.variant = None;
                        vec![Action::SetVariant { app, variant: None }]
                    }
                    Some(i) => {
                        self.variant = Some(i - 1);
                        vec![Action::SetVariant {
                            app,
                            variant: Some(i - 1),
                        }]
                    }
                    None => Vec::new(),
                }
            }
        } else {
            // QoS met without enough slack: hold the current state.
            self.slack_streak = 0;
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violated() -> MonitorReport {
        MonitorReport {
            p99_s: 0.02,
            mean_s: 0.005,
            smoothed_p99_s: 0.02,
            sampled: 100,
            qos_violated: true,
            slack_fraction: -1.0,
            no_signal: false,
        }
    }

    fn met(slack: f64) -> MonitorReport {
        MonitorReport {
            p99_s: 0.005,
            mean_s: 0.002,
            smoothed_p99_s: 0.005,
            sampled: 100,
            qos_violated: false,
            slack_fraction: slack,
            no_signal: false,
        }
    }

    /// Configuration without slack hysteresis, so the relaxation-order tests can observe
    /// one relaxation step per high-slack interval.
    fn immediate() -> ControllerConfig {
        ControllerConfig {
            consecutive_slack_required: 1,
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn first_violation_jumps_to_most_approximate() {
        let mut c = PliantController::new(ControllerConfig::default(), 4, 8);
        let actions = c.decide(0, &violated());
        assert_eq!(
            actions,
            vec![Action::SetVariant {
                app: 0,
                variant: Some(3)
            }]
        );
        assert_eq!(c.variant(), Some(3));
    }

    #[test]
    fn persistent_violation_reclaims_cores_incrementally() {
        let mut c = PliantController::new(ControllerConfig::default(), 4, 8);
        let _ = c.decide(0, &violated());
        let a2 = c.decide(0, &violated());
        let a3 = c.decide(0, &violated());
        assert_eq!(a2, vec![Action::ReclaimCore { app: 0 }]);
        assert_eq!(a3, vec![Action::ReclaimCore { app: 0 }]);
        assert_eq!(c.cores_reclaimed(), 2);
        assert_eq!(
            c.variant(),
            Some(3),
            "variant stays at most approximate while reclaiming"
        );
    }

    #[test]
    fn violation_at_intermediate_variant_reverts_to_most_approximate() {
        let mut c = PliantController::new(immediate(), 4, 8);
        let _ = c.decide(0, &violated()); // -> most approximate (3)
        let _ = c.decide(0, &met(0.3)); //   -> relax to 2
        assert_eq!(c.variant(), Some(2));
        let actions = c.decide(0, &violated());
        assert_eq!(
            actions,
            vec![Action::SetVariant {
                app: 0,
                variant: Some(3)
            }]
        );
    }

    #[test]
    fn slack_returns_cores_before_relaxing_approximation() {
        let mut c = PliantController::new(immediate(), 4, 8);
        let _ = c.decide(0, &violated()); // most approx
        let _ = c.decide(0, &violated()); // reclaim core
        let first_recovery = c.decide(0, &met(0.3));
        assert_eq!(first_recovery, vec![Action::ReturnCore { app: 0 }]);
        assert_eq!(c.cores_reclaimed(), 0);
        let second_recovery = c.decide(0, &met(0.3));
        assert_eq!(
            second_recovery,
            vec![Action::SetVariant {
                app: 0,
                variant: Some(2)
            }]
        );
    }

    #[test]
    fn relaxation_steps_all_the_way_back_to_precise() {
        let mut c = PliantController::new(immediate(), 2, 8);
        let _ = c.decide(0, &violated()); // -> variant 1 (most)
        let _ = c.decide(0, &met(0.5)); //   -> variant 0
        let last = c.decide(0, &met(0.5)); // -> precise
        assert_eq!(
            last,
            vec![Action::SetVariant {
                app: 0,
                variant: None
            }]
        );
        assert_eq!(c.variant(), None);
        // Further slack with everything already precise does nothing.
        assert!(c.decide(0, &met(0.5)).is_empty());
    }

    #[test]
    fn default_hysteresis_requires_consecutive_slack_intervals() {
        let mut c = PliantController::new(ControllerConfig::default(), 4, 8);
        let _ = c.decide(0, &violated()); // -> most approximate
        assert!(
            c.decide(0, &met(0.3)).is_empty(),
            "first high-slack interval only arms the streak"
        );
        let second = c.decide(0, &met(0.3));
        assert_eq!(
            second,
            vec![Action::SetVariant {
                app: 0,
                variant: Some(2)
            }]
        );
        // A violation or a low-slack interval resets the streak.
        let _ = c.decide(0, &violated());
        assert!(c.decide(0, &met(0.3)).is_empty());
        let _ = c.decide(0, &met(0.05));
        assert!(
            c.decide(0, &met(0.3)).is_empty(),
            "streak restarts after a low-slack interval"
        );
    }

    #[test]
    fn low_slack_holds_state() {
        let mut c = PliantController::new(ControllerConfig::default(), 4, 8);
        let _ = c.decide(0, &violated());
        let hold = c.decide(0, &met(0.05));
        assert!(
            hold.is_empty(),
            "5% slack is below the 10% threshold, state must hold"
        );
        assert_eq!(c.variant(), Some(3));
    }

    #[test]
    fn application_without_variants_goes_straight_to_cores() {
        let mut c = PliantController::new(ControllerConfig::default(), 0, 8);
        let actions = c.decide(0, &violated());
        assert_eq!(actions, vec![Action::ReclaimCore { app: 0 }]);
    }

    #[test]
    fn reclamation_ledger_caps_at_the_one_core_floor() {
        // Regression: the ledger used to increment unconditionally, so once the
        // application hit its one-core floor every further violation drifted the count,
        // and recovery then burned high-slack intervals on no-op ReturnCore actions.
        let mut c = PliantController::new(immediate(), 1, 3); // 2 reclaimable cores
        let _ = c.decide(0, &violated()); // -> most approximate
        assert_eq!(
            c.decide(0, &violated()),
            vec![Action::ReclaimCore { app: 0 }]
        );
        assert_eq!(
            c.decide(0, &violated()),
            vec![Action::ReclaimCore { app: 0 }]
        );
        for _ in 0..5 {
            assert!(
                c.decide(0, &violated()).is_empty(),
                "nothing left to take at the floor"
            );
        }
        assert_eq!(
            c.cores_reclaimed(),
            2,
            "ledger must not drift past the floor"
        );
        // Recovery: exactly two real ReturnCore actions, then straight to relaxing the
        // variant — no wasted intervals.
        assert_eq!(c.decide(0, &met(0.3)), vec![Action::ReturnCore { app: 0 }]);
        assert_eq!(c.decide(0, &met(0.3)), vec![Action::ReturnCore { app: 0 }]);
        assert_eq!(
            c.decide(0, &met(0.3)),
            vec![Action::SetVariant {
                app: 0,
                variant: None
            }]
        );
    }

    #[test]
    fn no_signal_reports_hold_state() {
        let idle = MonitorReport {
            p99_s: 0.005,
            mean_s: 0.0,
            smoothed_p99_s: 0.005,
            sampled: 0,
            qos_violated: false,
            slack_fraction: 0.0,
            no_signal: true,
        };
        let mut c = PliantController::new(immediate(), 4, 8);
        let _ = c.decide(0, &violated()); // -> most approximate
        assert!(c.decide(0, &idle).is_empty(), "idle gaps carry no evidence");
        assert_eq!(c.variant(), Some(3));
        assert_eq!(c.cores_reclaimed(), 0);
    }

    #[test]
    fn decision_counter_increments() {
        let mut c = PliantController::new(ControllerConfig::default(), 4, 8);
        let _ = c.decide(0, &met(0.0));
        let _ = c.decide(0, &met(0.0));
        assert_eq!(c.decisions(), 2);
    }
}
