//! Composable sweeps over scenario axes.
//!
//! A [`Suite`] is a base [`Scenario`] plus an ordered list of sweep axes (loads, decision
//! intervals, policies, seeds, services, application sets). The suite expands into the
//! cartesian grid of all axis values; each grid cell is a fully-specified scenario with a
//! deterministic seed and a generated label, ready for the [`crate::engine::Engine`] to
//! execute serially or in parallel.
//!
//! # Seed derivation
//!
//! Two modes, chosen with [`Suite::seed_mode`]:
//!
//! * [`SeedMode::CommonRandomNumbers`] (default): every cell shares the scenario seed
//!   (or the seed-axis value, when a seed axis is present). Paired cells — e.g. Precise
//!   vs Pliant at the same load — then see *identical* arrival and service-time
//!   randomness, which is the classic variance-reduction technique for A/B comparisons
//!   and matches how the legacy free-function drivers behaved.
//! * [`SeedMode::Independent`]: every cell's seed is derived from the base seed and the
//!   cell's sweep coordinates through the SplitMix64 finalizer chain, so no two cells
//!   share an RNG stream — the right mode when aggregating across cells as if they were
//!   independent experiments.
//!
//! Both modes are fully deterministic: the same suite always expands to the same
//! scenarios with the same seeds.

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::AppId;
use pliant_telemetry::rng::derive_seed;
use pliant_workloads::profile::LoadProfile;
use pliant_workloads::service::ServiceId;

use crate::policy::PolicyKind;
use crate::scenario::Scenario;

/// One sweep dimension of a [`Suite`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Vary the interactive service.
    Services(Vec<ServiceId>),
    /// Vary the set of co-located applications.
    AppSets(Vec<Vec<AppId>>),
    /// Vary the runtime policy.
    Policies(Vec<PolicyKind>),
    /// Vary the offered load fraction (constant over each run; clears any time-varying
    /// profile the base scenario carries).
    Loads(Vec<f64>),
    /// Vary the time-varying load profile (diurnal, flash crowd, trace, …).
    LoadProfiles(Vec<LoadProfile>),
    /// Vary the decision interval in seconds. Combine with a wall-clock
    /// [`crate::scenario::Horizon::Seconds`] horizon so every cell simulates the same
    /// amount of service time.
    DecisionIntervalsS(Vec<f64>),
    /// Vary the base seed (replications).
    Seeds(Vec<u64>),
}

impl SweepAxis {
    fn len(&self) -> usize {
        match self {
            SweepAxis::Services(v) => v.len(),
            SweepAxis::AppSets(v) => v.len(),
            SweepAxis::Policies(v) => v.len(),
            SweepAxis::Loads(v) => v.len(),
            SweepAxis::LoadProfiles(v) => v.len(),
            SweepAxis::DecisionIntervalsS(v) => v.len(),
            SweepAxis::Seeds(v) => v.len(),
        }
    }

    fn is_seeds(&self) -> bool {
        matches!(self, SweepAxis::Seeds(_))
    }

    /// The scenario knob this axis writes. Axes writing the same knob cannot coexist in
    /// one suite (the later one would silently overwrite the earlier in every cell).
    fn knob(&self) -> &'static str {
        match self {
            SweepAxis::Services(_) => "service",
            SweepAxis::AppSets(_) => "apps",
            SweepAxis::Policies(_) => "policy",
            SweepAxis::Loads(_) | SweepAxis::LoadProfiles(_) => "load",
            SweepAxis::DecisionIntervalsS(_) => "decision-interval",
            SweepAxis::Seeds(_) => "seed",
        }
    }

    /// Applies coordinate `idx` of this axis to a scenario, returning the label fragment.
    fn apply(&self, idx: usize, scenario: &mut Scenario) -> String {
        match self {
            SweepAxis::Services(v) => {
                scenario.service = v[idx];
                v[idx].name().to_string()
            }
            SweepAxis::AppSets(v) => {
                scenario.apps = v[idx].clone();
                let names: Vec<&str> = v[idx].iter().map(|a| a.name()).collect();
                names.join("+")
            }
            SweepAxis::Policies(v) => {
                scenario.policy = v[idx];
                v[idx].name().to_string()
            }
            SweepAxis::Loads(v) => {
                scenario.load_fraction = v[idx];
                scenario.load_profile = None;
                format!("load={:.2}", v[idx])
            }
            SweepAxis::LoadProfiles(v) => {
                scenario.load_profile = Some(v[idx].clone());
                format!("profile={}", v[idx].describe())
            }
            SweepAxis::DecisionIntervalsS(v) => {
                scenario.decision_interval_s = v[idx];
                format!("dt={}s", v[idx])
            }
            SweepAxis::Seeds(v) => {
                scenario.seed = v[idx];
                format!("seed={}", v[idx])
            }
        }
    }
}

/// Why a [`Suite`] failed [`Suite::validate`].
///
/// The builder methods enforce these invariants at construction, but suites are plain
/// serde data: an archived or hand-edited suite can violate them, so the engine
/// re-checks before executing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteError {
    /// An axis has no values (the grid would be empty).
    EmptyAxis,
    /// Two axes write the same scenario knob; the later one would silently overwrite
    /// the earlier in every cell while labels still claim the full grid.
    DuplicateKnob(&'static str),
    /// A swept load profile fails its own validation.
    InvalidLoadProfile(pliant_workloads::profile::LoadProfileError),
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::EmptyAxis => f.write_str("sweep axes must not be empty"),
            SuiteError::DuplicateKnob(knob) => {
                write!(f, "two axes sweep the `{knob}` knob")
            }
            SuiteError::InvalidLoadProfile(e) => write!(f, "invalid load profile: {e}"),
        }
    }
}

impl std::error::Error for SuiteError {}

/// How a [`Suite`] assigns seeds to grid cells; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedMode {
    /// Paired cells share randomness (the default; classic variance reduction for
    /// Precise-vs-Pliant style comparisons).
    CommonRandomNumbers,
    /// Every cell gets a unique seed derived from its sweep coordinates.
    Independent,
}

/// A base scenario plus sweep axes, expanding into a cartesian grid of scenarios.
///
/// # Example
///
/// ```
/// use pliant_approx::catalog::AppId;
/// use pliant_core::policy::PolicyKind;
/// use pliant_core::scenario::Scenario;
/// use pliant_core::suite::Suite;
/// use pliant_workloads::service::ServiceId;
///
/// let suite = Suite::new(
///     Scenario::builder(ServiceId::Nginx)
///         .app(AppId::Canneal)
///         .horizon_intervals(40)
///         .build(),
/// )
/// .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
/// .sweep_loads([0.5, 0.75, 0.9]);
///
/// assert_eq!(suite.len(), 6);
/// let cells = suite.scenarios();
/// assert_eq!(cells[0].policy, PolicyKind::Precise);
/// assert_eq!(cells[0].load_fraction, 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Suite {
    name: String,
    base: Scenario,
    seed_mode: SeedMode,
    axes: Vec<SweepAxis>,
}

// Hand-written (not derived) so duplicate-knob or empty-axis archives are rejected at
// the archive boundary with a descriptive error, not when the engine finally runs the
// silently-masked grid. The mirror struct keeps the derived field plumbing.
impl serde::Deserialize for Suite {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        #[derive(Deserialize)]
        struct SuiteWire {
            name: String,
            base: Scenario,
            seed_mode: SeedMode,
            axes: Vec<SweepAxis>,
        }
        let w = SuiteWire::from_value(value)?;
        let suite = Suite {
            name: w.name,
            base: w.base,
            seed_mode: w.seed_mode,
            axes: w.axes,
        };
        suite
            .validate()
            .map_err(|e| serde::Error::custom(format!("invalid suite: {e}")))?;
        Ok(suite)
    }
}

impl Suite {
    /// Creates a suite with no sweep axes (a single-cell grid of `base`).
    pub fn new(base: Scenario) -> Self {
        Suite {
            name: "suite".to_string(),
            base,
            seed_mode: SeedMode::CommonRandomNumbers,
            axes: Vec::new(),
        }
    }

    /// Names the suite (used as the label prefix of every cell).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Selects how per-cell seeds are derived; see [`SeedMode`].
    pub fn seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// Adds a sweep over interactive services.
    pub fn for_each_service(self, services: impl IntoIterator<Item = ServiceId>) -> Self {
        self.push_axis(SweepAxis::Services(services.into_iter().collect()))
    }

    /// Adds a sweep running each application on its own (singleton application sets).
    pub fn for_each_app(self, apps: impl IntoIterator<Item = AppId>) -> Self {
        self.push_axis(SweepAxis::AppSets(
            apps.into_iter().map(|a| vec![a]).collect(),
        ))
    }

    /// Adds a sweep over explicit application sets (multi-application mixes).
    pub fn for_each_app_set(self, sets: impl IntoIterator<Item = Vec<AppId>>) -> Self {
        self.push_axis(SweepAxis::AppSets(sets.into_iter().collect()))
    }

    /// Adds a sweep over policies.
    pub fn sweep_policies(self, policies: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.push_axis(SweepAxis::Policies(policies.into_iter().collect()))
    }

    /// Adds a sweep over load fractions.
    pub fn sweep_loads(self, loads: impl IntoIterator<Item = f64>) -> Self {
        self.push_axis(SweepAxis::Loads(loads.into_iter().collect()))
    }

    /// Adds a sweep over time-varying load profiles. Like every other axis this composes
    /// with [`SeedMode`]: under common random numbers, paired cells (e.g. constant vs
    /// flash crowd at the same seed) see identical arrival-sampling randomness.
    ///
    /// # Panics
    ///
    /// Panics if any profile fails [`LoadProfile::validate`] — the same check
    /// [`crate::scenario::ScenarioBuilder::try_build`] applies to a directly-built
    /// scenario, surfaced at sweep construction instead of mid-suite execution.
    pub fn sweep_load_profiles(self, profiles: impl IntoIterator<Item = LoadProfile>) -> Self {
        let profiles: Vec<LoadProfile> = profiles.into_iter().collect();
        for profile in &profiles {
            if let Err(e) = profile.validate() {
                panic!(
                    "invalid load profile `{}` in sweep: {e}",
                    profile.describe()
                );
            }
        }
        self.push_axis(SweepAxis::LoadProfiles(profiles))
    }

    /// Adds a sweep over decision intervals (seconds). Pair with a wall-clock horizon
    /// ([`crate::scenario::ScenarioBuilder::horizon_seconds`]) so all cells simulate the
    /// same amount of service time.
    pub fn sweep_decision_intervals_s(self, intervals: impl IntoIterator<Item = f64>) -> Self {
        self.push_axis(SweepAxis::DecisionIntervalsS(
            intervals.into_iter().collect(),
        ))
    }

    /// Adds a sweep over explicit base seeds (replications).
    pub fn sweep_seeds(self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.push_axis(SweepAxis::Seeds(seeds.into_iter().collect()))
    }

    /// Adds a sweep over `count` replication seeds derived from the base scenario's seed.
    pub fn sweep_seed_count(self, count: usize) -> Self {
        let base = self.base.seed;
        self.sweep_seeds((0..count as u64).map(move |i| derive_seed(base, 0x5EED_0000 + i)))
    }

    fn push_axis(mut self, axis: SweepAxis) -> Self {
        assert!(axis.len() > 0, "sweep axes must not be empty");
        // Two axes writing the same scenario knob are not a cartesian product: whichever
        // applies later silently overwrites the earlier one in every cell while the
        // labels still claim the full grid. Reject the combination outright. (Constant
        // loads and load profiles share one knob — fold constant loads into the profile
        // axis as `LoadProfile::constant(...)` cells instead.)
        assert!(
            !self
                .axes
                .iter()
                .any(|existing| existing.knob() == axis.knob()),
            "a suite cannot sweep the `{}` knob twice; merge the values into one axis",
            axis.knob()
        );
        self.axes.push(axis);
        self
    }

    /// The suite's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base scenario the sweeps are applied to.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// The sweep axes in application order (earlier axes vary slowest).
    pub fn axes(&self) -> &[SweepAxis] {
        &self.axes
    }

    /// Re-checks the invariants the builder methods enforce (non-empty axes, one axis
    /// per scenario knob, valid load profiles). Suites built through the fluent API
    /// always pass; a suite deserialized from an archive may not, so
    /// [`crate::engine::Engine::run_suite`] calls this before executing.
    pub fn validate(&self) -> Result<(), SuiteError> {
        let mut knobs: Vec<&'static str> = Vec::with_capacity(self.axes.len());
        for axis in &self.axes {
            if axis.len() == 0 {
                return Err(SuiteError::EmptyAxis);
            }
            let knob = axis.knob();
            if knobs.contains(&knob) {
                return Err(SuiteError::DuplicateKnob(knob));
            }
            knobs.push(knob);
            if let SweepAxis::LoadProfiles(profiles) = axis {
                for profile in profiles {
                    profile.validate().map_err(SuiteError::InvalidLoadProfile)?;
                }
            }
        }
        Ok(())
    }

    /// Number of grid cells (product of axis lengths; 1 with no axes).
    pub fn len(&self) -> usize {
        self.axes.iter().map(SweepAxis::len).product()
    }

    /// Whether the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mixed-radix coordinates of cell `index` (earlier axes vary slowest).
    fn coords(&self, index: usize) -> Vec<usize> {
        let mut coords = vec![0; self.axes.len()];
        let mut rem = index;
        for (i, axis) in self.axes.iter().enumerate().rev() {
            coords[i] = rem % axis.len();
            rem /= axis.len();
        }
        coords
    }

    /// Materializes the scenario of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn scenario_at(&self, index: usize) -> Scenario {
        assert!(index < self.len(), "cell index {index} out of range");
        let coords = self.coords(index);
        let mut scenario = self.base.clone();
        let mut parts: Vec<String> = Vec::with_capacity(coords.len());
        for (axis, &c) in self.axes.iter().zip(&coords) {
            parts.push(axis.apply(c, &mut scenario));
        }
        scenario.seed = self.cell_seed(&scenario, &coords);
        scenario.label = Some(if parts.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, parts.join("/"))
        });
        scenario
    }

    /// The seed of the cell at `coords` (after axis application set `scenario.seed` to
    /// the seed-axis value, if any).
    fn cell_seed(&self, scenario: &Scenario, coords: &[usize]) -> u64 {
        match self.seed_mode {
            SeedMode::CommonRandomNumbers => scenario.seed,
            SeedMode::Independent => {
                let mut seed = derive_seed(scenario.seed, 0x1D0_5EED);
                for (i, (axis, &c)) in self.axes.iter().zip(coords).enumerate() {
                    if !axis.is_seeds() {
                        seed = derive_seed(seed, ((i as u64 + 1) << 32) | c as u64);
                    }
                }
                seed
            }
        }
    }

    /// Materializes every cell in index order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        (0..self.len()).map(|i| self.scenario_at(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Horizon;

    fn base() -> Scenario {
        Scenario::builder(ServiceId::Nginx)
            .app(AppId::Canneal)
            .horizon_intervals(30)
            .seed(7)
            .build()
    }

    #[test]
    fn cartesian_expansion_orders_cells_row_major() {
        let suite = Suite::new(base())
            .named("grid")
            .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
            .sweep_loads([0.4, 0.6, 0.8]);
        assert_eq!(suite.len(), 6);
        let cells = suite.scenarios();
        // First axis varies slowest.
        assert_eq!(cells[0].policy, PolicyKind::Precise);
        assert_eq!(cells[0].load_fraction, 0.4);
        assert_eq!(cells[2].policy, PolicyKind::Precise);
        assert_eq!(cells[2].load_fraction, 0.8);
        assert_eq!(cells[3].policy, PolicyKind::Pliant);
        assert_eq!(cells[3].load_fraction, 0.4);
        assert_eq!(cells[5].label.as_deref(), Some("grid/pliant/load=0.80"));
    }

    #[test]
    fn common_random_numbers_pair_cells() {
        let suite = Suite::new(base()).sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
        let cells = suite.scenarios();
        assert_eq!(cells[0].seed, 7);
        assert_eq!(cells[1].seed, 7);
    }

    #[test]
    fn independent_seeds_never_collide() {
        let suite = Suite::new(base())
            .seed_mode(SeedMode::Independent)
            .for_each_service(ServiceId::all())
            .sweep_loads([0.4, 0.6, 0.8, 1.0])
            .sweep_seeds([7, 8, 9]);
        let seeds: std::collections::BTreeSet<u64> =
            suite.scenarios().iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), suite.len(), "per-cell seeds must be unique");
    }

    #[test]
    fn seed_axis_controls_the_base_seed_under_crn() {
        let suite = Suite::new(base())
            .sweep_seeds([100, 200])
            .sweep_loads([0.5, 0.9]);
        let cells = suite.scenarios();
        assert_eq!(cells[0].seed, 100);
        assert_eq!(cells[1].seed, 100);
        assert_eq!(cells[2].seed, 200);
        assert_eq!(cells[3].seed, 200);
    }

    #[test]
    fn interval_axis_with_wall_clock_horizon_keeps_equal_time() {
        let base = Scenario::builder(ServiceId::Memcached)
            .app(AppId::Canneal)
            .horizon_seconds(60.0)
            .build();
        let suite = Suite::new(base).sweep_decision_intervals_s([1.0, 8.0]);
        let cells = suite.scenarios();
        assert_eq!(cells[0].max_intervals(), 60);
        assert_eq!(cells[1].max_intervals(), 8);
        assert_eq!(cells[0].horizon, Horizon::Seconds(60.0));
        assert!((cells[1].max_intervals() as f64 * 8.0 - 64.0).abs() < 1e-9);
    }

    #[test]
    fn load_profile_axis_expands_and_labels_cells() {
        let flash = LoadProfile::FlashCrowd {
            base: 0.4,
            peak: 1.0,
            start_s: 10.0,
            ramp_s: 2.0,
            hold_s: 5.0,
            decay_s: 2.0,
        };
        let suite = Suite::new(base())
            .named("profiles")
            .sweep_load_profiles([LoadProfile::constant(0.75), flash.clone()])
            .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
        assert_eq!(suite.len(), 4);
        let cells = suite.scenarios();
        assert_eq!(cells[0].load_profile, Some(LoadProfile::constant(0.75)));
        assert_eq!(cells[2].load_profile, Some(flash));
        assert_eq!(
            cells[3].label.as_deref(),
            Some("profiles/profile=flash1.00@10s/pliant")
        );
        // CRN: paired profile cells share the base seed, exactly like any other axis.
        assert!(cells.iter().all(|c| c.seed == 7));
    }

    #[test]
    #[should_panic(expected = "cannot sweep the `load` knob twice")]
    fn sweeping_loads_and_profiles_together_is_rejected() {
        let _ = Suite::new(base())
            .sweep_load_profiles([LoadProfile::constant(0.5)])
            .sweep_loads([0.5, 0.9]);
    }

    #[test]
    #[should_panic(expected = "cannot sweep the `load` knob twice")]
    fn sweeping_profiles_after_loads_is_rejected() {
        let _ = Suite::new(base())
            .sweep_loads([0.5, 0.9])
            .sweep_load_profiles([LoadProfile::constant(0.5)]);
    }

    #[test]
    #[should_panic(expected = "cannot sweep the `policy` knob twice")]
    fn duplicate_axes_on_the_same_knob_are_rejected() {
        let _ = Suite::new(base())
            .sweep_policies([PolicyKind::Precise])
            .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
    }

    #[test]
    #[should_panic(expected = "invalid load profile")]
    fn invalid_profiles_are_rejected_at_sweep_construction() {
        let _ = Suite::new(base()).sweep_load_profiles([LoadProfile::Trace { points: vec![] }]);
    }

    #[test]
    fn loads_axis_clears_an_inherited_profile() {
        let mut with_profile = base();
        with_profile.load_profile = Some(LoadProfile::constant(0.3));
        let suite = Suite::new(with_profile).sweep_loads([0.5, 0.9]);
        for cell in suite.scenarios() {
            assert_eq!(
                cell.load_profile, None,
                "a constant-load sweep must not be masked by the base profile"
            );
        }
    }

    #[test]
    fn derived_seed_replications_are_deterministic() {
        let a = Suite::new(base()).sweep_seed_count(5).scenarios();
        let b = Suite::new(base()).sweep_seed_count(5).scenarios();
        assert_eq!(a, b);
        let seeds: std::collections::BTreeSet<u64> = a.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 5);
    }

    #[test]
    fn corrupted_suites_are_rejected_at_the_deserialization_boundary() {
        // Serde bypasses the builder, so duplicate-knob archives must be caught by the
        // validate() call inside Deserialize before anything runs a silently-masked grid.
        let suite = Suite::new(base()).named("dup").sweep_loads([0.5, 0.9]);
        assert_eq!(suite.validate(), Ok(()));
        let json = serde_json::to_string(&suite).expect("serializable");
        let value: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let entries = match value {
            serde::Value::Object(entries) => entries,
            _ => panic!("suites serialize as objects"),
        };
        let corrupted_entries: Vec<(String, serde::Value)> = entries
            .into_iter()
            .map(|(k, v)| {
                if k == "axes" {
                    let axes = match v {
                        serde::Value::Array(mut items) => {
                            let dup = items[0].clone();
                            items.push(dup);
                            items
                        }
                        _ => panic!("axes serialize as an array"),
                    };
                    (k, serde::Value::Array(axes))
                } else {
                    (k, v)
                }
            })
            .collect();
        let corrupted_json =
            serde_json::to_string(&serde::Value::Object(corrupted_entries)).expect("serializable");
        let err = serde_json::from_str::<Suite>(&corrupted_json)
            .expect_err("a masked-grid archive must not deserialize");
        assert!(
            err.to_string().contains("two axes sweep the `load` knob"),
            "error should carry the validation message, got: {err}"
        );
    }

    #[test]
    fn suite_round_trips_through_serde() {
        let suite = Suite::new(base())
            .named("rt")
            .seed_mode(SeedMode::Independent)
            .for_each_app([AppId::Canneal, AppId::Snp])
            .sweep_loads([0.5]);
        let json = serde_json::to_string(&suite).expect("serializable");
        let back: Suite = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, suite);
        assert_eq!(back.scenarios(), suite.scenarios());
    }
}
