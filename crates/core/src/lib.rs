//! The Pliant runtime — the primary contribution of the paper.
//!
//! Pliant preserves the tail-latency QoS of an interactive service co-located with
//! approximate batch applications by (1) monitoring end-to-end latency with lightweight
//! client-side sampling, (2) switching the co-runners to incrementally more aggressive
//! approximate variants when QoS is violated, and (3) reclaiming cores one per decision
//! interval when approximation alone is insufficient — returning cores and stepping back
//! toward precise execution whenever latency slack exceeds 10%.
//!
//! Module map:
//!
//! * [`monitor`] — the client-side performance monitor (adaptive latency sampling and
//!   windowed tail estimation).
//! * [`actuator`] — applies variant switches and core reallocations to the co-location
//!   substrate, accounting for the dynamic-recompilation mechanism's cost.
//! * [`controller`] — the single-application runtime algorithm of Fig. 3.
//! * [`multi`] — the round-robin arbiter for multi-application co-locations (§4.4).
//! * [`policy`] — the [`policy::Policy`] abstraction plus baselines (the paper's Precise
//!   baseline and two ablations).
//! * [`scenario`] — the declarative, serializable description of one experiment, built
//!   with the fluent [`scenario::ScenarioBuilder`].
//! * [`suite`] — composable sweeps (loads, intervals, policies, seeds, services,
//!   application mixes) expanding into cartesian grids of scenarios with deterministic
//!   per-cell seeds.
//! * [`engine`] — executes scenarios and suites serially or on a thread pool, streaming
//!   results through pluggable [`engine::ResultSink`]s in deterministic order.
//! * [`experiment`] — the outcome types plus the legacy free-function drivers, kept as
//!   thin wrappers over the scenario API.
//!
//! # Example
//!
//! ```
//! use pliant_approx::catalog::AppId;
//! use pliant_core::engine::Engine;
//! use pliant_core::policy::PolicyKind;
//! use pliant_core::scenario::Scenario;
//! use pliant_core::suite::Suite;
//! use pliant_workloads::service::ServiceId;
//!
//! // One run: describe it, then run it.
//! let scenario = Scenario::builder(ServiceId::MongoDb)
//!     .app(AppId::Raytrace)
//!     .policy(PolicyKind::Pliant)
//!     .horizon_intervals(40)
//!     .build();
//! let outcome = scenario.run();
//! assert!(outcome.intervals > 0);
//!
//! // A grid: sweep policy × load, run every cell on one engine.
//! let suite = Suite::new(scenario)
//!     .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
//!     .sweep_loads([0.5, 0.9]);
//! let results = Engine::new().run_collect(&suite);
//! assert_eq!(results.len(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actuator;
pub mod controller;
pub mod engine;
pub mod experiment;
pub mod monitor;
pub mod multi;
pub mod policy;
pub mod scenario;
pub mod suite;

pub use actuator::{Action, Actuator};
pub use controller::{ControllerConfig, PliantController};
pub use engine::{CellOutcome, Collector, Engine, ExecMode, ResultSink};
pub use experiment::{ColocationOutcome, ExperimentOptions, PhaseQosStats};
pub use monitor::{MonitorConfig, PerformanceMonitor};
pub use multi::MultiAppController;
pub use policy::{Policy, PolicyKind, PrecisePolicy};
pub use scenario::{Horizon, Scenario, ScenarioBuilder, ScenarioError};
pub use suite::{SeedMode, Suite, SuiteError, SweepAxis};
