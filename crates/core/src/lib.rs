//! The Pliant runtime — the primary contribution of the paper.
//!
//! Pliant preserves the tail-latency QoS of an interactive service co-located with
//! approximate batch applications by (1) monitoring end-to-end latency with lightweight
//! client-side sampling, (2) switching the co-runners to incrementally more aggressive
//! approximate variants when QoS is violated, and (3) reclaiming cores one per decision
//! interval when approximation alone is insufficient — returning cores and stepping back
//! toward precise execution whenever latency slack exceeds 10%.
//!
//! Module map:
//!
//! * [`monitor`] — the client-side performance monitor (adaptive latency sampling and
//!   windowed tail estimation).
//! * [`actuator`] — applies variant switches and core reallocations to the co-location
//!   substrate, accounting for the dynamic-recompilation mechanism's cost.
//! * [`controller`] — the single-application runtime algorithm of Fig. 3.
//! * [`multi`] — the round-robin arbiter for multi-application co-locations (§4.4).
//! * [`policy`] — the [`policy::Policy`] abstraction plus baselines (the paper's Precise
//!   baseline and two ablations).
//! * [`experiment`] — experiment drivers that run complete co-locations and produce the
//!   summaries the figure-regeneration binaries print.
//!
//! # Example
//!
//! ```
//! use pliant_approx::catalog::AppId;
//! use pliant_core::experiment::{run_colocation, ExperimentOptions};
//! use pliant_core::policy::PolicyKind;
//! use pliant_workloads::service::ServiceId;
//!
//! let outcome = run_colocation(
//!     ServiceId::MongoDb,
//!     &[AppId::Raytrace],
//!     PolicyKind::Pliant,
//!     &ExperimentOptions { max_intervals: 40, ..ExperimentOptions::default() },
//! );
//! assert!(outcome.intervals > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actuator;
pub mod controller;
pub mod experiment;
pub mod monitor;
pub mod multi;
pub mod policy;

pub use actuator::{Action, Actuator};
pub use controller::{ControllerConfig, PliantController};
pub use experiment::{run_colocation, ColocationOutcome, ExperimentOptions};
pub use monitor::{MonitorConfig, PerformanceMonitor};
pub use multi::MultiAppController;
pub use policy::{Policy, PolicyKind, PrecisePolicy};
