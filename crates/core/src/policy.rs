//! Runtime policies: Pliant and the baselines it is compared against.
//!
//! The paper's baseline is **Precise**: both the interactive service and the approximate
//! application(s) keep their fair resource allocation and the approximate applications
//! always run precisely — no runtime adaptation at all. Two additional ablation policies
//! are provided for the benches: a static policy that pins every application to its most
//! approximate variant for the whole run (maximum contention relief, maximum quality
//! loss), and a reclaim-only policy that moves cores but never approximates (to isolate
//! the contribution of approximation itself).

use serde::{Deserialize, Serialize};

use crate::actuator::Action;
use crate::controller::ControllerConfig;
use crate::monitor::MonitorReport;
use crate::multi::MultiAppController;

/// A runtime policy deciding, once per decision interval, how to actuate.
///
/// Policies are intentionally anonymous: the single source of a policy's display name is
/// [`PolicyKind::name`], so result rows can never disagree with the selector that built
/// the policy.
pub trait Policy {
    /// Decides the actions for the next interval from this interval's monitor report.
    ///
    /// Implementations must honour [`MonitorReport::no_signal`]: an idle interval (no
    /// arrivals) is evidence of neither violation nor slack, so reactive state (variant
    /// escalation/relaxation, core movement) must hold. Only pending time-insensitive
    /// actions — like a static policy's one-shot initial pin — may still be emitted.
    fn decide(&mut self, report: &MonitorReport) -> Vec<Action>;

    /// Notifies the policy that slot `app` now runs a different application with
    /// `variant_count` admissible variants (batch-job scheduling placed a fresh job into
    /// a finished slot).
    ///
    /// The new job starts precise, so any per-slot variant state must reset, while the
    /// slot's core ledger must persist — cores the service reclaimed from the slot are
    /// still reclaimed and must be returned to the new occupant during recovery. The
    /// default is a no-op, which is correct for stateless policies.
    fn on_app_replaced(&mut self, app: usize, variant_count: usize) {
        let _ = (app, variant_count);
    }

    /// Captures the policy's mutable state for checkpointing. Stateless policies return
    /// [`serde::Value::Null`] (the default); stateful policies serialize whatever
    /// [`Self::restore_state`] needs to continue the decision stream exactly.
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores state captured by [`Self::snapshot_state`] onto a freshly built policy of
    /// the same kind and shape.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not decode as this policy's state.
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let _ = state;
        Ok(())
    }
}

/// Selector for the built-in policies, used by the scenario engine and harness binaries.
///
/// Serializes as its display name (the same string [`PolicyKind::name`] returns), so JSON
/// result rows are tagged `"pliant"`, `"precise"`, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The Pliant runtime (incremental approximation + core reclamation).
    #[serde(rename = "pliant")]
    Pliant,
    /// The paper's baseline: precise execution, static fair allocation.
    #[serde(rename = "precise")]
    Precise,
    /// Ablation: every application statically pinned to its most approximate variant.
    #[serde(rename = "static-most-approx")]
    StaticMostApproximate,
    /// Ablation: core reclamation only, no approximation.
    #[serde(rename = "reclaim-only")]
    ReclaimOnly,
}

impl PolicyKind {
    /// Every built-in policy, in comparison order (baseline last).
    pub fn all() -> [PolicyKind; 4] {
        [
            PolicyKind::Pliant,
            PolicyKind::Precise,
            PolicyKind::StaticMostApproximate,
            PolicyKind::ReclaimOnly,
        ]
    }
    /// Instantiates the policy for a co-location with the given per-application variant
    /// counts and initial core allocations. The returned policy is `Send` so callers
    /// (e.g. the cluster engine) can drive per-node policies from worker threads.
    pub fn build(
        &self,
        config: ControllerConfig,
        variant_counts: &[usize],
        initial_cores: &[u32],
        start_pointer: usize,
    ) -> Box<dyn Policy + Send> {
        match self {
            PolicyKind::Pliant => Box::new(PliantPolicy::new(
                config,
                variant_counts,
                initial_cores,
                start_pointer,
            )),
            PolicyKind::Precise => Box::new(PrecisePolicy),
            PolicyKind::StaticMostApproximate => {
                Box::new(StaticMostApproximatePolicy::new(variant_counts))
            }
            PolicyKind::ReclaimOnly => {
                Box::new(ReclaimOnlyPolicy::new(config, initial_cores, start_pointer))
            }
        }
    }

    /// Short name used in result rows (also the serialized representation).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Pliant => "pliant",
            PolicyKind::Precise => "precise",
            PolicyKind::StaticMostApproximate => "static-most-approx",
            PolicyKind::ReclaimOnly => "reclaim-only",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The Pliant policy: the round-robin multi-application controller (which reduces to the
/// Fig. 3 single-application algorithm when only one application is managed).
#[derive(Debug, Clone)]
pub struct PliantPolicy {
    inner: MultiAppController,
}

impl PliantPolicy {
    /// Creates the policy.
    pub fn new(
        config: ControllerConfig,
        variant_counts: &[usize],
        initial_cores: &[u32],
        start_pointer: usize,
    ) -> Self {
        Self {
            inner: MultiAppController::new(config, variant_counts, initial_cores, start_pointer),
        }
    }

    /// Total cores currently reclaimed across all applications.
    pub fn total_cores_reclaimed(&self) -> u32 {
        self.inner.total_cores_reclaimed()
    }
}

impl Policy for PliantPolicy {
    fn decide(&mut self, report: &MonitorReport) -> Vec<Action> {
        self.inner.decide(report)
    }

    fn on_app_replaced(&mut self, app: usize, variant_count: usize) {
        self.inner.reset_app(app, variant_count);
    }

    fn snapshot_state(&self) -> serde::Value {
        self.inner.to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.inner = MultiAppController::from_value(state)?;
        Ok(())
    }
}

/// The paper's baseline: never adapts anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrecisePolicy;

impl Policy for PrecisePolicy {
    fn decide(&mut self, _report: &MonitorReport) -> Vec<Action> {
        Vec::new()
    }
}

/// Ablation: pin every application to its most approximate variant at the start and never
/// change anything afterwards.
#[derive(Debug, Clone)]
pub struct StaticMostApproximatePolicy {
    pending: Vec<Action>,
}

impl StaticMostApproximatePolicy {
    /// Creates the policy for applications with the given variant counts.
    pub fn new(variant_counts: &[usize]) -> Self {
        let pending = variant_counts
            .iter()
            .enumerate()
            .filter(|(_, &vc)| vc > 0)
            .map(|(app, &vc)| Action::SetVariant {
                app,
                variant: Some(vc - 1),
            })
            .collect();
        Self { pending }
    }
}

impl Policy for StaticMostApproximatePolicy {
    fn decide(&mut self, _report: &MonitorReport) -> Vec<Action> {
        std::mem::take(&mut self.pending)
    }

    fn on_app_replaced(&mut self, app: usize, variant_count: usize) {
        // The replacement job starts precise; queue the same one-shot pin for it.
        self.pending.retain(
            |a| !matches!(a, Action::SetVariant { app: pending_app, .. } if *pending_app == app),
        );
        if variant_count > 0 {
            self.pending.push(Action::SetVariant {
                app,
                variant: Some(variant_count - 1),
            });
        }
    }

    fn snapshot_state(&self) -> serde::Value {
        self.pending.to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.pending = <Vec<Action> as Deserialize>::from_value(state)?;
        Ok(())
    }
}

/// Ablation: react to QoS violations by reclaiming cores only (no approximation), and
/// return them when slack is high.
#[derive(Debug, Clone)]
pub struct ReclaimOnlyPolicy {
    config: ControllerConfig,
    reclaimed: Vec<u32>,
    reclaimable: Vec<u32>,
    pointer: usize,
}

/// Checkpoint wire form of [`ReclaimOnlyPolicy`]'s mutable state (the configuration is
/// rebuilt from the scenario).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ReclaimOnlyState {
    reclaimed: Vec<u32>,
    reclaimable: Vec<u32>,
    pointer: usize,
}

impl ReclaimOnlyPolicy {
    /// Creates the policy for applications with the given initial core allocations.
    pub fn new(config: ControllerConfig, initial_cores: &[u32], start_pointer: usize) -> Self {
        Self {
            config,
            reclaimed: vec![0; initial_cores.len()],
            reclaimable: initial_cores.iter().map(|&c| c.saturating_sub(1)).collect(),
            pointer: start_pointer % initial_cores.len().max(1),
        }
    }
}

impl Policy for ReclaimOnlyPolicy {
    fn decide(&mut self, report: &MonitorReport) -> Vec<Action> {
        let n = self.reclaimed.len();
        if report.no_signal {
            // No arrivals, no evidence — hold.
            return Vec::new();
        }
        if report.qos_violated {
            for offset in 0..n {
                let idx = (self.pointer + offset) % n;
                if self.reclaimed[idx] < self.reclaimable[idx] {
                    self.reclaimed[idx] += 1;
                    self.pointer = (idx + 1) % n;
                    return vec![Action::ReclaimCore { app: idx }];
                }
            }
            Vec::new()
        } else if report.slack_fraction > self.config.slack_threshold {
            for offset in 0..n {
                let idx = (self.pointer + offset) % n;
                if self.reclaimed[idx] > 0 {
                    self.reclaimed[idx] -= 1;
                    self.pointer = (idx + 1) % n;
                    return vec![Action::ReturnCore { app: idx }];
                }
            }
            Vec::new()
        } else {
            Vec::new()
        }
    }

    fn snapshot_state(&self) -> serde::Value {
        ReclaimOnlyState {
            reclaimed: self.reclaimed.clone(),
            reclaimable: self.reclaimable.clone(),
            pointer: self.pointer,
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let state = ReclaimOnlyState::from_value(state)?;
        self.reclaimed = state.reclaimed;
        self.reclaimable = state.reclaimable;
        self.pointer = state.pointer;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violated() -> MonitorReport {
        MonitorReport {
            p99_s: 1.0,
            mean_s: 0.5,
            smoothed_p99_s: 1.0,
            sampled: 10,
            qos_violated: true,
            slack_fraction: -1.0,
            no_signal: false,
        }
    }

    fn met(slack: f64) -> MonitorReport {
        MonitorReport {
            p99_s: 0.1,
            mean_s: 0.05,
            smoothed_p99_s: 0.1,
            sampled: 10,
            qos_violated: false,
            slack_fraction: slack,
            no_signal: false,
        }
    }

    #[test]
    fn precise_policy_never_acts() {
        let mut p = PrecisePolicy;
        assert!(p.decide(&violated()).is_empty());
        assert!(p.decide(&met(0.5)).is_empty());
    }

    #[test]
    fn static_policy_emits_switches_once() {
        let mut p = StaticMostApproximatePolicy::new(&[4, 0, 2]);
        let first = p.decide(&met(0.0));
        assert_eq!(
            first,
            vec![
                Action::SetVariant {
                    app: 0,
                    variant: Some(3)
                },
                Action::SetVariant {
                    app: 2,
                    variant: Some(1)
                },
            ]
        );
        assert!(p.decide(&violated()).is_empty());
    }

    #[test]
    fn static_policy_pins_even_through_an_idle_start() {
        // The one-shot pin is time-insensitive: a run that begins in an idle trough
        // (no-signal reports) must still start its applications approximated.
        let idle = MonitorReport {
            p99_s: 0.0,
            mean_s: 0.0,
            smoothed_p99_s: 0.0,
            sampled: 0,
            qos_violated: false,
            slack_fraction: 0.0,
            no_signal: true,
        };
        let mut p = StaticMostApproximatePolicy::new(&[4]);
        assert_eq!(
            p.decide(&idle),
            vec![Action::SetVariant {
                app: 0,
                variant: Some(3)
            }]
        );
    }

    #[test]
    fn reclaim_only_moves_cores_back_and_forth() {
        let mut p = ReclaimOnlyPolicy::new(ControllerConfig::default(), &[3], 0);
        assert_eq!(p.decide(&violated()), vec![Action::ReclaimCore { app: 0 }]);
        assert_eq!(p.decide(&violated()), vec![Action::ReclaimCore { app: 0 }]);
        assert!(
            p.decide(&violated()).is_empty(),
            "only two cores are reclaimable from three"
        );
        assert_eq!(p.decide(&met(0.3)), vec![Action::ReturnCore { app: 0 }]);
    }

    #[test]
    fn policy_kind_names_are_unique_and_stable() {
        for (kind, expected) in [
            (PolicyKind::Pliant, "pliant"),
            (PolicyKind::Precise, "precise"),
            (PolicyKind::StaticMostApproximate, "static-most-approx"),
            (PolicyKind::ReclaimOnly, "reclaim-only"),
        ] {
            let _policy = kind.build(ControllerConfig::default(), &[4], &[8], 0);
            assert_eq!(kind.name(), expected);
            assert_eq!(kind.to_string(), expected);
        }
        let names: std::collections::BTreeSet<&str> =
            PolicyKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), PolicyKind::all().len());
    }

    #[test]
    fn static_policy_repins_a_replaced_app() {
        let mut p = StaticMostApproximatePolicy::new(&[3]);
        let _ = p.decide(&met(0.0)); // initial pin delivered
        p.on_app_replaced(0, 5);
        assert_eq!(
            p.decide(&met(0.0)),
            vec![Action::SetVariant {
                app: 0,
                variant: Some(4)
            }],
            "the replacement job must be pinned to its own most approximate variant"
        );
        // A replacement by a variant-less job cancels any stale pending pin.
        p.on_app_replaced(0, 4);
        p.on_app_replaced(0, 0);
        assert!(p.decide(&met(0.0)).is_empty());
    }

    #[test]
    fn pliant_policy_resets_a_replaced_apps_variant_but_not_its_ledger() {
        let mut p = PliantPolicy::new(ControllerConfig::default(), &[2], &[8], 0);
        let _ = p.decide(&violated()); // escalate
        let _ = p.decide(&violated()); // reclaim a core
        assert_eq!(p.total_cores_reclaimed(), 1);
        p.on_app_replaced(0, 4);
        assert_eq!(
            p.total_cores_reclaimed(),
            1,
            "the core ledger survives job replacement"
        );
        assert_eq!(
            p.decide(&violated()),
            vec![Action::SetVariant {
                app: 0,
                variant: Some(3)
            }],
            "the new job escalates from precise to its own most approximate variant"
        );
    }

    #[test]
    fn pliant_policy_reports_reclaimed_cores() {
        let mut p = PliantPolicy::new(ControllerConfig::default(), &[2], &[8], 0);
        let _ = p.decide(&violated());
        let _ = p.decide(&violated());
        assert_eq!(p.total_cores_reclaimed(), 1);
    }
}
