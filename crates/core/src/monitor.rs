//! The client-side performance monitor.
//!
//! The monitor resides on the client in the paper: it samples end-to-end request latency
//! (average and tail) adaptively so that it adds no measurable overhead to the interactive
//! service, and notifies the runtime when the tail exceeds the QoS target. Here it ingests
//! the per-interval latency samples produced by the co-location substrate, subsamples
//! them, and estimates the interval's p99 with a log-bucketed histogram.

use serde::{Deserialize, Serialize};

use pliant_telemetry::histogram::LatencyHistogram;
use pliant_telemetry::rng::seeded_rng;
use pliant_telemetry::window::EwmaTracker;
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration of the performance monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Fraction of requests sampled when the service is comfortably within its QoS
    /// (lightweight steady-state sampling).
    pub base_sample_rate: f64,
    /// Fraction of requests sampled once latency approaches or exceeds the QoS target
    /// (adaptive escalation so violations are detected quickly and accurately).
    pub elevated_sample_rate: f64,
    /// Latency-to-QoS ratio above which the elevated sampling rate kicks in.
    pub escalation_ratio: f64,
    /// Smoothing factor of the EWMA over interval tail estimates.
    pub ewma_alpha: f64,
    /// QoS target in seconds.
    pub qos_target_s: f64,
}

impl MonitorConfig {
    /// Default monitor configuration for a service with the given QoS target.
    pub fn for_qos(qos_target_s: f64) -> Self {
        Self {
            base_sample_rate: 0.05,
            elevated_sample_rate: 0.25,
            escalation_ratio: 0.85,
            ewma_alpha: 0.6,
            qos_target_s,
        }
    }
}

/// Summary the monitor reports to the runtime at the end of each decision interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Estimated 99th-percentile latency of the interval, in seconds.
    pub p99_s: f64,
    /// Estimated mean latency of the interval, in seconds.
    pub mean_s: f64,
    /// Smoothed (EWMA) tail estimate across recent intervals, in seconds.
    pub smoothed_p99_s: f64,
    /// Number of requests actually sampled this interval.
    pub sampled: u64,
    /// Whether the interval violated the QoS target.
    pub qos_violated: bool,
    /// Latency slack relative to the QoS target (positive = headroom).
    pub slack_fraction: f64,
    /// True when the interval delivered no latency samples at all (e.g. zero arrivals at
    /// the trough of a diurnal profile). The report then carries the previous smoothed
    /// estimate with zero slack, and controllers hold their state: an idle gap is not
    /// evidence of headroom.
    pub no_signal: bool,
}

/// The performance monitor.
#[derive(Debug, Clone)]
pub struct PerformanceMonitor {
    config: MonitorConfig,
    rng: SmallRng,
    ewma: EwmaTracker,
    currently_elevated: bool,
    intervals_observed: u64,
}

impl PerformanceMonitor {
    /// Creates a monitor with the given configuration and sampling seed.
    pub fn new(config: MonitorConfig, seed: u64) -> Self {
        Self {
            config,
            rng: seeded_rng(seed),
            ewma: EwmaTracker::new(config.ewma_alpha),
            currently_elevated: false,
            intervals_observed: 0,
        }
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Current sampling rate (adaptive: escalates near or above the QoS target).
    pub fn sample_rate(&self) -> f64 {
        if self.currently_elevated {
            self.config.elevated_sample_rate
        } else {
            self.config.base_sample_rate
        }
    }

    /// Number of intervals observed so far.
    pub fn intervals_observed(&self) -> u64 {
        self.intervals_observed
    }

    /// Ingests one decision interval's end-to-end latency samples and produces the report
    /// the runtime acts on.
    pub fn observe_interval(&mut self, latencies_s: &[f64]) -> MonitorReport {
        self.intervals_observed += 1;
        // An interval without a single request (idle gap / load trough) used to fall
        // through the empty-histogram path as `p99 = 0, slack = 1.0` — maximal headroom
        // out of thin air, driving the controller to relax exactly when it should hold.
        // Report no-signal instead, holding the previous smoothed estimate and leaving
        // the EWMA and the adaptive sampling state untouched.
        if latencies_s.is_empty() {
            let held = self.ewma.value().unwrap_or(0.0);
            return MonitorReport {
                p99_s: held,
                mean_s: 0.0,
                smoothed_p99_s: held,
                sampled: 0,
                qos_violated: false,
                slack_fraction: 0.0,
                no_signal: true,
            };
        }
        let rate = self.sample_rate();
        let mut hist = LatencyHistogram::new();
        let mut sum = 0.0;
        let mut sampled = 0u64;
        for &l in latencies_s {
            if self.rng.gen_range(0.0f64..1.0) < rate {
                hist.record(l * 1e6); // record in microseconds for histogram resolution
                sum += l;
                sampled += 1;
            }
        }
        // Guard against an empty sample (tiny intervals at low load): fall back to the full
        // set, which the real monitor would also do by forcing a minimum sample count.
        let (p99_s, mean_s, sampled) = if sampled < 20 {
            let mut full = LatencyHistogram::new();
            for &l in latencies_s {
                full.record(l * 1e6);
            }
            let mean = latencies_s.iter().sum::<f64>() / latencies_s.len() as f64;
            (full.p99() / 1e6, mean, latencies_s.len() as u64)
        } else {
            (hist.p99() / 1e6, sum / sampled as f64, sampled)
        };

        self.ewma.observe(p99_s);
        let smoothed = self.ewma.value().unwrap_or(p99_s);
        self.currently_elevated = p99_s >= self.config.qos_target_s * self.config.escalation_ratio;

        MonitorReport {
            p99_s,
            mean_s,
            smoothed_p99_s: smoothed,
            sampled,
            qos_violated: p99_s > self.config.qos_target_s,
            slack_fraction: (self.config.qos_target_s - p99_s) / self.config.qos_target_s,
            no_signal: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_telemetry::rng::sample_lognormal;

    fn synthetic_interval(median_s: f64, sigma: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| sample_lognormal(&mut rng, median_s, sigma))
            .collect()
    }

    #[test]
    fn detects_violation_and_slack() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 1);
        // Healthy interval: median 2 ms.
        let healthy = synthetic_interval(0.002, 0.3, 5_000, 2);
        let report = monitor.observe_interval(&healthy);
        assert!(
            !report.qos_violated,
            "p99 {} should be below 10 ms",
            report.p99_s
        );
        assert!(report.slack_fraction > 0.0);
        // Violating interval: median 8 ms → p99 well above 10 ms.
        let violating = synthetic_interval(0.008, 0.4, 5_000, 3);
        let report = monitor.observe_interval(&violating);
        assert!(report.qos_violated);
        assert!(report.slack_fraction < 0.0);
    }

    #[test]
    fn p99_estimate_tracks_true_percentile() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 4);
        let samples = synthetic_interval(0.003, 0.3, 20_000, 5);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let true_p99 = sorted[(0.99 * sorted.len() as f64) as usize];
        let report = monitor.observe_interval(&samples);
        assert!(
            (report.p99_s - true_p99).abs() / true_p99 < 0.20,
            "estimate {} vs true {true_p99}",
            report.p99_s
        );
    }

    #[test]
    fn sampling_escalates_near_qos() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 6);
        assert_eq!(monitor.sample_rate(), 0.05);
        let near_qos = synthetic_interval(0.0065, 0.3, 5_000, 7);
        let _ = monitor.observe_interval(&near_qos);
        assert_eq!(
            monitor.sample_rate(),
            0.25,
            "sampling should escalate near the QoS target"
        );
        let healthy = synthetic_interval(0.001, 0.3, 5_000, 8);
        let _ = monitor.observe_interval(&healthy);
        assert_eq!(
            monitor.sample_rate(),
            0.05,
            "sampling should relax when latency recovers"
        );
    }

    #[test]
    fn small_intervals_fall_back_to_full_sampling() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 9);
        let tiny = synthetic_interval(0.002, 0.3, 30, 10);
        let report = monitor.observe_interval(&tiny);
        assert_eq!(report.sampled, 30);
        assert!(report.p99_s > 0.0);
    }

    #[test]
    fn empty_interval_without_history_reports_no_signal() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 9);
        let report = monitor.observe_interval(&[]);
        assert!(report.no_signal);
        assert_eq!(report.p99_s, 0.0);
        assert_eq!(report.sampled, 0);
        assert!(!report.qos_violated);
        assert_eq!(
            report.slack_fraction, 0.0,
            "an idle gap must not read as maximal headroom"
        );
    }

    #[test]
    fn empty_interval_holds_the_previous_smoothed_estimate() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 9);
        let busy = synthetic_interval(0.004, 0.3, 5_000, 14);
        let before = monitor.observe_interval(&busy);
        let idle = monitor.observe_interval(&[]);
        assert!(idle.no_signal);
        assert_eq!(idle.p99_s, before.smoothed_p99_s);
        assert_eq!(idle.smoothed_p99_s, before.smoothed_p99_s);
        assert_eq!(idle.slack_fraction, 0.0, "no fresh slack evidence");
        // The EWMA and adaptive-sampling state are untouched by idle gaps.
        let after = monitor.observe_interval(&busy);
        assert_eq!(monitor.intervals_observed(), 3);
        assert!(after.smoothed_p99_s > 0.0);
    }

    #[test]
    fn ewma_smooths_across_intervals() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 11);
        let low = synthetic_interval(0.002, 0.2, 5_000, 12);
        let high = synthetic_interval(0.006, 0.2, 5_000, 13);
        let r1 = monitor.observe_interval(&low);
        let r2 = monitor.observe_interval(&high);
        assert!(r2.smoothed_p99_s < r2.p99_s, "EWMA should lag the jump");
        assert!(r2.smoothed_p99_s > r1.p99_s);
        assert_eq!(monitor.intervals_observed(), 2);
    }
}
