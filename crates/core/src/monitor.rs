//! The client-side performance monitor.
//!
//! The monitor resides on the client in the paper: it samples end-to-end request latency
//! (average and tail) adaptively so that it adds no measurable overhead to the interactive
//! service, and notifies the runtime when the tail exceeds the QoS target. Here it ingests
//! the per-interval latency samples produced by the co-location substrate, subsamples
//! them, and estimates the interval's p99 with a log-bucketed histogram.
//!
//! The estimator is streaming and allocation-free: the interval histogram is owned by the
//! monitor and reset between intervals (never reallocated), the subsample is chosen by
//! geometric skip-sampling (one logarithm per *selected* request instead of one uniform
//! draw per request), and recording a sample is O(1) bit manipulation. Because the
//! histogram is the same [`LatencyHistogram`] (same bucket layout, same microsecond
//! scale) the cluster layer merges for fleet-level quantiles, per-interval monitor
//! histograms are exact-merge-compatible with fleet aggregation. The price of the
//! histogram estimator is quantization: the reported p99 can differ from the exact
//! sorted-order statistic of the ingested samples by at most one bucket width (~3%
//! relative; see [`LatencyHistogram::bucket_bounds`]), a bound the integration tests
//! pin across every service profile.

use serde::{Deserialize, Serialize};

use pliant_telemetry::fastmath::fast_ln;
use pliant_telemetry::histogram::LatencyHistogram;
use pliant_telemetry::rng::seeded_rng;
use pliant_telemetry::window::EwmaTracker;
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration of the performance monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Fraction of requests sampled when the service is comfortably within its QoS
    /// (lightweight steady-state sampling).
    pub base_sample_rate: f64,
    /// Fraction of requests sampled once latency approaches or exceeds the QoS target
    /// (adaptive escalation so violations are detected quickly and accurately).
    pub elevated_sample_rate: f64,
    /// Latency-to-QoS ratio above which the elevated sampling rate kicks in.
    pub escalation_ratio: f64,
    /// Smoothing factor of the EWMA over interval tail estimates.
    pub ewma_alpha: f64,
    /// QoS target in seconds.
    pub qos_target_s: f64,
}

impl MonitorConfig {
    /// Default monitor configuration for a service with the given QoS target.
    pub fn for_qos(qos_target_s: f64) -> Self {
        Self {
            base_sample_rate: 0.05,
            elevated_sample_rate: 0.25,
            escalation_ratio: 0.85,
            ewma_alpha: 0.6,
            qos_target_s,
        }
    }
}

/// Summary the monitor reports to the runtime at the end of each decision interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Estimated 99th-percentile latency of the interval, in seconds.
    pub p99_s: f64,
    /// Estimated mean latency of the interval, in seconds.
    pub mean_s: f64,
    /// Smoothed (EWMA) tail estimate across recent intervals, in seconds.
    pub smoothed_p99_s: f64,
    /// Number of requests actually sampled this interval.
    pub sampled: u64,
    /// Whether the interval violated the QoS target.
    pub qos_violated: bool,
    /// Latency slack relative to the QoS target (positive = headroom).
    pub slack_fraction: f64,
    /// True when the interval delivered no latency samples at all (e.g. zero arrivals at
    /// the trough of a diurnal profile). The report then carries the previous smoothed
    /// estimate with zero slack, and controllers hold their state: an idle gap is not
    /// evidence of headroom.
    pub no_signal: bool,
}

/// Serializable snapshot of a monitor's mutable state, for checkpointing.
///
/// The interval histogram is deliberately absent: it describes exactly one interval and
/// is reset at the start of every [`PerformanceMonitor::observe_interval`], so a restored
/// monitor reproduces the uninterrupted run bit-for-bit from its next interval onward.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    /// Sampling-RNG state (wire form; see [`pliant_telemetry::rng::rng_state_words`]).
    pub rng: Vec<u64>,
    /// The EWMA over interval tail estimates.
    pub ewma: EwmaTracker,
    /// Whether adaptive sampling is currently escalated.
    pub currently_elevated: bool,
    /// Intervals observed so far.
    pub intervals_observed: u64,
}

/// The performance monitor.
#[derive(Debug, Clone)]
pub struct PerformanceMonitor {
    config: MonitorConfig,
    rng: SmallRng,
    ewma: EwmaTracker,
    currently_elevated: bool,
    intervals_observed: u64,
    /// Interval histogram, reset (not reallocated) every interval.
    hist: LatencyHistogram,
    /// `ln(1 - base_sample_rate)`, precomputed for geometric skip-sampling.
    base_skip_ln: f64,
    /// `ln(1 - elevated_sample_rate)`, precomputed for geometric skip-sampling.
    elevated_skip_ln: f64,
}

impl PerformanceMonitor {
    /// Creates a monitor with the given configuration and sampling seed.
    pub fn new(config: MonitorConfig, seed: u64) -> Self {
        Self {
            config,
            rng: seeded_rng(seed),
            ewma: EwmaTracker::new(config.ewma_alpha),
            currently_elevated: false,
            intervals_observed: 0,
            hist: LatencyHistogram::new(),
            base_skip_ln: (1.0 - config.base_sample_rate).ln(),
            elevated_skip_ln: (1.0 - config.elevated_sample_rate).ln(),
        }
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Current sampling rate (adaptive: escalates near or above the QoS target).
    pub fn sample_rate(&self) -> f64 {
        if self.currently_elevated {
            self.config.elevated_sample_rate
        } else {
            self.config.base_sample_rate
        }
    }

    /// Number of intervals observed so far.
    pub fn intervals_observed(&self) -> u64 {
        self.intervals_observed
    }

    /// Captures the monitor's mutable state for checkpointing (the configuration is
    /// rebuilt from the scenario, the interval histogram from the next interval).
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            rng: pliant_telemetry::rng::rng_state_words(&self.rng),
            ewma: self.ewma.clone(),
            currently_elevated: self.currently_elevated,
            intervals_observed: self.intervals_observed,
        }
    }

    /// Restores state captured by [`Self::snapshot`] onto a monitor built with the same
    /// configuration and seed, continuing every stream where the snapshot left off.
    ///
    /// # Errors
    ///
    /// Rejects malformed RNG wire states (wrong width or all-zero).
    pub fn restore(&mut self, snapshot: &MonitorSnapshot) -> Result<(), String> {
        self.rng = pliant_telemetry::rng::rng_from_state_words(&snapshot.rng)?;
        self.ewma = snapshot.ewma.clone();
        self.currently_elevated = snapshot.currently_elevated;
        self.intervals_observed = snapshot.intervals_observed;
        self.hist.reset();
        Ok(())
    }

    /// Ingests one decision interval's end-to-end latency samples and produces the report
    /// the runtime acts on.
    pub fn observe_interval(&mut self, latencies_s: &[f64]) -> MonitorReport {
        self.intervals_observed += 1;
        // An interval without a single request (idle gap / load trough) used to fall
        // through the empty-histogram path as `p99 = 0, slack = 1.0` — maximal headroom
        // out of thin air, driving the controller to relax exactly when it should hold.
        // Report no-signal instead, holding the previous smoothed estimate and leaving
        // the EWMA and the adaptive sampling state untouched.
        if latencies_s.is_empty() {
            // The interval histogram describes *this* interval: an idle interval ingested
            // nothing, so it must read empty (a stale busy-interval histogram would be
            // double-counted by per-interval fleet merging).
            self.hist.reset();
            let held = self.ewma.value().unwrap_or(0.0);
            return MonitorReport {
                p99_s: held,
                mean_s: 0.0,
                smoothed_p99_s: held,
                sampled: 0,
                qos_violated: false,
                slack_fraction: 0.0,
                no_signal: true,
            };
        }
        let rate = self.sample_rate();
        self.hist.reset();
        let mut sum = 0.0;
        let mut sampled = 0u64;
        if rate >= 1.0 {
            for &l in latencies_s {
                let l = if l.is_finite() { l } else { 0.0 };
                self.hist.record(l * 1e6); // microseconds for histogram resolution
                sum += l;
                sampled += 1;
            }
        } else if rate > 0.0 {
            // Geometric skip-sampling: instead of one Bernoulli draw per request, jump
            // straight to the next selected request. The gap before each selection is
            // geometric with success probability `rate`, i.e.
            // `floor(ln(U) / ln(1 - rate))` — one uniform and one (polynomial) log per
            // *selected* request, ~1/rate times fewer draws than per-request thinning.
            // Statistically identical selection; non-finite samples are clamped to zero
            // exactly as `LatencyHistogram::record` does, so the ingest boundary is
            // NaN-free by construction.
            let ln_one_minus_rate = if self.currently_elevated {
                self.elevated_skip_ln
            } else {
                self.base_skip_ln
            };
            let mut index = self.skip(ln_one_minus_rate);
            while index < latencies_s.len() {
                let l = latencies_s[index];
                let l = if l.is_finite() { l } else { 0.0 };
                self.hist.record(l * 1e6);
                sum += l;
                sampled += 1;
                index += 1 + self.skip(ln_one_minus_rate);
            }
        }
        // Guard against an empty sample (tiny intervals at low load): fall back to the full
        // set, which the real monitor would also do by forcing a minimum sample count.
        let (p99_s, mean_s, sampled) = if sampled < 20 {
            self.hist.reset();
            let mut full_sum = 0.0;
            for &l in latencies_s {
                let l = if l.is_finite() { l } else { 0.0 };
                self.hist.record(l * 1e6);
                full_sum += l;
            }
            let mean = full_sum / latencies_s.len() as f64;
            (self.hist.p99() / 1e6, mean, latencies_s.len() as u64)
        } else {
            (self.hist.p99() / 1e6, sum / sampled as f64, sampled)
        };

        self.ewma.observe(p99_s);
        let smoothed = self.ewma.value().unwrap_or(p99_s);
        self.currently_elevated = p99_s >= self.config.qos_target_s * self.config.escalation_ratio;

        MonitorReport {
            p99_s,
            mean_s,
            smoothed_p99_s: smoothed,
            sampled,
            qos_violated: p99_s > self.config.qos_target_s,
            slack_fraction: (self.config.qos_target_s - p99_s) / self.config.qos_target_s,
            no_signal: false,
        }
    }

    /// The histogram of the most recently observed interval's subsample, in
    /// microseconds.
    ///
    /// Shares bucket layout and unit with the cluster layer's fleet histograms, so
    /// per-interval monitor histograms can be merged exactly into fleet-level quantiles
    /// (see [`LatencyHistogram::try_merge`]).
    pub fn interval_histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Number of unselected requests to jump over before the next monitored one
    /// (geometric with the current sampling rate).
    fn skip(&mut self, ln_one_minus_rate: f64) -> usize {
        // 1 - unit uniform lies in (0, 1], so the logarithm is finite and <= 0; the
        // ratio of two non-positive finite numbers is non-negative, and the cast
        // saturates on the (bounded) maximum.
        let u = 1.0 - self.rng.gen_range(0.0f64..1.0);
        (fast_ln(u) / ln_one_minus_rate) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_telemetry::rng::sample_lognormal;

    fn synthetic_interval(median_s: f64, sigma: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| sample_lognormal(&mut rng, median_s, sigma))
            .collect()
    }

    #[test]
    fn detects_violation_and_slack() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 1);
        // Healthy interval: median 2 ms.
        let healthy = synthetic_interval(0.002, 0.3, 5_000, 2);
        let report = monitor.observe_interval(&healthy);
        assert!(
            !report.qos_violated,
            "p99 {} should be below 10 ms",
            report.p99_s
        );
        assert!(report.slack_fraction > 0.0);
        // Violating interval: median 8 ms → p99 well above 10 ms.
        let violating = synthetic_interval(0.008, 0.4, 5_000, 3);
        let report = monitor.observe_interval(&violating);
        assert!(report.qos_violated);
        assert!(report.slack_fraction < 0.0);
    }

    #[test]
    fn p99_estimate_tracks_true_percentile() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 4);
        let samples = synthetic_interval(0.003, 0.3, 20_000, 5);
        let mut sorted = samples.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let true_p99 = sorted[(0.99 * sorted.len() as f64) as usize];
        let report = monitor.observe_interval(&samples);
        assert!(
            (report.p99_s - true_p99).abs() / true_p99 < 0.20,
            "estimate {} vs true {true_p99}",
            report.p99_s
        );
    }

    #[test]
    fn sampling_escalates_near_qos() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 6);
        assert_eq!(monitor.sample_rate(), 0.05);
        let near_qos = synthetic_interval(0.0065, 0.3, 5_000, 7);
        let _ = monitor.observe_interval(&near_qos);
        assert_eq!(
            monitor.sample_rate(),
            0.25,
            "sampling should escalate near the QoS target"
        );
        let healthy = synthetic_interval(0.001, 0.3, 5_000, 8);
        let _ = monitor.observe_interval(&healthy);
        assert_eq!(
            monitor.sample_rate(),
            0.05,
            "sampling should relax when latency recovers"
        );
    }

    #[test]
    fn small_intervals_fall_back_to_full_sampling() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 9);
        let tiny = synthetic_interval(0.002, 0.3, 30, 10);
        let report = monitor.observe_interval(&tiny);
        assert_eq!(report.sampled, 30);
        assert!(report.p99_s > 0.0);
    }

    #[test]
    fn empty_interval_without_history_reports_no_signal() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 9);
        let report = monitor.observe_interval(&[]);
        assert!(report.no_signal);
        assert_eq!(report.p99_s, 0.0);
        assert_eq!(report.sampled, 0);
        assert!(!report.qos_violated);
        assert_eq!(
            report.slack_fraction, 0.0,
            "an idle gap must not read as maximal headroom"
        );
    }

    #[test]
    fn empty_interval_holds_the_previous_smoothed_estimate() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 9);
        let busy = synthetic_interval(0.004, 0.3, 5_000, 14);
        let before = monitor.observe_interval(&busy);
        let idle = monitor.observe_interval(&[]);
        assert!(idle.no_signal);
        assert_eq!(idle.p99_s, before.smoothed_p99_s);
        assert_eq!(idle.smoothed_p99_s, before.smoothed_p99_s);
        assert_eq!(idle.slack_fraction, 0.0, "no fresh slack evidence");
        // The EWMA and adaptive-sampling state are untouched by idle gaps.
        let after = monitor.observe_interval(&busy);
        assert_eq!(monitor.intervals_observed(), 3);
        assert!(after.smoothed_p99_s > 0.0);
    }

    #[test]
    fn non_finite_samples_cannot_panic_or_poison_the_estimate() {
        // The NaN-free contract at the sample-ingest boundary: the quantile path is
        // histogram-based (no partial_cmp), and non-finite samples clamp to zero like
        // `LatencyHistogram::record`, so a corrupted sample can neither panic the
        // monitor nor drag the mean or tail to NaN.
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 3);
        let mut samples = synthetic_interval(0.004, 0.3, 5_000, 8);
        samples[7] = f64::NAN;
        samples[19] = f64::INFINITY;
        samples[23] = f64::NEG_INFINITY;
        let report = monitor.observe_interval(&samples);
        assert!(report.p99_s.is_finite());
        assert!(report.mean_s.is_finite());
        assert!(report.smoothed_p99_s.is_finite());
        assert!(report.slack_fraction.is_finite());
        // The tiny-interval full-ingest fallback must hold the same contract.
        let report = monitor.observe_interval(&[f64::NAN, 0.002, f64::INFINITY, 0.003]);
        assert!(report.p99_s.is_finite());
        assert!(report.mean_s.is_finite());
    }

    #[test]
    fn interval_histogram_is_reused_and_merge_compatible() {
        use pliant_telemetry::histogram::LatencyHistogram;
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 4);
        let busy = synthetic_interval(0.003, 0.3, 5_000, 9);
        let r1 = monitor.observe_interval(&busy);
        assert_eq!(monitor.interval_histogram().count(), r1.sampled);
        // The same (reset, not reallocated) histogram serves the next interval.
        let r2 = monitor.observe_interval(&busy);
        assert_eq!(monitor.interval_histogram().count(), r2.sampled);
        // Exact-merge compatibility with fleet aggregation: same layout, same unit.
        let mut fleet = LatencyHistogram::new();
        fleet
            .try_merge(monitor.interval_histogram())
            .expect("monitor histograms must merge into fleet histograms");
        assert_eq!(fleet.count(), r2.sampled);
        assert_eq!(fleet.p99() / 1e6, r2.p99_s);
        // A no-signal interval ingested nothing, so the interval histogram must read
        // empty — per-interval merging must not double-count the last busy interval.
        let idle = monitor.observe_interval(&[]);
        assert!(idle.no_signal);
        assert!(monitor.interval_histogram().is_empty());
    }

    #[test]
    fn ewma_smooths_across_intervals() {
        let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.010), 11);
        let low = synthetic_interval(0.002, 0.2, 5_000, 12);
        let high = synthetic_interval(0.006, 0.2, 5_000, 13);
        let r1 = monitor.observe_interval(&low);
        let r2 = monitor.observe_interval(&high);
        assert!(r2.smoothed_p99_s < r2.p99_s, "EWMA should lag the jump");
        assert!(r2.smoothed_p99_s > r1.p99_s);
        assert_eq!(monitor.intervals_observed(), 2);
    }
}
