//! The actuator: applies the controller's decisions to the co-location substrate.
//!
//! In the paper the actuator drives DynamoRIO: each approximate variant is mapped to a
//! Linux signal, and on receiving a signal the tool swaps the function pointers of the
//! perforated functions to the corresponding variant at coarse (function) granularity.
//! Here the actuator applies the equivalent operations to the [`ColocationSim`] and keeps
//! the bookkeeping the evaluation reports: how many switches happened, how many cores are
//! currently reclaimed from each application, and the instrumentation cost model.

use serde::{Deserialize, Serialize};

use pliant_sim::colocation::ColocationSim;

/// One actuation decision produced by a policy for a single decision interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Switch application `app` to variant `variant` (`None` = precise execution).
    SetVariant {
        /// Index of the application within the co-location.
        app: usize,
        /// Target variant (`None` = precise; `Some(i)` indexes the ordered variant list,
        /// 0 being closest to precise).
        variant: Option<usize>,
    },
    /// Reclaim one core from application `app` and give it to the interactive service.
    ReclaimCore {
        /// Index of the application within the co-location.
        app: usize,
    },
    /// Return one previously-reclaimed core from the interactive service to `app`.
    ReturnCore {
        /// Index of the application within the co-location.
        app: usize,
    },
}

/// Statistics the actuator accumulates over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActuatorStats {
    /// Total variant switches applied (signals delivered).
    pub variant_switches: u64,
    /// Total core reclamations applied.
    pub cores_reclaimed: u64,
    /// Total cores returned to applications.
    pub cores_returned: u64,
    /// Actions that could not be applied (e.g. reclaiming from an application already at
    /// one core).
    pub rejected: u64,
}

/// The actuator.
#[derive(Debug, Clone, Default)]
pub struct Actuator {
    stats: ActuatorStats,
}

impl Actuator {
    /// Creates an idle actuator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ActuatorStats {
        self.stats
    }

    /// Overwrites the accumulated statistics (checkpoint restore).
    pub fn restore_stats(&mut self, stats: ActuatorStats) {
        self.stats = stats;
    }

    /// Applies one action to the simulator. Returns `true` if the action had an effect.
    pub fn apply(&mut self, sim: &mut ColocationSim, action: Action) -> bool {
        let applied = match action {
            Action::SetVariant { app, variant } => sim.set_variant(app, variant),
            Action::ReclaimCore { app } => sim.reclaim_core(app),
            Action::ReturnCore { app } => sim.return_core(app),
        };
        match (applied, action) {
            (true, Action::SetVariant { .. }) => self.stats.variant_switches += 1,
            (true, Action::ReclaimCore { .. }) => self.stats.cores_reclaimed += 1,
            (true, Action::ReturnCore { .. }) => self.stats.cores_returned += 1,
            (false, _) => self.stats.rejected += 1,
        }
        applied
    }

    /// Applies a batch of actions in order, returning how many had an effect.
    pub fn apply_all(&mut self, sim: &mut ColocationSim, actions: &[Action]) -> usize {
        actions.iter().filter(|&&a| self.apply(sim, a)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_approx::catalog::{AppId, Catalog};
    use pliant_sim::colocation::ColocationConfig;
    use pliant_workloads::service::ServiceId;

    fn sim() -> ColocationSim {
        let cfg = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Canneal], 3);
        ColocationSim::new(cfg, &Catalog::default())
    }

    #[test]
    fn apply_variant_switch_and_core_moves() {
        let mut sim = sim();
        let mut act = Actuator::new();
        assert!(act.apply(
            &mut sim,
            Action::SetVariant {
                app: 0,
                variant: Some(3)
            }
        ));
        assert!(act.apply(&mut sim, Action::ReclaimCore { app: 0 }));
        assert!(act.apply(&mut sim, Action::ReturnCore { app: 0 }));
        let stats = act.stats();
        assert_eq!(stats.variant_switches, 1);
        assert_eq!(stats.cores_reclaimed, 1);
        assert_eq!(stats.cores_returned, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn redundant_switch_is_rejected() {
        let mut sim = sim();
        let mut act = Actuator::new();
        assert!(act.apply(
            &mut sim,
            Action::SetVariant {
                app: 0,
                variant: Some(2)
            }
        ));
        assert!(!act.apply(
            &mut sim,
            Action::SetVariant {
                app: 0,
                variant: Some(2)
            }
        ));
        assert_eq!(act.stats().rejected, 1);
    }

    #[test]
    fn cannot_return_core_that_was_never_reclaimed() {
        let mut sim = sim();
        let mut act = Actuator::new();
        assert!(!act.apply(&mut sim, Action::ReturnCore { app: 0 }));
        assert_eq!(act.stats().cores_returned, 0);
        assert_eq!(act.stats().rejected, 1);
    }

    #[test]
    fn apply_all_counts_effective_actions() {
        let mut sim = sim();
        let mut act = Actuator::new();
        let n = act.apply_all(
            &mut sim,
            &[
                Action::SetVariant {
                    app: 0,
                    variant: Some(1),
                },
                Action::SetVariant {
                    app: 0,
                    variant: Some(1),
                },
                Action::ReclaimCore { app: 0 },
            ],
        );
        assert_eq!(n, 2);
    }
}
