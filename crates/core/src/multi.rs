//! Round-robin arbitration for multi-application co-locations (§4.4 of the paper).
//!
//! When more than one approximate application shares the host with the interactive
//! service, Pliant manages them in a round-robin fashion so that no single application is
//! penalized disproportionately: on a QoS violation it first switches one application
//! (starting from a rotating pointer) to its most approximate variant; only when every
//! application is already at its most approximate variant does it start reclaiming cores,
//! one application and one core per decision interval. Recovery mirrors that order —
//! cores are returned first, then approximation is relaxed, again round-robin.

use serde::{Deserialize, Serialize};

use crate::actuator::Action;
use crate::controller::ControllerConfig;
use crate::monitor::MonitorReport;

/// Per-application state tracked by the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct AppState {
    variant_count: usize,
    variant: Option<usize>,
    cores_reclaimed: u32,
    /// Cores that can still be reclaimed (the application keeps at least one core).
    reclaimable: u32,
}

impl AppState {
    fn most_approximate(&self) -> Option<usize> {
        if self.variant_count == 0 {
            None
        } else {
            Some(self.variant_count - 1)
        }
    }

    fn at_most_approximate(&self) -> bool {
        self.variant == self.most_approximate() || self.variant_count == 0
    }
}

/// Round-robin multi-application controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiAppController {
    config: ControllerConfig,
    apps: Vec<AppState>,
    /// Rotating pointer: the next application to be asked for a concession.
    pointer: usize,
    /// Consecutive intervals with slack above the threshold.
    slack_streak: u32,
    decisions: u64,
}

impl MultiAppController {
    /// Creates a controller for applications with the given variant counts and initial
    /// core allocations. `start_pointer` selects which application is asked first (the
    /// paper picks it randomly; experiments derive it from the seed).
    pub fn new(
        config: ControllerConfig,
        variant_counts: &[usize],
        initial_cores: &[u32],
        start_pointer: usize,
    ) -> Self {
        assert_eq!(
            variant_counts.len(),
            initial_cores.len(),
            "one core allocation per application is required"
        );
        assert!(
            !variant_counts.is_empty(),
            "at least one application is required"
        );
        let apps = variant_counts
            .iter()
            .zip(initial_cores.iter())
            .map(|(&vc, &cores)| AppState {
                variant_count: vc,
                variant: None,
                cores_reclaimed: 0,
                reclaimable: cores.saturating_sub(1),
            })
            .collect();
        Self {
            config,
            apps,
            pointer: start_pointer % variant_counts.len().max(1),
            slack_streak: 0,
            decisions: 0,
        }
    }

    /// Number of managed applications.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Current variant of application `app`.
    pub fn variant(&self, app: usize) -> Option<usize> {
        self.apps[app].variant
    }

    /// Cores reclaimed from application `app` so far.
    pub fn cores_reclaimed(&self, app: usize) -> u32 {
        self.apps[app].cores_reclaimed
    }

    /// Total cores reclaimed across all applications.
    pub fn total_cores_reclaimed(&self) -> u32 {
        self.apps.iter().map(|a| a.cores_reclaimed).sum()
    }

    /// Total decisions taken.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Re-binds slot `app` to a new application with `variant_count` admissible variants
    /// (batch-job scheduling: a finished job's slot is handed the next queued job).
    ///
    /// The new occupant starts precise, so the slot's variant resets; the core ledger
    /// (`cores_reclaimed` / the reclaimable budget) deliberately persists — the cores the
    /// service reclaimed from the slot are still held by the service, and recovery must
    /// return them to whichever job now occupies the slot.
    pub fn reset_app(&mut self, app: usize, variant_count: usize) {
        let state = &mut self.apps[app];
        state.variant_count = variant_count;
        state.variant = None;
    }

    /// Takes one decision from the monitor's report.
    pub fn decide(&mut self, report: &MonitorReport) -> Vec<Action> {
        self.decisions += 1;
        let n = self.apps.len();
        if report.no_signal {
            // An idle interval (no arrivals) carries no latency evidence: hold every
            // application's state and leave the slack streak as it is.
            return Vec::new();
        }
        if report.qos_violated {
            self.slack_streak = 0;
            // 1. Find the next application (round-robin) not yet at its most approximate
            //    variant and escalate it.
            for offset in 0..n {
                let idx = (self.pointer + offset) % n;
                if !self.apps[idx].at_most_approximate() {
                    let most = self.apps[idx].most_approximate();
                    self.apps[idx].variant = most;
                    self.pointer = (idx + 1) % n;
                    return vec![Action::SetVariant {
                        app: idx,
                        variant: most,
                    }];
                }
            }
            // 2. Everyone is maximally approximate: reclaim one core, round-robin over the
            //    applications that still have cores to give.
            for offset in 0..n {
                let idx = (self.pointer + offset) % n;
                if self.apps[idx].cores_reclaimed < self.apps[idx].reclaimable {
                    self.apps[idx].cores_reclaimed += 1;
                    self.pointer = (idx + 1) % n;
                    return vec![Action::ReclaimCore { app: idx }];
                }
            }
            // Nothing left to take.
            Vec::new()
        } else if report.slack_fraction > self.config.slack_threshold {
            self.slack_streak += 1;
            if self.slack_streak < self.config.consecutive_slack_required {
                return Vec::new();
            }
            self.slack_streak = 0;
            // Recovery: return cores first (round-robin), then relax approximation one
            // application and one step at a time.
            for offset in 0..n {
                let idx = (self.pointer + offset) % n;
                if self.apps[idx].cores_reclaimed > 0 {
                    self.apps[idx].cores_reclaimed -= 1;
                    self.pointer = (idx + 1) % n;
                    return vec![Action::ReturnCore { app: idx }];
                }
            }
            for offset in 0..n {
                let idx = (self.pointer + offset) % n;
                match self.apps[idx].variant {
                    Some(0) => {
                        self.apps[idx].variant = None;
                        self.pointer = (idx + 1) % n;
                        return vec![Action::SetVariant {
                            app: idx,
                            variant: None,
                        }];
                    }
                    Some(v) => {
                        self.apps[idx].variant = Some(v - 1);
                        self.pointer = (idx + 1) % n;
                        return vec![Action::SetVariant {
                            app: idx,
                            variant: Some(v - 1),
                        }];
                    }
                    None => {}
                }
            }
            Vec::new()
        } else {
            self.slack_streak = 0;
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violated() -> MonitorReport {
        MonitorReport {
            p99_s: 1.0,
            mean_s: 0.5,
            smoothed_p99_s: 1.0,
            sampled: 10,
            qos_violated: true,
            slack_fraction: -1.0,
            no_signal: false,
        }
    }

    fn met(slack: f64) -> MonitorReport {
        MonitorReport {
            p99_s: 0.1,
            mean_s: 0.05,
            smoothed_p99_s: 0.1,
            sampled: 10,
            qos_violated: false,
            slack_fraction: slack,
            no_signal: false,
        }
    }

    fn controller() -> MultiAppController {
        // No slack hysteresis so each high-slack interval yields one visible recovery step.
        let config = ControllerConfig {
            consecutive_slack_required: 1,
            ..ControllerConfig::default()
        };
        MultiAppController::new(config, &[4, 8], &[4, 4], 0)
    }

    #[test]
    fn violations_escalate_apps_round_robin_before_cores() {
        let mut c = controller();
        let a1 = c.decide(&violated());
        assert_eq!(
            a1,
            vec![Action::SetVariant {
                app: 0,
                variant: Some(3)
            }]
        );
        let a2 = c.decide(&violated());
        assert_eq!(
            a2,
            vec![Action::SetVariant {
                app: 1,
                variant: Some(7)
            }]
        );
        // Both at most approximate: cores come next, one app at a time.
        let a3 = c.decide(&violated());
        assert_eq!(a3, vec![Action::ReclaimCore { app: 0 }]);
        let a4 = c.decide(&violated());
        assert_eq!(a4, vec![Action::ReclaimCore { app: 1 }]);
        assert_eq!(c.total_cores_reclaimed(), 2);
        assert_eq!(c.cores_reclaimed(0), 1);
        assert_eq!(c.cores_reclaimed(1), 1);
    }

    #[test]
    fn no_application_is_penalized_disproportionately() {
        let mut c = MultiAppController::new(ControllerConfig::default(), &[4, 4, 4], &[3, 3, 2], 1);
        for _ in 0..9 {
            let _ = c.decide(&violated());
        }
        // After 3 variant escalations and 6 core reclamations the spread between the most-
        // and least-penalized application is at most one core.
        let reclaimed: Vec<u32> = (0..3).map(|i| c.cores_reclaimed(i)).collect();
        let max = *reclaimed.iter().max().unwrap();
        let min = *reclaimed.iter().min().unwrap();
        assert!(
            max - min <= 1,
            "round-robin must balance core reclamation: {reclaimed:?}"
        );
    }

    #[test]
    fn reclamation_stops_when_every_app_is_down_to_one_core() {
        let mut c = MultiAppController::new(ControllerConfig::default(), &[1, 1], &[2, 2], 0);
        // 2 variant escalations + 2 reclaimable cores, then nothing.
        for _ in 0..4 {
            assert!(!c.decide(&violated()).is_empty());
        }
        assert!(c.decide(&violated()).is_empty());
        assert_eq!(c.total_cores_reclaimed(), 2);
    }

    #[test]
    fn recovery_returns_cores_before_relaxing_variants() {
        let mut c = controller();
        for _ in 0..4 {
            let _ = c.decide(&violated());
        }
        let r1 = c.decide(&met(0.3));
        assert!(matches!(r1[0], Action::ReturnCore { .. }));
        let r2 = c.decide(&met(0.3));
        assert!(matches!(r2[0], Action::ReturnCore { .. }));
        assert_eq!(c.total_cores_reclaimed(), 0);
        let r3 = c.decide(&met(0.3));
        assert!(matches!(r3[0], Action::SetVariant { .. }));
    }

    #[test]
    fn low_slack_holds_state() {
        let mut c = controller();
        let _ = c.decide(&violated());
        assert!(c.decide(&met(0.02)).is_empty());
    }

    #[test]
    fn no_signal_holds_every_application() {
        let idle = MonitorReport {
            p99_s: 0.1,
            mean_s: 0.0,
            smoothed_p99_s: 0.1,
            sampled: 0,
            qos_violated: false,
            slack_fraction: 0.0,
            no_signal: true,
        };
        let mut c = controller();
        let _ = c.decide(&violated());
        let _ = c.decide(&violated());
        let before: Vec<Option<usize>> = (0..c.app_count()).map(|i| c.variant(i)).collect();
        assert!(c.decide(&idle).is_empty());
        let after: Vec<Option<usize>> = (0..c.app_count()).map(|i| c.variant(i)).collect();
        assert_eq!(before, after);
        assert_eq!(c.total_cores_reclaimed(), 0);
    }

    #[test]
    fn reset_app_clears_the_variant_but_keeps_the_core_ledger() {
        let mut c = controller();
        // Escalate both apps, then reclaim one core from app 0.
        for _ in 0..3 {
            let _ = c.decide(&violated());
        }
        assert_eq!(c.variant(0), Some(3));
        assert_eq!(c.cores_reclaimed(0), 1);
        // Slot 0's job finished; a new job with 6 variants takes the slot.
        c.reset_app(0, 6);
        assert_eq!(c.variant(0), None, "the new job starts precise");
        assert_eq!(
            c.cores_reclaimed(0),
            1,
            "the service still holds the slot's reclaimed core"
        );
        // The next violation escalates the new occupant to *its* most approximate
        // variant; recovery later returns the outstanding core to it.
        let a = c.decide(&violated());
        assert_eq!(
            a,
            vec![Action::SetVariant {
                app: 0,
                variant: Some(5)
            }]
        );
        let r = c.decide(&met(0.3));
        assert_eq!(
            r,
            vec![Action::ReturnCore { app: 0 }],
            "recovery returns the outstanding core to the slot's new occupant"
        );
    }

    #[test]
    fn start_pointer_rotates_first_victim() {
        let mut c = MultiAppController::new(ControllerConfig::default(), &[3, 3], &[4, 4], 1);
        let a = c.decide(&violated());
        assert_eq!(
            a,
            vec![Action::SetVariant {
                app: 1,
                variant: Some(2)
            }]
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = MultiAppController::new(ControllerConfig::default(), &[3, 3], &[4], 0);
    }
}
