//! Executes scenarios and suites, serially or in parallel.
//!
//! The [`Engine`] is the single place a [`Scenario`] is turned into a
//! [`ColocationOutcome`]: it owns the application [`Catalog`] (built once and shared
//! across every run) and an execution mode. Suites stream their results through a
//! pluggable [`ResultSink`]; results are always delivered in cell-index order, so a sink
//! observes the exact same sequence whether the engine runs serially or on a thread pool —
//! parallelism changes wall-clock time, never output.
//!
//! Each scenario derives all of its randomness from its own seed, so the grid cells are
//! embarrassingly parallel; the parallel mode fans cells out over `std::thread::scope`
//! workers pulling from an atomic work queue.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::Catalog;
use pliant_sim::colocation::{ColocationConfig, ColocationSim};
use pliant_telemetry::obs::{Event, EventLog, ObsAction, ObsBuffer, ObsLevel};
use pliant_telemetry::rng::derive_seed;
use pliant_telemetry::series::{TimeSeries, TraceBundle};
use pliant_telemetry::stats::OnlineStats;
use pliant_workloads::profile::LoadPhase;
use pliant_workloads::service::ServiceProfile;

use crate::actuator::{Action, Actuator};
use crate::controller::ControllerConfig;
use crate::experiment::{AppOutcome, ColocationOutcome, PhaseQosStats};
use crate::monitor::{MonitorConfig, PerformanceMonitor};
use crate::scenario::Scenario;
use crate::suite::Suite;

/// How an [`Engine`] schedules the cells of a suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Run cells one after another on the calling thread.
    Serial,
    /// Fan cells out over worker threads (`threads == 0` means one worker per available
    /// core). Results are still delivered to the sink in cell-index order.
    Parallel {
        /// Worker-thread count; 0 = auto-detect.
        threads: usize,
    },
}

/// Receives suite results as they complete, in deterministic cell-index order.
pub trait ResultSink {
    /// Called once per cell with the cell index, the materialized scenario, and its
    /// outcome.
    fn on_result(&mut self, index: usize, scenario: &Scenario, outcome: &ColocationOutcome);

    /// Called once after every cell has been delivered.
    fn on_complete(&mut self, _total: usize) {}
}

/// One executed suite cell: the scenario that was run and what came out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Cell index within the suite grid.
    pub index: usize,
    /// The fully-materialized scenario (including derived seed and label).
    pub scenario: Scenario,
    /// The experiment outcome.
    pub outcome: ColocationOutcome,
}

/// In-memory [`ResultSink`] collecting every cell outcome.
#[derive(Debug, Default)]
pub struct Collector {
    /// Collected results in cell-index order.
    pub results: Vec<CellOutcome>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ResultSink for Collector {
    fn on_result(&mut self, index: usize, scenario: &Scenario, outcome: &ColocationOutcome) {
        self.results.push(CellOutcome {
            index,
            scenario: scenario.clone(),
            outcome: outcome.clone(),
        });
    }
}

/// Executes scenarios and suites; see the module docs.
#[derive(Debug, Clone)]
pub struct Engine {
    catalog: Catalog,
    mode: ExecMode,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A serial engine with the paper-default calibrated catalog.
    pub fn new() -> Self {
        Engine {
            catalog: Catalog::default(),
            mode: ExecMode::Serial,
        }
    }

    /// Replaces the application catalog (e.g. with variants measured by a fresh
    /// design-space exploration).
    pub fn with_catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Switches to parallel execution with one worker per available core.
    pub fn parallel(mut self) -> Self {
        self.mode = ExecMode::Parallel { threads: 0 };
        self
    }

    /// Switches to parallel execution with an explicit worker count.
    pub fn parallel_threads(mut self, threads: usize) -> Self {
        self.mode = ExecMode::Parallel { threads };
        self
    }

    /// Switches back to serial execution.
    pub fn serial(mut self) -> Self {
        self.mode = ExecMode::Serial;
        self
    }

    /// The current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The catalog scenarios run against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Runs one scenario to completion.
    pub fn run_scenario(&self, scenario: &Scenario) -> ColocationOutcome {
        execute_scenario(scenario, &self.catalog)
    }

    /// Runs one scenario with observability enabled at `level`, returning the outcome
    /// plus the merged decision-event stream (see [`pliant_telemetry::obs`]). With
    /// [`ObsLevel::Off`] this is exactly [`Self::run_scenario`] plus an empty log; the
    /// simulation itself is identical at every level — tracing observes decisions, it
    /// never alters them.
    pub fn run_scenario_traced(
        &self,
        scenario: &Scenario,
        level: ObsLevel,
    ) -> (ColocationOutcome, EventLog) {
        execute_scenario_traced(scenario, &self.catalog, level)
    }

    /// Runs every cell of a suite, streaming outcomes into `sink` in cell-index order.
    ///
    /// # Panics
    ///
    /// Panics if the suite violates its builder invariants (possible only for suites
    /// deserialized from an archive; see [`Suite::validate`]) or a cell's scenario is
    /// invalid.
    pub fn run_suite(&self, suite: &Suite, sink: &mut dyn ResultSink) {
        if let Err(e) = suite.validate() {
            panic!("invalid suite `{}`: {e}", suite.name());
        }
        let scenarios = suite.scenarios();
        match self.mode {
            ExecMode::Serial => {
                for (i, scenario) in scenarios.iter().enumerate() {
                    let outcome = execute_scenario(scenario, &self.catalog);
                    sink.on_result(i, scenario, &outcome);
                }
            }
            ExecMode::Parallel { threads } => {
                self.run_parallel(&scenarios, threads, sink);
            }
        }
        sink.on_complete(scenarios.len());
    }

    /// Runs a suite and returns every cell outcome (convenience over a [`Collector`]).
    pub fn run_collect(&self, suite: &Suite) -> Vec<CellOutcome> {
        let mut collector = Collector::new();
        self.run_suite(suite, &mut collector);
        collector.results
    }

    fn run_parallel(&self, scenarios: &[Scenario], threads: usize, sink: &mut dyn ResultSink) {
        let n = scenarios.len();
        if n == 0 {
            return;
        }
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .min(n)
        .max(1);

        let next = AtomicUsize::new(0);
        // Each slot holds the cell's outcome or the payload of a panicking worker; the
        // delivery loop re-raises the first panic on the calling thread so a failing
        // scenario behaves the same in parallel mode as in serial mode (it must not
        // leave the delivery loop waiting on a slot that will never fill).
        type Slot = std::thread::Result<ColocationOutcome>;
        let slots: Mutex<Vec<Option<Slot>>> = Mutex::new((0..n).map(|_| None).collect());
        let ready = Condvar::new();
        let catalog = &self.catalog;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        execute_scenario(&scenarios[i], catalog)
                    }));
                    let died = result.is_err();
                    // pliant-lint: allow(panic-hygiene): cell panics are captured by
                    // catch_unwind above and the lock only guards plain assignments,
                    // so the mutex cannot be poisoned.
                    let mut slots = slots.lock().expect("engine result slots poisoned");
                    slots[i] = Some(result);
                    drop(slots);
                    ready.notify_all();
                    if died {
                        break;
                    }
                });
            }

            // Deliver completed cells to the sink in index order as they become ready.
            let mut delivered = 0;
            // pliant-lint: allow(panic-hygiene): see above — workers cannot poison it.
            let mut guard = slots.lock().expect("engine result slots poisoned");
            while delivered < n {
                match guard[delivered].take() {
                    Some(Ok(outcome)) => {
                        drop(guard);
                        sink.on_result(delivered, &scenarios[delivered], &outcome);
                        delivered += 1;
                        // pliant-lint: allow(panic-hygiene): see above — unpoisonable.
                        guard = slots.lock().expect("engine result slots poisoned");
                    }
                    Some(Err(panic_payload)) => {
                        drop(guard);
                        // Stop handing out further cells, then re-raise once the
                        // in-flight workers drain (thread::scope joins them).
                        next.store(n, Ordering::Relaxed);
                        std::panic::resume_unwind(panic_payload);
                    }
                    None => {
                        // pliant-lint: allow(panic-hygiene): see above — unpoisonable.
                        guard = ready.wait(guard).expect("engine result slots poisoned");
                    }
                }
            }
        });
    }
}

/// Runs one scenario against a catalog. This is the execution core every public entry
/// point (engine, legacy free functions) funnels through.
pub(crate) fn execute_scenario(scenario: &Scenario, catalog: &Catalog) -> ColocationOutcome {
    execute_scenario_traced(scenario, catalog, ObsLevel::Off).0
}

/// Runs one scenario against a catalog with observability at `level`.
pub(crate) fn execute_scenario_traced(
    scenario: &Scenario,
    catalog: &Catalog,
    level: ObsLevel,
) -> (ColocationOutcome, EventLog) {
    // Scenarios normally come from the builder, but serde deserialization (archived
    // suites, hand-edited replays) bypasses it — re-check here so a bad archive fails
    // with a clear message instead of deep inside the simulator.
    if let Err(e) = scenario.validate() {
        panic!("invalid scenario `{}`: {e}", scenario.describe());
    }
    let mut config =
        ColocationConfig::paper_default(scenario.service, &scenario.apps, scenario.seed)
            .with_load_profile(scenario.effective_load_profile());
    config.instrumented = scenario.effective_instrumented();
    if let Some(qos_s) = scenario.qos_target_s {
        config.service.qos_target_s = qos_s;
    }
    if let Some(samples) = scenario.samples_per_interval {
        config.samples_per_interval = samples;
    }
    execute_with_config(scenario, config, catalog, level)
}

/// Runs one scenario with an explicit simulator configuration (the scenario supplies the
/// policy, controller knobs, horizon, and seed).
pub(crate) fn execute_with_config(
    scenario: &Scenario,
    config: ColocationConfig,
    catalog: &Catalog,
    level: ObsLevel,
) -> (ColocationOutcome, EventLog) {
    let service_id = config.service.id;
    let service_profile: ServiceProfile = config.service.clone();
    let app_ids = config.apps.clone();
    let mut sim = ColocationSim::new(config, catalog);

    let variant_counts: Vec<usize> = app_ids
        .iter()
        .map(|id| catalog.profile(*id).map_or(0, |p| p.variant_count()))
        .collect();
    let initial_cores: Vec<u32> = (0..app_ids.len()).map(|i| sim.app(i).cores()).collect();
    let controller_config = ControllerConfig {
        decision_interval_s: scenario.decision_interval_s,
        slack_threshold: scenario.slack_threshold,
        consecutive_slack_required: scenario.consecutive_slack_required,
    };
    let start_pointer = (derive_seed(scenario.seed, 7) % app_ids.len() as u64) as usize;
    let mut policy = scenario.policy.build(
        controller_config,
        &variant_counts,
        &initial_cores,
        start_pointer,
    );
    let mut monitor = PerformanceMonitor::new(
        MonitorConfig::for_qos(service_profile.qos_target_s),
        derive_seed(scenario.seed, 8),
    );
    let mut actuator = Actuator::new();

    let fair_service_cores = sim.service_cores();
    let mut p99_stats = OnlineStats::new();
    let mut violations = 0usize;
    let mut intervals = 0usize;
    let mut max_extra_cores = 0u32;
    let mut max_reclaimed_per_app = vec![0u32; app_ids.len()];

    let horizon = scenario.max_intervals();
    let mut latency_series = TimeSeries::with_capacity("p99_latency_s", horizon);
    let mut load_series = TimeSeries::with_capacity("offered_load", horizon);
    let mut cores_series = TimeSeries::with_capacity("service_extra_cores", horizon);
    let mut power_series = TimeSeries::with_capacity("power_w", horizon);
    let mut total_energy_j = 0.0f64;
    let mut simulated_s = 0.0f64;
    let mut variant_series: Vec<TimeSeries> = app_ids
        .iter()
        .map(|id| TimeSeries::with_capacity(format!("variant_{}", id.name()), horizon))
        .collect();
    let mut reclaimed_series: Vec<TimeSeries> = app_ids
        .iter()
        .map(|id| TimeSeries::with_capacity(format!("reclaimed_{}", id.name()), horizon))
        .collect();

    // Per-load-phase QoS accumulators, indexed in `LoadPhase::all()` order.
    let mut phase_intervals = [0usize; 4];
    let mut phase_violations = [0usize; 4];
    let mut phase_p99_sum = [0.0f64; 4];
    let mut phase_load_sum = [0.0f64; 4];

    let max_intervals = scenario.max_intervals();
    let mut idle_intervals = 0usize;
    // Decision-event buffer for the run (source 1 = the node, matching the cluster
    // convention where source 0 is the fleet coordinator). At the default
    // `ObsLevel::Off` every emit below is a single-branch no-op.
    let mut obs_buf = ObsBuffer::new(level, 1, 1, pliant_telemetry::obs::DEFAULT_FLEET_CAPACITY);
    // The previous interval's observation is recycled into the next advance so the
    // sample and status buffers are allocated once per run, not once per interval.
    let mut recycled = None;
    for k in 0..max_intervals {
        let obs = sim.advance_reusing(scenario.decision_interval_s, recycled.take());
        intervals += 1;
        // An idle interval (zero arrivals, e.g. a load-profile trough) served no
        // requests: there is no latency to report, so it contributes nothing to the
        // latency/QoS statistics and shows up as 0 in the latency trace.
        let idle = obs.arrivals == 0;
        if idle {
            idle_intervals += 1;
        } else {
            p99_stats.push(obs.p99_latency_s);
            if obs.qos_violated() {
                violations += 1;
                obs_buf.emit(
                    k as u32,
                    obs.time_s,
                    Event::QosViolation {
                        node: 0,
                        p99_s: obs.p99_latency_s,
                        qos_target_s: service_profile.qos_target_s,
                    },
                );
            }
            let phase_idx = LoadPhase::all()
                .iter()
                .position(|p| *p == obs.load_phase)
                // pliant-lint: allow(panic-hygiene): LoadPhase::all() enumerates every
                // variant; a new phase without an `all()` entry fails tests first.
                .expect("every phase is enumerated");
            phase_intervals[phase_idx] += 1;
            phase_violations[phase_idx] += usize::from(obs.qos_violated());
            phase_p99_sum[phase_idx] += obs.p99_latency_s;
            phase_load_sum[phase_idx] += obs.offered_load;
        }
        let extra = sim.service_cores().saturating_sub(fair_service_cores);
        max_extra_cores = max_extra_cores.max(extra);

        latency_series.push(obs.time_s, if idle { 0.0 } else { obs.p99_latency_s });
        load_series.push(obs.time_s, obs.offered_load);
        cores_series.push(obs.time_s, extra as f64);
        power_series.push(obs.time_s, obs.power_w);
        total_energy_j += obs.energy_j;
        simulated_s += scenario.decision_interval_s;
        for (i, status) in obs.apps.iter().enumerate() {
            // Variant index for plotting: 0 = precise, k = k-th approximate variant.
            let v = status.variant.map_or(0.0, |x| (x + 1) as f64);
            variant_series[i].push(obs.time_s, v);
            reclaimed_series[i].push(obs.time_s, status.cores_reclaimed as f64);
            max_reclaimed_per_app[i] = max_reclaimed_per_app[i].max(status.cores_reclaimed);
        }

        if scenario.stop_when_apps_finish && obs.all_apps_finished {
            break;
        }

        // Monitor → policy → actuator, exactly once per decision interval. No-signal
        // reports are passed through rather than filtered: policies that keep pending
        // time-insensitive actions (e.g. the static-most-approximate ablation's initial
        // pin) must still get their turn even when a run starts in an idle trough; the
        // `Policy` contract requires treating no-signal as neither violation nor slack.
        let report = monitor.observe_interval(&obs.latency_samples_s);
        let actions = policy.decide(&report);
        if obs_buf.enabled() {
            // Traced path: record each controller decision and, when the actuator
            // accepts it, the resulting state change. Applying actions one at a time
            // is semantically identical to `apply_all`.
            for action in &actions {
                let (app, obs_action) = match *action {
                    Action::SetVariant { app, .. } => (app, ObsAction::SetVariant),
                    Action::ReclaimCore { app } => (app, ObsAction::ReclaimCore),
                    Action::ReturnCore { app } => (app, ObsAction::ReturnCore),
                };
                obs_buf.emit(
                    k as u32,
                    obs.time_s,
                    Event::ControllerDecision {
                        node: 0,
                        app: app as u32,
                        signal_p99_s: report.smoothed_p99_s,
                        slack: report.slack_fraction,
                        action: obs_action,
                    },
                );
                if actuator.apply(&mut sim, *action) {
                    let applied = match *action {
                        Action::SetVariant { app, variant } => Event::VariantSwitch {
                            node: 0,
                            app: app as u32,
                            variant: variant.map_or(-1, |v| v as i64),
                        },
                        Action::ReclaimCore { app } => Event::CoreReclaimed {
                            node: 0,
                            app: app as u32,
                        },
                        Action::ReturnCore { app } => Event::CoreReturned {
                            node: 0,
                            app: app as u32,
                        },
                    };
                    obs_buf.emit(k as u32, obs.time_s, applied);
                }
            }
        } else {
            actuator.apply_all(&mut sim, &actions);
        }
        recycled = Some(obs);
    }

    let app_outcomes: Vec<AppOutcome> = (0..app_ids.len())
        .map(|i| {
            let state = sim.app(i);
            AppOutcome {
                app: app_ids[i],
                finished: state.is_finished(),
                relative_execution_time: state.relative_execution_time(),
                inaccuracy_pct: state.inaccuracy_pct(),
                max_cores_reclaimed: max_reclaimed_per_app[i],
                instrumentation_overhead: state.profile().instrumentation_overhead,
            }
        })
        .collect();

    let phase_qos: Vec<PhaseQosStats> = LoadPhase::all()
        .iter()
        .enumerate()
        .filter(|(i, _)| phase_intervals[*i] > 0)
        .map(|(i, &phase)| PhaseQosStats {
            phase,
            intervals: phase_intervals[i],
            qos_violations: phase_violations[i],
            qos_violation_fraction: phase_violations[i] as f64 / phase_intervals[i] as f64,
            mean_p99_s: phase_p99_sum[i] / phase_intervals[i] as f64,
            mean_offered_load: phase_load_sum[i] / phase_intervals[i] as f64,
        })
        .collect();

    let mut trace = TraceBundle::new();
    trace.insert(latency_series);
    trace.insert(load_series);
    trace.insert(cores_series);
    trace.insert(power_series);
    for s in variant_series {
        trace.insert(s);
    }
    for s in reclaimed_series {
        trace.insert(s);
    }

    let finished_jobs = app_outcomes.iter().filter(|a| a.finished).count();
    let busy_intervals = intervals - idle_intervals;
    let mean_p99_s = p99_stats.mean();
    let log = EventLog::merge(level, [obs_buf]);
    let outcome = ColocationOutcome {
        service: service_id,
        policy: scenario.policy,
        apps: app_ids,
        intervals,
        idle_intervals,
        qos_target_s: service_profile.qos_target_s,
        mean_p99_s,
        max_p99_s: p99_stats.max(),
        qos_violation_fraction: violations as f64 / busy_intervals.max(1) as f64,
        tail_latency_ratio: mean_p99_s / service_profile.qos_target_s,
        max_extra_service_cores: max_extra_cores,
        total_energy_j,
        mean_power_w: if simulated_s > 0.0 {
            total_energy_j / simulated_s
        } else {
            0.0
        },
        energy_per_completed_job_j: if finished_jobs > 0 {
            total_energy_j / finished_jobs as f64
        } else {
            0.0
        },
        phase_qos,
        app_outcomes,
        obs: log.summary(),
        trace,
    };
    (outcome, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::suite::SeedMode;
    use pliant_approx::catalog::AppId;
    use pliant_workloads::profile::LoadPhase;
    use pliant_workloads::service::ServiceId;

    fn small_suite() -> Suite {
        Suite::new(
            Scenario::builder(ServiceId::Nginx)
                .app(AppId::Canneal)
                .horizon_intervals(20)
                .seed(11)
                .build(),
        )
        .named("engine-test")
        .for_each_app([AppId::Canneal, AppId::Snp, AppId::Bayesian])
        .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
    }

    #[test]
    fn serial_and_parallel_runs_agree() {
        let suite = small_suite();
        let serial = Engine::new().run_collect(&suite);
        let parallel = Engine::new().parallel_threads(4).run_collect(&suite);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.outcome.mean_p99_s, b.outcome.mean_p99_s);
            assert_eq!(
                a.outcome.qos_violation_fraction,
                b.outcome.qos_violation_fraction
            );
            assert_eq!(a.outcome.app_outcomes, b.outcome.app_outcomes);
        }
    }

    #[test]
    fn results_arrive_in_cell_index_order() {
        struct OrderCheck {
            next: usize,
            completed: Option<usize>,
        }
        impl ResultSink for OrderCheck {
            fn on_result(&mut self, index: usize, _s: &Scenario, _o: &ColocationOutcome) {
                assert_eq!(index, self.next, "results must stream in cell order");
                self.next += 1;
            }
            fn on_complete(&mut self, total: usize) {
                self.completed = Some(total);
            }
        }
        let suite = small_suite();
        let mut sink = OrderCheck {
            next: 0,
            completed: None,
        };
        Engine::new()
            .parallel_threads(3)
            .run_suite(&suite, &mut sink);
        assert_eq!(sink.completed, Some(suite.len()));
        assert_eq!(sink.next, suite.len());
    }

    #[test]
    fn engine_matches_scenario_run() {
        let scenario = Scenario::builder(ServiceId::Memcached)
            .app(AppId::Plsa)
            .horizon_intervals(25)
            .seed(123)
            .build();
        let via_engine = Engine::new().run_scenario(&scenario);
        let via_scenario = scenario.run();
        assert_eq!(via_engine.mean_p99_s, via_scenario.mean_p99_s);
        assert_eq!(via_engine.policy, PolicyKind::Pliant);
    }

    #[test]
    fn parallel_worker_panic_propagates_instead_of_deadlocking() {
        // An engine whose catalog is missing the scenario's app panics during execution;
        // in parallel mode that panic must reach the caller (not hang the delivery loop).
        let empty = Catalog::from_profiles(Vec::new());
        let suite = small_suite();
        let engine = Engine::new().with_catalog(empty).parallel_threads(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_collect(&suite);
        }));
        assert!(
            result.is_err(),
            "the worker panic must propagate to the caller"
        );
    }

    #[test]
    fn constant_load_runs_report_a_single_steady_phase() {
        let scenario = Scenario::builder(ServiceId::Nginx)
            .app(AppId::Snp)
            .horizon_intervals(15)
            .seed(3)
            .build();
        let outcome = Engine::new().run_scenario(&scenario);
        assert_eq!(outcome.phase_qos.len(), 1);
        let steady = &outcome.phase_qos[0];
        assert_eq!(steady.phase, LoadPhase::Steady);
        assert_eq!(steady.intervals, outcome.intervals);
        assert_eq!(
            steady.qos_violation_fraction,
            outcome.qos_violation_fraction
        );
        assert!((steady.mean_offered_load - 0.75).abs() < 1e-12);
        let load = outcome
            .trace
            .get("offered_load")
            .expect("offered_load series");
        assert_eq!(load.len(), outcome.intervals);
        assert!(load.values().iter().all(|v| (*v - 0.75).abs() < 1e-12));
    }

    #[test]
    fn flash_crowd_runs_split_qos_stats_by_phase() {
        use pliant_workloads::profile::LoadProfile;
        let scenario = Scenario::builder(ServiceId::Nginx)
            .app(AppId::Snp)
            .load_profile(LoadProfile::FlashCrowd {
                base: 0.4,
                peak: 1.0,
                start_s: 10.0,
                ramp_s: 4.0,
                hold_s: 8.0,
                decay_s: 4.0,
            })
            .horizon_intervals(30)
            .stop_when_apps_finish(false)
            .seed(5)
            .build();
        let outcome = Engine::new().run_scenario(&scenario);
        for phase in LoadPhase::all() {
            assert!(
                outcome.phase(phase).is_some(),
                "a 30 s run over a 16 s transient must visit {phase}"
            );
        }
        let total: usize = outcome.phase_qos.iter().map(|p| p.intervals).sum();
        assert_eq!(total + outcome.idle_intervals, outcome.intervals);
        let steady = outcome.phase(LoadPhase::Steady).unwrap();
        let peak = outcome.phase(LoadPhase::Peak).unwrap();
        assert!(peak.mean_offered_load > steady.mean_offered_load);
    }

    #[test]
    fn idle_intervals_are_excluded_from_qos_statistics() {
        use pliant_workloads::profile::LoadProfile;
        let run = |to: f64| {
            let scenario = Scenario::builder(ServiceId::Memcached)
                .app(AppId::Canneal)
                .policy(PolicyKind::Precise)
                .load_profile(LoadProfile::Step {
                    base: 0.9,
                    to,
                    at_s: 15.0,
                })
                .horizon_intervals(30)
                .stop_when_apps_finish(false)
                .seed(7)
                .build();
            Engine::new().run_scenario(&scenario)
        };
        let with_trough = run(0.0);
        assert_eq!(with_trough.intervals, 30);
        assert_eq!(with_trough.idle_intervals, 15);
        // The busy half violates QoS under the precise baseline; the idle half must not
        // dilute the fraction toward ~50%.
        let busy_only = run(0.9);
        assert_eq!(busy_only.idle_intervals, 0);
        assert!(
            (with_trough.qos_violation_fraction - busy_only.qos_violation_fraction).abs() < 0.15,
            "idle intervals must not dilute the violation fraction ({} vs {})",
            with_trough.qos_violation_fraction,
            busy_only.qos_violation_fraction
        );
        let phase_total: usize = with_trough.phase_qos.iter().map(|p| p.intervals).sum();
        assert_eq!(
            phase_total + with_trough.idle_intervals,
            with_trough.intervals
        );
        // Idle intervals report a 0 latency trace point (no requests, no tail).
        let latency = with_trough.trace.get("p99_latency_s").unwrap().values();
        assert!(latency[16..].iter().all(|l| *l == 0.0));
        assert!(latency[..15].iter().all(|l| *l > 0.0));
    }

    #[test]
    fn outcomes_from_pre_profile_archives_still_deserialize() {
        // `phase_qos` / `idle_intervals` did not exist in earlier archives; stripping
        // them must still yield a readable outcome (empty stats), mirroring the
        // scenario-side legacy-archive guarantee.
        let scenario = Scenario::builder(ServiceId::Nginx)
            .app(AppId::Snp)
            .horizon_intervals(5)
            .build();
        let outcome = Engine::new().run_scenario(&scenario);
        let json = serde_json::to_string(&outcome).expect("serializable");
        let value: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let entries = match value {
            serde::Value::Object(entries) => entries,
            _ => panic!("outcomes serialize as objects"),
        };
        let legacy = serde_json::to_string(&serde::Value::Object(
            entries
                .into_iter()
                .filter(|(k, _)| k != "phase_qos" && k != "idle_intervals")
                .collect(),
        ))
        .expect("serializable");
        let back: ColocationOutcome =
            serde_json::from_str(&legacy).expect("legacy outcome archives deserialize");
        assert!(back.phase_qos.is_empty());
        assert_eq!(back.idle_intervals, 0);
        assert_eq!(back.intervals, outcome.intervals);
    }

    #[test]
    fn idle_troughs_hold_controller_state() {
        use pliant_workloads::profile::LoadProfile;
        // Load drops to zero mid-run: the idle intervals deliver no samples, the monitor
        // reports no-signal, and the controller must hold instead of relaxing on
        // fabricated headroom.
        let scenario = Scenario::builder(ServiceId::Memcached)
            .app(AppId::Canneal)
            .load_profile(LoadProfile::Step {
                base: 0.9,
                to: 0.0,
                at_s: 15.0,
            })
            .horizon_intervals(30)
            .stop_when_apps_finish(false)
            .seed(7)
            .build();
        let outcome = Engine::new().run_scenario(&scenario);
        let variants = outcome.trace.get("variant_canneal").unwrap().values();
        let reclaimed = outcome.trace.get("reclaimed_canneal").unwrap().values();
        assert!(
            variants[14] > 0.0 || reclaimed[14] > 0.0,
            "memcached at 90% load with canneal must have escalated before the drop"
        );
        assert!(
            variants[16..].windows(2).all(|w| w[0] == w[1])
                && reclaimed[16..].windows(2).all(|w| w[0] == w[1]),
            "idle intervals carry no evidence, so the runtime must hold its state"
        );
    }

    #[test]
    fn energy_accounting_is_consistent_with_the_power_trace() {
        let scenario = Scenario::builder(ServiceId::MongoDb)
            .app(AppId::Raytrace)
            .horizon_intervals(80)
            .stop_when_apps_finish(false)
            .seed(13)
            .build();
        let outcome = Engine::new().run_scenario(&scenario);
        let power = outcome.trace.get("power_w").expect("power_w series");
        assert_eq!(power.len(), outcome.intervals);
        assert!(power.values().iter().all(|w| *w > 0.0));
        // Total energy is the integral of the power trace (1 s intervals).
        let integral: f64 = power.values().iter().sum();
        assert!(
            (outcome.total_energy_j - integral).abs() < 1e-9 * integral.max(1.0),
            "total energy {} must integrate the power trace {integral}",
            outcome.total_energy_j
        );
        assert!(
            (outcome.mean_power_w - integral / outcome.intervals as f64).abs() < 1e-9,
            "mean power must be energy over simulated time"
        );
        // Raytrace finishes well within 80 s, so energy-per-job is defined.
        assert_eq!(
            outcome.energy_per_completed_job_j, outcome.total_energy_j,
            "one finished job means energy-per-job equals the total"
        );
    }

    #[test]
    fn precise_and_pliant_energy_differ_through_core_activity() {
        // Pliant reclaims cores and approximates jobs (less work, earlier finish), so
        // under common random numbers its energy must not exceed the precise run's by
        // more than noise — and the jobs-finish-early effect typically makes it lower.
        let build = |policy: PolicyKind| {
            Scenario::builder(ServiceId::Memcached)
                .app(AppId::Canneal)
                .policy(policy)
                .horizon_intervals(60)
                .stop_when_apps_finish(false)
                .seed(29)
                .build()
        };
        let engine = Engine::new();
        let precise = engine.run_scenario(&build(PolicyKind::Precise));
        let pliant = engine.run_scenario(&build(PolicyKind::Pliant));
        assert!(precise.total_energy_j > 0.0 && pliant.total_energy_j > 0.0);
        assert!(
            pliant.total_energy_j < precise.total_energy_j,
            "approximated jobs finish earlier, so the Pliant node idles sooner \
             ({} vs {} J)",
            pliant.total_energy_j,
            precise.total_energy_j
        );
    }

    #[test]
    fn independent_mode_changes_cell_randomness() {
        let crn = small_suite();
        let ind = small_suite().seed_mode(SeedMode::Independent);
        let crn_cells = crn.scenarios();
        let ind_cells = ind.scenarios();
        assert_eq!(crn_cells.len(), ind_cells.len());
        assert!(crn_cells
            .iter()
            .zip(&ind_cells)
            .any(|(a, b)| a.seed != b.seed));
    }
}
