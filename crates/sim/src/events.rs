//! Request-level discrete-event queue simulator.
//!
//! The analytic model in [`crate::queueing`] is fast enough to sweep hundreds of
//! co-location scenarios, but it is an approximation. This module provides a G/G/k queue
//! simulator that processes individual requests (Poisson arrivals, lognormal service
//! times, `k` parallel workers, FIFO queueing) and reports the empirical latency
//! distribution. Tests use it to validate the analytic model's shape; it is also exposed
//! for finer-grained experiments and the `colocation` Criterion bench.

use std::collections::BinaryHeap;

use pliant_telemetry::histogram::LatencyHistogram;
use pliant_telemetry::rng::{sample_lognormal, seeded_rng};
use pliant_workloads::generator::OpenLoopGenerator;
use pliant_workloads::service::ServiceProfile;

/// Configuration of a discrete-event run.
#[derive(Debug, Clone, Copy)]
pub struct EventSimConfig {
    /// Offered load in queries per second.
    pub qps: f64,
    /// Number of parallel workers (cores).
    pub workers: u32,
    /// Capacity slowdown from interference (multiplies service times).
    pub capacity_slowdown: f64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Result of a discrete-event run.
#[derive(Debug, Clone)]
pub struct EventSimResult {
    /// Histogram of end-to-end request latencies in seconds.
    pub latencies: LatencyHistogram,
    /// Number of requests completed.
    pub completed: u64,
    /// Number of requests still queued or in service when the run ended.
    pub in_flight_at_end: u64,
}

impl EventSimResult {
    /// Empirical 99th-percentile latency in seconds.
    pub fn p99(&self) -> f64 {
        self.latencies.p99()
    }
}

/// Runs the G/G/k discrete-event simulation for one service model.
///
/// Requests arrive according to a Poisson process at `config.qps`; each requires a
/// lognormal service time derived from the service profile, inflated by the capacity
/// slowdown; `config.workers` workers serve the FIFO queue.
pub fn simulate(service: &ServiceProfile, config: &EventSimConfig) -> EventSimResult {
    let mut rng = seeded_rng(config.seed);
    let mut generator = OpenLoopGenerator::new(config.qps, config.seed.wrapping_add(1));
    let arrivals = generator.arrival_times_in(config.duration_s);

    // Min-heap of worker-free times (stored negated inside a max-heap).
    let mut workers: BinaryHeap<std::cmp::Reverse<u64>> = (0..config.workers)
        .map(|_| std::cmp::Reverse(0u64))
        .collect();
    // Times are quantized to nanoseconds for the heap ordering.
    let to_ns = |t: f64| (t * 1e9) as u64;
    let from_ns = |t: u64| t as f64 / 1e9;

    let mut latencies = LatencyHistogram::new();
    let mut completed = 0u64;
    let mut in_flight_at_end = 0u64;

    // The per-request service time uses the profile's median service time scaled so that
    // `workers`× per-core rate matches the profile's saturation throughput; this keeps the
    // DES consistent with the analytic model's notion of capacity.
    let mean_service_s = config.capacity_slowdown / service.per_core_rate();
    let sigma = service.service_time_sigma.max(0.05);
    // Median of a lognormal with the desired mean: mean = median * exp(sigma^2 / 2).
    let median_service_s = mean_service_s / (sigma * sigma / 2.0).exp();

    for &arrival in &arrivals {
        // pliant-lint: allow(panic-hygiene): the heap is seeded with `cores >= 1`
        // entries and every pop is paired with a push below, so it is never empty.
        let std::cmp::Reverse(free_at) = workers.pop().expect("at least one worker");
        let start = from_ns(free_at).max(arrival);
        let service_time = sample_lognormal(&mut rng, median_service_s, sigma);
        let finish = start + service_time;
        if finish <= config.duration_s {
            latencies.record(finish - arrival);
            completed += 1;
        } else {
            in_flight_at_end += 1;
        }
        workers.push(std::cmp::Reverse(to_ns(finish)));
    }

    EventSimResult {
        latencies,
        completed,
        in_flight_at_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_workloads::service::ServiceId;

    fn config(qps: f64, workers: u32, slowdown: f64, seed: u64) -> EventSimConfig {
        EventSimConfig {
            qps,
            workers,
            capacity_slowdown: slowdown,
            duration_s: 2.0,
            seed,
        }
    }

    #[test]
    fn low_load_latency_is_near_service_time() {
        let svc = ServiceProfile::paper_default(ServiceId::MongoDb);
        let result = simulate(&svc, &config(svc.qps_at_load(0.2), 8, 1.0, 1));
        assert!(result.completed > 50);
        // At 20% load queueing should be negligible: p99 within a few times the mean
        // service time.
        let mean_service = 1.0 / svc.per_core_rate();
        assert!(result.p99() < mean_service * 4.0);
    }

    #[test]
    fn latency_grows_with_load() {
        let svc = ServiceProfile::paper_default(ServiceId::MongoDb);
        let low = simulate(&svc, &config(svc.qps_at_load(0.3), 8, 1.0, 2)).p99();
        let high = simulate(&svc, &config(svc.qps_at_load(0.95), 8, 1.0, 2)).p99();
        assert!(
            high > low,
            "p99 at 95% load ({high}) must exceed p99 at 30% ({low})"
        );
    }

    #[test]
    fn overload_queues_requests() {
        let svc = ServiceProfile::paper_default(ServiceId::MongoDb);
        let result = simulate(&svc, &config(svc.qps_at_load(1.3), 8, 1.0, 3));
        assert!(result.in_flight_at_end > 0, "overload must leave a backlog");
    }

    #[test]
    fn slowdown_increases_latency_like_the_analytic_model() {
        let svc = ServiceProfile::paper_default(ServiceId::MongoDb);
        let clean = simulate(&svc, &config(svc.qps_at_load(0.75), 8, 1.0, 4)).p99();
        let contended = simulate(&svc, &config(svc.qps_at_load(0.75), 8, 1.4, 4)).p99();
        assert!(contended > clean);
    }

    #[test]
    fn more_workers_reduce_latency_under_contention() {
        let svc = ServiceProfile::paper_default(ServiceId::MongoDb);
        let eight = simulate(&svc, &config(svc.qps_at_load(0.85), 8, 1.3, 5)).p99();
        let eleven = simulate(&svc, &config(svc.qps_at_load(0.85), 11, 1.3, 5)).p99();
        assert!(eleven < eight);
    }

    #[test]
    fn deterministic_in_seed() {
        let svc = ServiceProfile::paper_default(ServiceId::MongoDb);
        let a = simulate(&svc, &config(svc.qps_at_load(0.5), 8, 1.0, 9));
        let b = simulate(&svc, &config(svc.qps_at_load(0.5), 8, 1.0, 9));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99(), b.p99());
    }
}
