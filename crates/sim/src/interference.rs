//! Shared-resource interference model.
//!
//! Co-located applications contend in the last-level cache, memory bandwidth, and (to a
//! lesser degree, because containers are pinned to disjoint physical cores) the uncore and
//! SMT resources. The model converts the co-runners' [`ResourcePressure`] into two
//! multipliers for the interactive service — one that derates its request-processing
//! capacity and one that directly inflates per-request latency — plus a slowdown factor for
//! the batch applications themselves.
//!
//! The functional forms are deliberately simple (occupancy-ratio power laws and a
//! bandwidth-saturation hinge); the constants are calibrated so the co-location outcomes
//! reproduce the paper's qualitative results (see the crate-level tests and DESIGN.md).

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::ResourcePressure;
use pliant_workloads::service::ServiceProfile;

use crate::server::ServerSpec;

/// Tunable constants of the interference model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InterferenceModel {
    /// Coefficient of the LLC-occupancy penalty.
    pub llc_coeff: f64,
    /// Exponent of the LLC-occupancy penalty (values > 1 make small footprints cheap).
    pub llc_exponent: f64,
    /// Coefficient of the core/SMT/uncore contention penalty.
    pub cpu_coeff: f64,
    /// Memory-bandwidth utilization above which the bandwidth penalty starts.
    pub membw_threshold: f64,
    /// Coefficient of the memory-bandwidth penalty past the threshold.
    pub membw_coeff: f64,
    /// Exponent applied to the capacity slowdown to obtain the direct (per-request) latency
    /// inflation; interactive services queue more than they slow down, so this is < 1.
    pub direct_exponent: f64,
    /// Sensitivity of batch applications to the total footprint of their co-runners.
    pub batch_sensitivity: f64,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        Self {
            llc_coeff: 1.3,
            llc_exponent: 1.5,
            cpu_coeff: 0.045,
            membw_threshold: 0.5,
            membw_coeff: 0.6,
            direct_exponent: 0.3,
            batch_sensitivity: 0.15,
        }
    }
}

// Hand-written so the constants validate at the deserialization boundary: the bandwidth
// hinge divides by `1 - membw_threshold` (a threshold at or above 1.0 is a guaranteed
// divide-by-zero or sign flip), and negative coefficients yield sub-1.0 "slowdowns"
// that would let contention *speed services up*.
impl serde::Deserialize for InterferenceModel {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn field(value: &serde::Value, name: &str) -> Result<f64, serde::Error> {
            f64::from_value(
                value
                    .get(name)
                    .ok_or_else(|| serde::Error::missing_field("InterferenceModel", name))?,
            )
        }
        let model = Self {
            llc_coeff: field(value, "llc_coeff")?,
            llc_exponent: field(value, "llc_exponent")?,
            cpu_coeff: field(value, "cpu_coeff")?,
            membw_threshold: field(value, "membw_threshold")?,
            membw_coeff: field(value, "membw_coeff")?,
            direct_exponent: field(value, "direct_exponent")?,
            batch_sensitivity: field(value, "batch_sensitivity")?,
        };
        model
            .validate()
            .map_err(|e| serde::Error::custom(format!("invalid interference model: {e}")))?;
        Ok(model)
    }
}

/// Why an [`InterferenceModel`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterferenceModelError {
    /// A coefficient is negative or not finite (a negative coefficient produces
    /// slowdowns below 1.0, i.e. contention that speeds the service up).
    InvalidCoefficient(&'static str),
    /// The LLC exponent is non-positive or not finite.
    InvalidLlcExponent,
    /// The bandwidth-saturation threshold is outside `[0, 1)` — the hinge normalizes
    /// by `1 - membw_threshold`, so a threshold at or above 1.0 divides by zero (or
    /// flips the penalty's sign).
    InvalidMembwThreshold,
    /// The direct-latency exponent is outside `[0, 1]` (interactive services queue
    /// more than they slow down, so the direct inflation must not exceed the capacity
    /// slowdown).
    InvalidDirectExponent,
}

impl std::fmt::Display for InterferenceModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterferenceModelError::InvalidCoefficient(name) => {
                write!(f, "`{name}` must be finite and non-negative")
            }
            InterferenceModelError::InvalidLlcExponent => {
                f.write_str("`llc_exponent` must be positive and finite")
            }
            InterferenceModelError::InvalidMembwThreshold => {
                f.write_str("`membw_threshold` must lie in [0, 1)")
            }
            InterferenceModelError::InvalidDirectExponent => {
                f.write_str("`direct_exponent` must lie in [0, 1]")
            }
        }
    }
}

impl std::error::Error for InterferenceModelError {}

/// Contention outcome for one decision interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionOutcome {
    /// Multiplier (>= 1) on the interactive service's per-request work; derates capacity.
    pub service_capacity_slowdown: f64,
    /// Multiplier (>= 1) applied directly to the service's base latency.
    pub service_direct_slowdown: f64,
    /// Multiplier (>= 1) on each batch application's execution time.
    pub batch_slowdown: f64,
    /// Total LLC occupancy of the co-runners in MiB (diagnostic).
    pub corunner_llc_mb: f64,
    /// Total memory-bandwidth utilization of the node in `[0, ..]` (diagnostic).
    pub membw_utilization: f64,
}

impl InterferenceModel {
    /// Checks the model's invariants (see [`InterferenceModelError`]). Construction
    /// from serde runs this automatically; hand-built models are re-checked at the
    /// simulator boundary ([`ColocationSim::new`](crate::colocation::ColocationSim::new)).
    pub fn validate(&self) -> Result<(), InterferenceModelError> {
        for (name, value) in [
            ("llc_coeff", self.llc_coeff),
            ("cpu_coeff", self.cpu_coeff),
            ("membw_coeff", self.membw_coeff),
            ("batch_sensitivity", self.batch_sensitivity),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(InterferenceModelError::InvalidCoefficient(name));
            }
        }
        if !(self.llc_exponent > 0.0 && self.llc_exponent.is_finite()) {
            return Err(InterferenceModelError::InvalidLlcExponent);
        }
        if !(self.membw_threshold >= 0.0 && self.membw_threshold < 1.0) {
            return Err(InterferenceModelError::InvalidMembwThreshold);
        }
        if !(self.direct_exponent >= 0.0 && self.direct_exponent <= 1.0) {
            return Err(InterferenceModelError::InvalidDirectExponent);
        }
        Ok(())
    }

    /// Computes the contention outcome for an interactive service co-located with batch
    /// applications exerting the given pressures.
    pub fn contention(
        &self,
        server: &ServerSpec,
        service: &ServiceProfile,
        corunners: &[ResourcePressure],
    ) -> ContentionOutcome {
        let corunner_llc_mb: f64 = corunners.iter().map(|p| p.llc_mb).sum();
        let corunner_membw: f64 = corunners.iter().map(|p| p.membw_gbps).sum();
        let corunner_cpu: f64 = corunners
            .iter()
            .map(|p| p.cpu_intensity)
            .fold(0.0f64, f64::max);

        // LLC: the co-runners evict the service's lines in proportion to the share of the
        // cache they occupy; a super-linear exponent captures the fact that small
        // footprints mostly fit alongside the service while large ones thrash it.
        let llc_ratio = (corunner_llc_mb / server.llc_mb).clamp(0.0, 1.5);
        let llc_penalty =
            service.llc_sensitivity * self.llc_coeff * llc_ratio.powf(self.llc_exponent);

        // Memory bandwidth: penalty only once the node approaches saturation.
        let total_membw = corunner_membw + service.membw_gbps;
        let membw_utilization = total_membw / server.membw_gbps;
        let membw_over = ((membw_utilization - self.membw_threshold)
            / (1.0 - self.membw_threshold))
            .clamp(0.0, 2.0);
        let membw_penalty = service.membw_sensitivity * self.membw_coeff * membw_over;

        // Core-adjacent contention (SMT siblings, uncore, power budget): small, and driven
        // by the most CPU-intensive co-runner since containers are pinned to disjoint
        // physical cores.
        let cpu_penalty = service.cpu_sensitivity * self.cpu_coeff * corunner_cpu;

        // The I/O-bound fraction of each request is insensitive to these penalties.
        let compute_fraction = 1.0 - service.io_fraction;
        let total_penalty = compute_fraction * (llc_penalty + membw_penalty + cpu_penalty);
        let service_capacity_slowdown = 1.0 + total_penalty;
        let service_direct_slowdown = service_capacity_slowdown.powf(self.direct_exponent);

        // Batch applications also suffer from the service's footprint and from each other.
        let batch_corunner_llc = corunner_llc_mb + service.llc_footprint_mb;
        let batch_slowdown = 1.0
            + self.batch_sensitivity * (batch_corunner_llc / server.llc_mb).clamp(0.0, 1.5)
            + self.batch_sensitivity * 0.5 * membw_over;

        ContentionOutcome {
            service_capacity_slowdown,
            service_direct_slowdown,
            batch_slowdown,
            corunner_llc_mb,
            membw_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_workloads::service::ServiceId;

    fn server() -> ServerSpec {
        ServerSpec::paper_platform()
    }

    #[test]
    fn no_corunners_means_no_slowdown() {
        let m = InterferenceModel::default();
        let svc = ServiceProfile::paper_default(ServiceId::Memcached);
        let out = m.contention(&server(), &svc, &[]);
        assert!((out.service_capacity_slowdown - 1.0).abs() < 1e-9);
        assert!((out.service_direct_slowdown - 1.0).abs() < 1e-9);
        assert_eq!(out.corunner_llc_mb, 0.0);
    }

    #[test]
    fn larger_footprint_hurts_more() {
        let m = InterferenceModel::default();
        let svc = ServiceProfile::paper_default(ServiceId::Memcached);
        let small = m.contention(&server(), &svc, &[ResourcePressure::new(0.9, 8.0, 5.0)]);
        let large = m.contention(&server(), &svc, &[ResourcePressure::new(0.9, 30.0, 16.0)]);
        assert!(large.service_capacity_slowdown > small.service_capacity_slowdown);
        assert!(large.batch_slowdown >= small.batch_slowdown);
    }

    #[test]
    fn memcached_suffers_more_than_mongodb_from_same_corunner() {
        let m = InterferenceModel::default();
        let canneal_like = ResourcePressure::new(0.9, 30.0, 16.0);
        let mc = m.contention(
            &server(),
            &ServiceProfile::paper_default(ServiceId::Memcached),
            &[canneal_like],
        );
        let mongo = m.contention(
            &server(),
            &ServiceProfile::paper_default(ServiceId::MongoDb),
            &[canneal_like],
        );
        assert!(mc.service_capacity_slowdown > mongo.service_capacity_slowdown);
    }

    #[test]
    fn pressures_add_across_corunners() {
        let m = InterferenceModel::default();
        let svc = ServiceProfile::paper_default(ServiceId::Nginx);
        let one = m.contention(&server(), &svc, &[ResourcePressure::new(0.9, 18.0, 12.0)]);
        let two = m.contention(
            &server(),
            &svc,
            &[
                ResourcePressure::new(0.9, 18.0, 12.0),
                ResourcePressure::new(0.85, 18.0, 14.0),
            ],
        );
        assert!(two.service_capacity_slowdown > one.service_capacity_slowdown);
        assert!(two.membw_utilization > one.membw_utilization);
    }

    #[test]
    fn direct_slowdown_is_gentler_than_capacity_slowdown() {
        let m = InterferenceModel::default();
        let svc = ServiceProfile::paper_default(ServiceId::Memcached);
        let out = m.contention(&server(), &svc, &[ResourcePressure::new(0.9, 30.0, 20.0)]);
        assert!(out.service_capacity_slowdown > 1.0);
        assert!(out.service_direct_slowdown > 1.0);
        assert!(out.service_direct_slowdown < out.service_capacity_slowdown);
    }

    #[test]
    fn validation_rejects_divide_by_zero_thresholds_and_negative_coefficients() {
        assert!(InterferenceModel::default().validate().is_ok());
        let broken = |m: InterferenceModel| m.validate().unwrap_err();
        assert_eq!(
            broken(InterferenceModel {
                membw_threshold: 1.0,
                ..InterferenceModel::default()
            }),
            InterferenceModelError::InvalidMembwThreshold,
            "membw_threshold == 1.0 makes the bandwidth hinge divide by zero"
        );
        assert_eq!(
            broken(InterferenceModel {
                membw_threshold: 1.3,
                ..InterferenceModel::default()
            }),
            InterferenceModelError::InvalidMembwThreshold
        );
        assert_eq!(
            broken(InterferenceModel {
                llc_coeff: -0.5,
                ..InterferenceModel::default()
            }),
            InterferenceModelError::InvalidCoefficient("llc_coeff")
        );
        assert_eq!(
            broken(InterferenceModel {
                batch_sensitivity: f64::NAN,
                ..InterferenceModel::default()
            }),
            InterferenceModelError::InvalidCoefficient("batch_sensitivity")
        );
        assert_eq!(
            broken(InterferenceModel {
                llc_exponent: 0.0,
                ..InterferenceModel::default()
            }),
            InterferenceModelError::InvalidLlcExponent
        );
        assert_eq!(
            broken(InterferenceModel {
                direct_exponent: 1.5,
                ..InterferenceModel::default()
            }),
            InterferenceModelError::InvalidDirectExponent
        );
    }

    #[test]
    fn deserialization_rejects_invalid_constants() {
        let json = serde_json::to_string(&InterferenceModel::default()).expect("serializable");
        let back: InterferenceModel = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, InterferenceModel::default());
        // A corrupted archive with a saturated threshold must fail to deserialize
        // instead of dividing by zero on first use.
        let corrupted = json.replace("\"membw_threshold\":0.5", "\"membw_threshold\":1.0");
        assert_ne!(corrupted, json);
        let err = serde_json::from_str::<InterferenceModel>(&corrupted).unwrap_err();
        assert!(err.to_string().contains("interference model"), "{err}");
        let negative = json.replace("\"membw_coeff\":0.6", "\"membw_coeff\":-0.6");
        assert_ne!(negative, json);
        assert!(serde_json::from_str::<InterferenceModel>(&negative).is_err());
    }

    #[test]
    fn bandwidth_penalty_only_past_threshold() {
        let m = InterferenceModel::default();
        let svc = ServiceProfile::paper_default(ServiceId::Nginx);
        // Low-bandwidth co-runner: below the 50% threshold nothing should change when the
        // bandwidth demand increases slightly.
        let a = m.contention(&server(), &svc, &[ResourcePressure::new(0.5, 1.0, 2.0)]);
        let b = m.contention(&server(), &svc, &[ResourcePressure::new(0.5, 1.0, 10.0)]);
        assert!((a.service_capacity_slowdown - b.service_capacity_slowdown).abs() < 1e-9);
        // A bandwidth hog past the threshold does add a penalty.
        let c = m.contention(&server(), &svc, &[ResourcePressure::new(0.5, 1.0, 40.0)]);
        assert!(c.service_capacity_slowdown > b.service_capacity_slowdown);
    }
}
