//! Server, interference, and queueing simulation substrate for the Pliant reproduction.
//!
//! The paper evaluates Pliant on a dual-socket Xeon E5-2699 v4 server where an interactive
//! service and one or more approximate batch applications share one socket's cores, LLC,
//! memory bandwidth, and NIC. This crate replaces that hardware with a calibrated model:
//!
//! * [`server`] — the platform specification (Table 1) and core-allocation accounting.
//! * [`interference`] — how co-runners' shared-resource pressure inflates the interactive
//!   service's request processing and derates its capacity.
//! * [`queueing`] — the analytic open-loop tail-latency model (utilization-based latency
//!   inflation with lognormal service-time noise) used by the fast co-location simulator.
//! * [`events`] — a request-level discrete-event G/G/k queue simulator used to validate
//!   the analytic model's shape and available for finer-grained studies.
//! * [`batch`] — execution-progress and output-quality accounting for approximate
//!   applications (variant switches, core changes, instrumentation overhead).
//! * [`colocation`] — the co-location engine tying everything together; the Pliant runtime
//!   (in `pliant-core`) drives it one decision interval at a time.
//!
//! # Example
//!
//! ```
//! use pliant_approx::catalog::{AppId, Catalog};
//! use pliant_sim::colocation::{ColocationConfig, ColocationSim};
//! use pliant_workloads::service::ServiceId;
//!
//! let config = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::Canneal], 42);
//! let mut sim = ColocationSim::new(config, &Catalog::default());
//! let obs = sim.advance(1.0);
//! assert!(obs.p99_latency_s > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod colocation;
pub mod events;
pub mod interference;
pub mod queueing;
pub mod server;

pub use batch::BatchAppState;
pub use colocation::{ColocationConfig, ColocationSim, IntervalObservation};
pub use interference::InterferenceModel;
pub use queueing::LatencyModel;
pub use server::ServerSpec;
