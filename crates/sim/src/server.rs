//! Platform specification (the paper's Table 1) and core-allocation accounting.

use serde::{Deserialize, Serialize};

/// Hardware platform model.
///
/// The defaults reproduce Table 1 of the paper: a dual-socket Intel Xeon E5-2699 v4 with
/// 22 physical cores per socket, 55 MB of last-level cache per socket, and DDR4-2400
/// memory. As in the paper's methodology (§5), only one socket is used for the co-located
/// applications, 6 of its physical cores are dedicated to network-interrupt handling, and
/// the remaining cores are shared by the interactive service and the approximate
/// applications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// CPU model string (informational, used by the Table 1 harness binary).
    pub cpu_model: String,
    /// Operating system string (informational).
    pub os: String,
    /// Number of CPU sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// Base clock frequency in GHz.
    pub base_freq_ghz: f64,
    /// Maximum turbo frequency in GHz.
    pub max_turbo_ghz: f64,
    /// L1 instruction/data cache size in KB (per core).
    pub l1_kb: u32,
    /// L2 cache size in KB (per core).
    pub l2_kb: u32,
    /// Last-level cache per socket in MiB.
    pub llc_mb: f64,
    /// LLC associativity (ways).
    pub llc_ways: u32,
    /// Total memory in GiB.
    pub memory_gib: u32,
    /// Memory frequency in MHz.
    pub memory_mhz: u32,
    /// Usable memory bandwidth per socket in GiB/s.
    pub membw_gbps: f64,
    /// Disk description (informational).
    pub disk: String,
    /// Network bandwidth in Gbps.
    pub network_gbps: u32,
    /// Physical cores per socket reserved for network-interrupt handling (soft IRQ).
    pub irq_cores: u32,
}

impl Default for ServerSpec {
    fn default() -> Self {
        Self::paper_platform()
    }
}

impl ServerSpec {
    /// The platform of Table 1.
    pub fn paper_platform() -> Self {
        Self {
            cpu_model: "Intel Xeon E5-2699 v4".to_string(),
            os: "Ubuntu 16.04 (kernel 4.14)".to_string(),
            sockets: 2,
            cores_per_socket: 22,
            threads_per_core: 2,
            base_freq_ghz: 2.2,
            max_turbo_ghz: 3.6,
            l1_kb: 32,
            l2_kb: 256,
            llc_mb: 55.0,
            llc_ways: 20,
            memory_gib: 128,
            memory_mhz: 2400,
            membw_gbps: 60.0,
            disk: "1TB, 7200RPM HDD".to_string(),
            network_gbps: 10,
            irq_cores: 6,
        }
    }

    /// Physical cores on the experiment socket available to the co-located applications
    /// (cores per socket minus the IRQ reservation).
    pub fn usable_cores(&self) -> u32 {
        self.cores_per_socket.saturating_sub(self.irq_cores)
    }

    /// Fair initial split of the usable cores between the interactive service and `n_apps`
    /// approximate applications: the service keeps half the usable cores (its fair share
    /// for the single-app case the saturation throughput was calibrated at), and the batch
    /// applications divide the other half evenly.
    ///
    /// Returns `(service_cores, per_app_cores)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_apps` is zero.
    pub fn fair_allocation(&self, n_apps: u32) -> (u32, Vec<u32>) {
        assert!(
            n_apps > 0,
            "at least one approximate application is required"
        );
        let usable = self.usable_cores();
        let service = usable / 2;
        let batch_pool = usable - service;
        let base = batch_pool / n_apps;
        let extra = batch_pool % n_apps;
        let per_app = (0..n_apps).map(|i| base + u32::from(i < extra)).collect();
        (service, per_app)
    }

    /// Renders the specification as `(field, value)` rows matching Table 1.
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        vec![
            ("Model".to_string(), self.cpu_model.clone()),
            ("OS".to_string(), self.os.clone()),
            ("Sockets".to_string(), self.sockets.to_string()),
            (
                "Cores/Socket".to_string(),
                self.cores_per_socket.to_string(),
            ),
            (
                "Threads/Core".to_string(),
                self.threads_per_core.to_string(),
            ),
            (
                "Base/Max Turbo Frequency".to_string(),
                format!("{}GHz / {}GHz", self.base_freq_ghz, self.max_turbo_ghz),
            ),
            (
                "L1 Inst/Data Cache".to_string(),
                format!("{} / {} KB", self.l1_kb, self.l1_kb),
            ),
            ("L2 Cache".to_string(), format!("{}KB", self.l2_kb)),
            (
                "L3 (Last-Level) Cache".to_string(),
                format!("{} MB, {} ways", self.llc_mb, self.llc_ways),
            ),
            (
                "Memory".to_string(),
                format!("{}GB total, {}MHz DDR4", self.memory_gib, self.memory_mhz),
            ),
            ("Disk".to_string(), self.disk.clone()),
            (
                "Network Bandwidth".to_string(),
                format!("{}Gbps", self.network_gbps),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_matches_table1() {
        let s = ServerSpec::paper_platform();
        assert_eq!(s.sockets, 2);
        assert_eq!(s.cores_per_socket, 22);
        assert_eq!(s.threads_per_core, 2);
        assert_eq!(s.llc_mb, 55.0);
        assert_eq!(s.llc_ways, 20);
        assert_eq!(s.memory_gib, 128);
        assert_eq!(s.memory_mhz, 2400);
        assert_eq!(s.network_gbps, 10);
        assert_eq!(s.base_freq_ghz, 2.2);
    }

    #[test]
    fn usable_cores_excludes_irq_reservation() {
        let s = ServerSpec::paper_platform();
        assert_eq!(s.usable_cores(), 16);
    }

    #[test]
    fn fair_allocation_single_app() {
        let s = ServerSpec::paper_platform();
        let (service, apps) = s.fair_allocation(1);
        assert_eq!(service, 8);
        assert_eq!(apps, vec![8]);
    }

    #[test]
    fn fair_allocation_multi_app_splits_batch_pool() {
        let s = ServerSpec::paper_platform();
        let (service, apps) = s.fair_allocation(3);
        assert_eq!(service, 8);
        assert_eq!(apps.iter().sum::<u32>(), 8);
        assert_eq!(apps.len(), 3);
        assert!(apps.iter().all(|&c| c >= 2));
    }

    #[test]
    #[should_panic]
    fn fair_allocation_requires_at_least_one_app() {
        ServerSpec::paper_platform().fair_allocation(0);
    }

    #[test]
    fn table1_rows_cover_every_field() {
        let rows = ServerSpec::paper_platform().table1_rows();
        assert_eq!(rows.len(), 12);
        assert!(rows
            .iter()
            .any(|(k, v)| k == "Model" && v.contains("E5-2699")));
        assert!(rows
            .iter()
            .any(|(k, v)| k.contains("L3") && v.contains("55")));
    }
}
