//! Platform specification (the paper's Table 1), core-allocation accounting, and the
//! node power model.

use serde::{Deserialize, Serialize};

/// Node power model: idle platform draw plus per-core static and utilization-weighted
/// dynamic draw, with polynomial frequency scaling and a deep-sleep ("parked") state.
///
/// The average electrical power a node draws over a decision interval is
///
/// ```text
/// P = idle_w + (f / reference_freq_ghz)^freq_exponent
///             × (allocated × core_idle_w  +  busy × core_active_w)
/// ```
///
/// where `allocated` is the number of powered (allocated) cores, `busy` is the
/// utilization-weighted number of busy core-equivalents (a core at 60% utilization
/// contributes 0.6), and `f` is the operating frequency in GHz. A node that has been
/// drained and suspended by a fleet autoscaler draws [`PowerModel::parked_w`] instead —
/// the S3/suspend draw of the whole machine, not a per-core quantity.
///
/// The paper-platform default is calibrated for the dual-socket Xeon E5-2699 v4 of
/// Table 1 (145 W TDP per 22-core socket): the experiment socket plus its share of the
/// platform (DRAM, fans, PSU losses) idles near 100 W and peaks near 170 W with the
/// 16 usable cores busy.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PowerModel {
    /// Platform idle draw in watts (uncore, DRAM, fans, PSU losses) — billed whenever
    /// the node is powered on, regardless of allocation.
    pub idle_w: f64,
    /// Static draw per allocated core in watts (leakage + clock tree at idle).
    pub core_idle_w: f64,
    /// Additional dynamic draw per fully-busy core in watts, at the reference
    /// frequency; scaled by per-core utilization.
    pub core_active_w: f64,
    /// Frequency the per-core draws are calibrated at, in GHz.
    pub reference_freq_ghz: f64,
    /// Exponent of the polynomial frequency scaling applied to the per-core draws
    /// (dynamic power grows superlinearly with frequency: `P ∝ f·V² ≈ f^2..3`).
    pub freq_exponent: f64,
    /// Whole-node draw while suspended (drained by an autoscaler and parked), in watts.
    pub parked_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::paper_platform()
    }
}

// Hand-written so the model validates at the deserialization boundary: a corrupted or
// hand-edited archive (negative watts, zero reference frequency) is rejected with a
// clear message instead of producing NaN/negative energies deep inside a run.
impl serde::Deserialize for PowerModel {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn field(value: &serde::Value, name: &str) -> Result<f64, serde::Error> {
            f64::from_value(
                value
                    .get(name)
                    .ok_or_else(|| serde::Error::missing_field("PowerModel", name))?,
            )
        }
        let model = Self {
            idle_w: field(value, "idle_w")?,
            core_idle_w: field(value, "core_idle_w")?,
            core_active_w: field(value, "core_active_w")?,
            reference_freq_ghz: field(value, "reference_freq_ghz")?,
            freq_exponent: field(value, "freq_exponent")?,
            parked_w: field(value, "parked_w")?,
        };
        model
            .validate()
            .map_err(|e| serde::Error::custom(format!("invalid power model: {e}")))?;
        Ok(model)
    }
}

impl PowerModel {
    /// Power constants calibrated for the platform of Table 1; see the type docs.
    pub fn paper_platform() -> Self {
        Self {
            idle_w: 96.0,
            core_idle_w: 1.4,
            core_active_w: 4.6,
            reference_freq_ghz: 2.2,
            freq_exponent: 2.4,
            parked_w: 9.0,
        }
    }

    /// Checks the model's invariants: every draw is finite and non-negative, the
    /// reference frequency is positive, and the frequency exponent is finite and
    /// non-negative. Construction from serde runs this automatically; hand-built
    /// models are re-checked at the simulator boundary.
    pub fn validate(&self) -> Result<(), PowerModelError> {
        for (name, value) in [
            ("idle_w", self.idle_w),
            ("core_idle_w", self.core_idle_w),
            ("core_active_w", self.core_active_w),
            ("parked_w", self.parked_w),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(PowerModelError::InvalidDraw(name));
            }
        }
        if !(self.reference_freq_ghz > 0.0 && self.reference_freq_ghz.is_finite()) {
            return Err(PowerModelError::InvalidReferenceFrequency);
        }
        if !(self.freq_exponent >= 0.0 && self.freq_exponent.is_finite()) {
            return Err(PowerModelError::InvalidFrequencyExponent);
        }
        Ok(())
    }

    /// Average power in watts for a powered-on node with `allocated_cores` allocated
    /// cores of which `busy_core_equivalents` (utilization-weighted) are busy, running
    /// at `freq_ghz`. Pure arithmetic — safe for the per-interval hot path.
    pub fn power_w(&self, allocated_cores: u32, busy_core_equivalents: f64, freq_ghz: f64) -> f64 {
        let freq_scale = (freq_ghz / self.reference_freq_ghz).powf(self.freq_exponent);
        self.idle_w
            + freq_scale
                * (allocated_cores as f64 * self.core_idle_w
                    + busy_core_equivalents.max(0.0) * self.core_active_w)
    }

    /// Power of an idle (zero-utilization) node with `allocated_cores` allocated cores
    /// at `freq_ghz` — what a drained-but-not-yet-parked node bills once its batch
    /// jobs have finished.
    pub fn idle_node_power_w(&self, allocated_cores: u32, freq_ghz: f64) -> f64 {
        self.power_w(allocated_cores, 0.0, freq_ghz)
    }
}

/// Why a [`PowerModel`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerModelError {
    /// A power draw is negative or not finite.
    InvalidDraw(&'static str),
    /// The reference frequency is zero, negative, or not finite.
    InvalidReferenceFrequency,
    /// The frequency exponent is negative or not finite.
    InvalidFrequencyExponent,
}

impl std::fmt::Display for PowerModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerModelError::InvalidDraw(field) => {
                write!(f, "`{field}` must be a finite, non-negative wattage")
            }
            PowerModelError::InvalidReferenceFrequency => {
                f.write_str("`reference_freq_ghz` must be positive and finite")
            }
            PowerModelError::InvalidFrequencyExponent => {
                f.write_str("`freq_exponent` must be non-negative and finite")
            }
        }
    }
}

impl std::error::Error for PowerModelError {}

/// Hardware platform model.
///
/// The defaults reproduce Table 1 of the paper: a dual-socket Intel Xeon E5-2699 v4 with
/// 22 physical cores per socket, 55 MB of last-level cache per socket, and DDR4-2400
/// memory. As in the paper's methodology (§5), only one socket is used for the co-located
/// applications, 6 of its physical cores are dedicated to network-interrupt handling, and
/// the remaining cores are shared by the interactive service and the approximate
/// applications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// CPU model string (informational, used by the Table 1 harness binary).
    pub cpu_model: String,
    /// Operating system string (informational).
    pub os: String,
    /// Number of CPU sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// Base clock frequency in GHz.
    pub base_freq_ghz: f64,
    /// Maximum turbo frequency in GHz.
    pub max_turbo_ghz: f64,
    /// L1 instruction/data cache size in KB (per core).
    pub l1_kb: u32,
    /// L2 cache size in KB (per core).
    pub l2_kb: u32,
    /// Last-level cache per socket in MiB.
    pub llc_mb: f64,
    /// LLC associativity (ways).
    pub llc_ways: u32,
    /// Total memory in GiB.
    pub memory_gib: u32,
    /// Memory frequency in MHz.
    pub memory_mhz: u32,
    /// Usable memory bandwidth per socket in GiB/s.
    pub membw_gbps: f64,
    /// Disk description (informational).
    pub disk: String,
    /// Network bandwidth in Gbps.
    pub network_gbps: u32,
    /// Physical cores per socket reserved for network-interrupt handling (soft IRQ).
    pub irq_cores: u32,
    /// Electrical power model of the node. Absent in archives recorded before energy
    /// accounting existed; deserializes as the paper-platform default.
    #[serde(default)]
    pub power: PowerModel,
}

impl Default for ServerSpec {
    fn default() -> Self {
        Self::paper_platform()
    }
}

impl ServerSpec {
    /// The platform of Table 1.
    pub fn paper_platform() -> Self {
        Self {
            cpu_model: "Intel Xeon E5-2699 v4".to_string(),
            os: "Ubuntu 16.04 (kernel 4.14)".to_string(),
            sockets: 2,
            cores_per_socket: 22,
            threads_per_core: 2,
            base_freq_ghz: 2.2,
            max_turbo_ghz: 3.6,
            l1_kb: 32,
            l2_kb: 256,
            llc_mb: 55.0,
            llc_ways: 20,
            memory_gib: 128,
            memory_mhz: 2400,
            membw_gbps: 60.0,
            disk: "1TB, 7200RPM HDD".to_string(),
            network_gbps: 10,
            irq_cores: 6,
            power: PowerModel::paper_platform(),
        }
    }

    /// Physical cores on the experiment socket available to the co-located applications
    /// (cores per socket minus the IRQ reservation).
    pub fn usable_cores(&self) -> u32 {
        self.cores_per_socket.saturating_sub(self.irq_cores)
    }

    /// Fair initial split of the usable cores between the interactive service and `n_apps`
    /// approximate applications: the service keeps half the usable cores (its fair share
    /// for the single-app case the saturation throughput was calibrated at), and the batch
    /// applications divide the other half evenly.
    ///
    /// Returns `(service_cores, per_app_cores)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_apps` is zero.
    pub fn fair_allocation(&self, n_apps: u32) -> (u32, Vec<u32>) {
        assert!(
            n_apps > 0,
            "at least one approximate application is required"
        );
        let usable = self.usable_cores();
        let service = usable / 2;
        let batch_pool = usable - service;
        let base = batch_pool / n_apps;
        let extra = batch_pool % n_apps;
        let per_app = (0..n_apps).map(|i| base + u32::from(i < extra)).collect();
        (service, per_app)
    }

    /// Renders the specification as `(field, value)` rows matching Table 1.
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        vec![
            ("Model".to_string(), self.cpu_model.clone()),
            ("OS".to_string(), self.os.clone()),
            ("Sockets".to_string(), self.sockets.to_string()),
            (
                "Cores/Socket".to_string(),
                self.cores_per_socket.to_string(),
            ),
            (
                "Threads/Core".to_string(),
                self.threads_per_core.to_string(),
            ),
            (
                "Base/Max Turbo Frequency".to_string(),
                format!("{}GHz / {}GHz", self.base_freq_ghz, self.max_turbo_ghz),
            ),
            (
                "L1 Inst/Data Cache".to_string(),
                format!("{} / {} KB", self.l1_kb, self.l1_kb),
            ),
            ("L2 Cache".to_string(), format!("{}KB", self.l2_kb)),
            (
                "L3 (Last-Level) Cache".to_string(),
                format!("{} MB, {} ways", self.llc_mb, self.llc_ways),
            ),
            (
                "Memory".to_string(),
                format!("{}GB total, {}MHz DDR4", self.memory_gib, self.memory_mhz),
            ),
            ("Disk".to_string(), self.disk.clone()),
            (
                "Network Bandwidth".to_string(),
                format!("{}Gbps", self.network_gbps),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_matches_table1() {
        let s = ServerSpec::paper_platform();
        assert_eq!(s.sockets, 2);
        assert_eq!(s.cores_per_socket, 22);
        assert_eq!(s.threads_per_core, 2);
        assert_eq!(s.llc_mb, 55.0);
        assert_eq!(s.llc_ways, 20);
        assert_eq!(s.memory_gib, 128);
        assert_eq!(s.memory_mhz, 2400);
        assert_eq!(s.network_gbps, 10);
        assert_eq!(s.base_freq_ghz, 2.2);
    }

    #[test]
    fn usable_cores_excludes_irq_reservation() {
        let s = ServerSpec::paper_platform();
        assert_eq!(s.usable_cores(), 16);
    }

    #[test]
    fn fair_allocation_single_app() {
        let s = ServerSpec::paper_platform();
        let (service, apps) = s.fair_allocation(1);
        assert_eq!(service, 8);
        assert_eq!(apps, vec![8]);
    }

    #[test]
    fn fair_allocation_multi_app_splits_batch_pool() {
        let s = ServerSpec::paper_platform();
        let (service, apps) = s.fair_allocation(3);
        assert_eq!(service, 8);
        assert_eq!(apps.iter().sum::<u32>(), 8);
        assert_eq!(apps.len(), 3);
        assert!(apps.iter().all(|&c| c >= 2));
    }

    #[test]
    #[should_panic]
    fn fair_allocation_requires_at_least_one_app() {
        ServerSpec::paper_platform().fair_allocation(0);
    }

    #[test]
    fn power_grows_with_allocation_utilization_and_frequency() {
        let p = PowerModel::paper_platform();
        assert!(p.validate().is_ok());
        let idle = p.power_w(0, 0.0, 2.2);
        assert_eq!(idle, p.idle_w);
        let allocated = p.power_w(16, 0.0, 2.2);
        assert!(allocated > idle);
        assert_eq!(allocated, p.idle_node_power_w(16, 2.2));
        let busy = p.power_w(16, 10.0, 2.2);
        assert!(busy > allocated);
        let turbo = p.power_w(16, 10.0, 3.6);
        assert!(turbo > busy, "dynamic draw must grow with frequency");
        // At the reference frequency the formula is exactly linear in its terms.
        assert!((busy - (p.idle_w + 16.0 * p.core_idle_w + 10.0 * p.core_active_w)).abs() < 1e-9);
        assert!(
            p.parked_w < idle,
            "suspend must draw less than powered idle"
        );
    }

    #[test]
    fn power_model_validation_rejects_degenerate_constants() {
        let good = PowerModel::paper_platform();
        let mut bad = good.clone();
        bad.idle_w = -1.0;
        assert_eq!(bad.validate(), Err(PowerModelError::InvalidDraw("idle_w")));
        let mut bad = good.clone();
        bad.core_active_w = f64::NAN;
        assert_eq!(
            bad.validate(),
            Err(PowerModelError::InvalidDraw("core_active_w"))
        );
        let mut bad = good.clone();
        bad.reference_freq_ghz = 0.0;
        assert_eq!(
            bad.validate(),
            Err(PowerModelError::InvalidReferenceFrequency)
        );
        let mut bad = good.clone();
        bad.freq_exponent = -2.0;
        assert_eq!(
            bad.validate(),
            Err(PowerModelError::InvalidFrequencyExponent)
        );
    }

    #[test]
    fn power_model_deserialization_validates() {
        let json = serde_json::to_string(&PowerModel::paper_platform()).expect("serializable");
        let back: PowerModel = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, PowerModel::paper_platform());
        let corrupted = json.replace("\"idle_w\":96", "\"idle_w\":-96");
        assert_ne!(corrupted, json);
        let err = serde_json::from_str::<PowerModel>(&corrupted).unwrap_err();
        assert!(err.to_string().contains("power model"), "{err}");
    }

    #[test]
    fn pre_energy_server_archives_deserialize_with_the_default_power_model() {
        let spec = ServerSpec::paper_platform();
        let json = serde_json::to_string(&spec).expect("serializable");
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let legacy = serde_json::to_string(&serde::Value::Object(
            value
                .as_object()
                .expect("specs serialize as objects")
                .iter()
                .filter(|(k, _)| k != "power")
                .cloned()
                .collect(),
        ))
        .expect("serializable");
        assert_ne!(legacy, json, "the power field must have been stripped");
        let back: ServerSpec = serde_json::from_str(&legacy).expect("legacy archives deserialize");
        assert_eq!(back.power, PowerModel::paper_platform());
        assert_eq!(back, spec);
    }

    #[test]
    fn table1_rows_cover_every_field() {
        let rows = ServerSpec::paper_platform().table1_rows();
        assert_eq!(rows.len(), 12);
        assert!(rows
            .iter()
            .any(|(k, v)| k == "Model" && v.contains("E5-2699")));
        assert!(rows
            .iter()
            .any(|(k, v)| k.contains("L3") && v.contains("55")));
    }
}
