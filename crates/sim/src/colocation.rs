//! The co-location engine.
//!
//! A [`ColocationSim`] binds together one interactive service, one or more approximate
//! batch applications, the platform model, the interference model, and the latency model.
//! The Pliant runtime (or a baseline policy) drives it one decision interval at a time:
//! observe the interval's tail latency, then actuate (switch variants, move cores) before
//! the next interval.

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::{AppId, AppProfile, Catalog, ResourcePressure};
use pliant_telemetry::rng::{derive_seed, rng_from_state_words, rng_state_words, seeded_rng};
use pliant_workloads::generator::OpenLoopGenerator;
use pliant_workloads::profile::{LoadPhase, LoadProfile, LoadProfileError};
use pliant_workloads::service::{ServiceId, ServiceProfile};
use rand::rngs::SmallRng;

use crate::batch::BatchAppState;
use crate::interference::InterferenceModel;
use crate::queueing::{LatencyInputs, LatencyModel};
use crate::server::ServerSpec;

/// Configuration of one co-location experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ColocationConfig {
    /// Platform model.
    pub server: ServerSpec,
    /// Interactive service model.
    pub service: ServiceProfile,
    /// Offered load over simulated time, as a fraction of the service's saturation
    /// throughput. Sampled at the start of every decision interval.
    pub load: LoadProfile,
    /// Approximate applications co-scheduled with the service.
    pub apps: Vec<AppId>,
    /// Whether the approximate applications run under the dynamic-instrumentation tool
    /// (true for Pliant, false for the precise baseline, which needs no instrumentation).
    pub instrumented: bool,
    /// Interference-model constants.
    pub interference: InterferenceModel,
    /// Latency-model constants.
    pub latency: LatencyModel,
    /// Number of latency samples delivered to the monitor per decision interval.
    pub samples_per_interval: usize,
    /// Master RNG seed.
    pub seed: u64,
}

// Hand-written to keep pre-profile archives readable: configurations serialized before
// `load: LoadProfile` existed carry a scalar `load_fraction` field instead, which maps
// onto a constant profile.
impl serde::Deserialize for ColocationConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: serde::Deserialize>(
            value: &serde::Value,
            name: &str,
        ) -> Result<T, serde::Error> {
            T::from_value(
                value
                    .get(name)
                    .ok_or_else(|| serde::Error::missing_field("ColocationConfig", name))?,
            )
        }
        let load = match value.get("load") {
            Some(profile) => LoadProfile::from_value(profile)?,
            None => LoadProfile::constant(field::<f64>(value, "load_fraction")?),
        };
        Ok(Self {
            server: field(value, "server")?,
            service: field(value, "service")?,
            load,
            apps: field(value, "apps")?,
            instrumented: field(value, "instrumented")?,
            interference: field(value, "interference")?,
            latency: field(value, "latency")?,
            samples_per_interval: field(value, "samples_per_interval")?,
            seed: field(value, "seed")?,
        })
    }
}

impl ColocationConfig {
    /// Paper-default configuration: high load (75% of saturation), paper platform,
    /// instrumented applications.
    pub fn paper_default(service: ServiceId, apps: &[AppId], seed: u64) -> Self {
        Self {
            server: ServerSpec::paper_platform(),
            service: ServiceProfile::paper_default(service),
            load: LoadProfile::constant(0.75),
            apps: apps.to_vec(),
            instrumented: true,
            interference: InterferenceModel::default(),
            latency: LatencyModel::default(),
            samples_per_interval: 1_000,
            seed,
        }
    }

    /// Same as [`Self::paper_default`] but with a custom constant load fraction (for
    /// Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if the constant profile at `load_fraction` fails
    /// [`LoadProfile::validate`] (non-finite, out of range, or never positive) — the
    /// same check a [`pliant_workloads::profile::LoadProfile`] swept through a suite
    /// gets, applied at the config boundary so a directly-built simulator rejects it
    /// too.
    pub fn with_load(self, load_fraction: f64) -> Self {
        self.with_load_profile(LoadProfile::constant(load_fraction))
    }

    /// Same as [`Self::paper_default`] but with a time-varying load profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`LoadProfile::validate`]; see [`Self::with_load`].
    pub fn with_load_profile(mut self, profile: LoadProfile) -> Self {
        if let Err(e) = profile.validate() {
            panic!("invalid load profile `{}`: {e}", profile.describe());
        }
        self.load = profile;
        self
    }

    /// Disables instrumentation (precise baseline).
    pub fn without_instrumentation(mut self) -> Self {
        self.instrumented = false;
        self
    }
}

/// Observation of one elapsed decision interval, returned by [`ColocationSim::advance`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalObservation {
    /// Experiment time at the end of the interval, in seconds.
    pub time_s: f64,
    /// Offered load during the interval (the profile sampled at the interval start), as a
    /// fraction of saturation throughput.
    pub offered_load: f64,
    /// What the load profile was doing at the interval start (steady, ramping, peak).
    pub load_phase: LoadPhase,
    /// Requests that arrived during the interval. Zero marks an idle interval: no
    /// latency samples are delivered and no latency evidence exists.
    pub arrivals: u64,
    /// Average electrical power the node drew during the interval, in watts (see
    /// [`PowerModel`](crate::server::PowerModel)). Absent in pre-energy archives
    /// (deserializes as 0).
    #[serde(default)]
    pub power_w: f64,
    /// Energy the node consumed during the interval, in joules (`power_w × dt`).
    /// Absent in pre-energy archives (deserializes as 0).
    #[serde(default)]
    pub energy_j: f64,
    /// True 99th-percentile latency of the interval, in seconds.
    pub p99_latency_s: f64,
    /// The service's QoS target, in seconds.
    pub qos_target_s: f64,
    /// Raw latency samples for the performance monitor (client-side sampling).
    pub latency_samples_s: Vec<f64>,
    /// Utilization of the interactive service during the interval.
    pub utilization: f64,
    /// Per-application status snapshots.
    pub apps: Vec<AppIntervalStatus>,
    /// Whether every batch application has finished.
    pub all_apps_finished: bool,
}

impl IntervalObservation {
    /// Whether the interval violated the QoS target.
    pub fn qos_violated(&self) -> bool {
        self.p99_latency_s > self.qos_target_s
    }

    /// Latency slack as a fraction of the QoS target (positive when under the target).
    pub fn slack_fraction(&self) -> f64 {
        (self.qos_target_s - self.p99_latency_s) / self.qos_target_s
    }
}

/// Snapshot of one batch application at the end of an interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppIntervalStatus {
    /// Which application.
    pub app: AppId,
    /// Active variant (`None` = precise).
    pub variant: Option<usize>,
    /// Cores currently allocated to the application.
    pub cores: u32,
    /// Cores reclaimed from the application so far.
    pub cores_reclaimed: u32,
    /// Completed fraction of the job.
    pub progress: f64,
    /// Whether the job has finished.
    pub finished: bool,
    /// Running (work-weighted) inaccuracy in percent.
    pub inaccuracy_pct: f64,
    /// Execution time relative to the nominal precise run.
    pub relative_execution_time: f64,
}

/// The co-location simulation engine.
#[derive(Debug, Clone)]
pub struct ColocationSim {
    config: ColocationConfig,
    apps: Vec<BatchAppState>,
    service_cores: u32,
    generator: OpenLoopGenerator,
    rng: SmallRng,
    /// Dedicated stream for per-interval latency-sample generation, so the volume of
    /// monitor samples (the dominant draw count by three orders of magnitude) never
    /// perturbs the model-noise stream that decides each interval's true p99.
    sample_rng: SmallRng,
    time_s: f64,
    interval_counter: u64,
    /// Whether the node is parked (drained and suspended by a fleet autoscaler): a
    /// parked node bills [`PowerModel::parked_w`](crate::server::PowerModel::parked_w)
    /// instead of allocation-based power. Runtime state, not serialized.
    parked: bool,
    /// Effective-frequency factor of a degraded (straggler) node: `1.0` is healthy,
    /// `0.6` means the machine delivers 60% of its nominal service capacity. Applied to
    /// the interactive service's latency inputs only (see [`Self::set_degrade`]).
    degrade: f64,
    /// Scratch buffer for per-app interference pressures, reused across intervals.
    pressure_scratch: Vec<ResourcePressure>,
}

/// Serializable snapshot of a [`ColocationSim`]'s full mutable state, for checkpointing.
///
/// The immutable parts of the configuration (server, service, models, seed) are *not*
/// archived: a restore target is built from the same configuration and the snapshot
/// overwrites only what a run mutates — load profile, per-slot applications, core
/// allocation, RNG streams, clocks, and park/degrade flags. The `generator_seed` field
/// guards against restoring onto a simulator built from a different configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColocationSimSnapshot {
    /// The load profile active at the snapshot (mid-run swaps overwrite the config's).
    pub load: LoadProfile,
    /// Per-slot application identities (batch scheduling replaces finished slots).
    pub config_apps: Vec<AppId>,
    /// Full per-slot batch-application state.
    pub apps: Vec<BatchAppState>,
    /// Cores currently allocated to the interactive service.
    pub service_cores: u32,
    /// The arrival generator's current target rate.
    pub generator_qps: f64,
    /// The arrival generator's seed (identity check only; must match the target).
    pub generator_seed: u64,
    /// Arrival-RNG state (wire form; see [`pliant_telemetry::rng::rng_state_words`]).
    pub generator_rng: Vec<u64>,
    /// Model-noise RNG state.
    pub rng: Vec<u64>,
    /// Latency-sample RNG state.
    pub sample_rng: Vec<u64>,
    /// Experiment clock, in seconds.
    pub time_s: f64,
    /// Intervals elapsed.
    pub interval_counter: u64,
    /// Whether the node is parked.
    pub parked: bool,
    /// Straggler degrade factor (`1.0` = healthy).
    pub degrade: f64,
}

impl ColocationSim {
    /// Builds a simulator from a configuration, drawing application profiles from the
    /// catalog.
    ///
    /// # Panics
    ///
    /// Panics if `config.apps` is empty, names an application missing from the catalog,
    /// or `config.load` fails [`LoadProfile::validate`] (a deserialized or hand-built
    /// configuration bypasses the `with_load*` builders, so the boundary check is
    /// repeated here).
    pub fn new(config: ColocationConfig, catalog: &Catalog) -> Self {
        assert!(
            !config.apps.is_empty(),
            "at least one approximate application is required"
        );
        if let Err(e) = config.load.validate() {
            panic!(
                "invalid load profile `{}` in colocation config: {e}",
                config.load.describe()
            );
        }
        // Serde construction validates these at the deserialization boundary, but a
        // hand-built configuration bypasses it — repeat the checks here.
        if let Err(e) = config.server.power.validate() {
            panic!("invalid power model in colocation config: {e}");
        }
        if let Err(e) = config.interference.validate() {
            panic!("invalid interference model in colocation config: {e}");
        }
        let (service_cores, per_app_cores) =
            config.server.fair_allocation(config.apps.len() as u32);
        let apps: Vec<BatchAppState> = config
            .apps
            .iter()
            .zip(per_app_cores.iter())
            .map(|(id, &cores)| {
                let profile: AppProfile = catalog
                    .profile(*id)
                    .unwrap_or_else(|| panic!("{id} missing from catalog"))
                    .clone();
                BatchAppState::new(profile, cores, config.instrumented)
            })
            .collect();
        let qps = config.service.qps_at_load(config.load.load_at(0.0));
        let generator = OpenLoopGenerator::new(qps, derive_seed(config.seed, 1));
        let rng = seeded_rng(derive_seed(config.seed, 2));
        let sample_rng = seeded_rng(derive_seed(config.seed, 3));
        Self {
            config,
            apps,
            service_cores,
            generator,
            rng,
            sample_rng,
            time_s: 0.0,
            interval_counter: 0,
            parked: false,
            degrade: 1.0,
            pressure_scratch: Vec::new(),
        }
    }

    /// The configuration the simulator was built with.
    pub fn config(&self) -> &ColocationConfig {
        &self.config
    }

    /// Current experiment time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Cores currently allocated to the interactive service.
    pub fn service_cores(&self) -> u32 {
        self.service_cores
    }

    /// Number of co-located batch applications.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Immutable access to a batch application's state.
    pub fn app(&self, index: usize) -> &BatchAppState {
        &self.apps[index]
    }

    /// Pins the offered load to a constant fraction mid-experiment (load sweeps),
    /// replacing whatever profile was active.
    pub fn set_load_fraction(&mut self, load_fraction: f64) {
        self.set_load_profile(LoadProfile::constant(load_fraction));
    }

    /// Replaces the load profile mid-experiment. The profile is evaluated against total
    /// experiment time, not time since the swap; [`Self::advance`] samples it (and sets
    /// the generator's rate) at the start of the next interval.
    ///
    /// Unlike the config-boundary builders this deliberately accepts profiles that fail
    /// [`LoadProfile::validate`]'s never-positive check: an external dispatcher (e.g. a
    /// cluster load balancer) may legitimately assign a node zero load for a while, which
    /// simply yields idle intervals. Every *other* validation failure (non-finite or
    /// out-of-range loads, malformed traces) is still rejected.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation for any reason other than
    /// [`LoadProfileError::NeverPositive`].
    pub fn set_load_profile(&mut self, profile: LoadProfile) {
        match profile.validate() {
            Ok(()) | Err(LoadProfileError::NeverPositive) => {}
            Err(e) => panic!("invalid load profile `{}`: {e}", profile.describe()),
        }
        self.config.load = profile;
    }

    /// Marks the node as parked (suspended) or powered back on.
    ///
    /// A fleet autoscaler that has drained a node — no interactive traffic, every batch
    /// slot finished — suspends the machine; while parked, every interval bills
    /// [`PowerModel::parked_w`](crate::server::PowerModel::parked_w) instead of
    /// allocation-based power. Parking affects *only* the power accounting: the caller
    /// is responsible for assigning zero load while parked (the cluster autoscaler
    /// guarantees this), and un-parking restores normal billing from the next interval.
    pub fn set_parked(&mut self, parked: bool) {
        self.parked = parked;
    }

    /// Whether the node is currently parked (see [`Self::set_parked`]).
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// Marks the node as a degraded straggler delivering `factor` of its nominal service
    /// capacity (`1.0` restores full health).
    ///
    /// Fault injection uses this to model a machine stuck at a reduced effective
    /// frequency (thermal throttling, failing DIMM, noisy neighbour below the
    /// hypervisor): the interactive service's capacity and direct slowdowns are scaled
    /// by `1/factor`, inflating tail latency exactly as a slower clock would, while
    /// batch progress and the power model deliberately stay at their nominal rates —
    /// the straggler's damage is QoS, which is the axis the paper's runtime defends.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn set_degrade(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0 && factor <= 1.0,
            "degrade factor must be in (0, 1], got {factor}"
        );
        self.degrade = factor;
    }

    /// Current straggler degrade factor (`1.0` = healthy; see [`Self::set_degrade`]).
    pub fn degrade(&self) -> f64 {
        self.degrade
    }

    /// Replaces the **finished** application in slot `index` with a fresh job.
    ///
    /// This is the substrate for batch-job scheduling across a fleet: a slot whose job
    /// has completed is handed the next queued job without disturbing anything else on
    /// the node. The incoming job inherits the slot's core state exactly — it starts
    /// with the cores the outgoing job currently holds (any cores the service reclaimed
    /// from the slot stay with the service), and its full allocation remains the slot's
    /// original fair share, so a later [`Self::return_core`] can give the reclaimed
    /// cores back to the new occupant. The new job starts in precise mode.
    ///
    /// Returns `false` (and changes nothing) if the slot's current job has not finished.
    pub fn replace_app(&mut self, index: usize, profile: AppProfile) -> bool {
        if !self.apps[index].is_finished() {
            return false;
        }
        let slot_share = self.apps[index].initial_cores();
        let current = self.apps[index].cores();
        let mut fresh = BatchAppState::new(profile, slot_share, self.config.instrumented);
        for _ in current..slot_share {
            fresh.reclaim_core();
        }
        self.config.apps[index] = fresh.profile().id;
        self.apps[index] = fresh;
        true
    }

    /// Extracts the **in-flight** batch application from slot `index` for live
    /// migration, leaving an already-finished placeholder in the slot.
    ///
    /// The extracted state keeps its progress, work-weighted quality ledger, active
    /// variant, and elapsed time — everything the destination needs to continue the
    /// job exactly where it stopped. The vacated slot keeps its current core split
    /// (any cores the service reclaimed from the slot stay with the service), so the
    /// slot looks exactly like one whose job completed normally: a later
    /// [`Self::replace_app`] or [`Self::implant_app`] refills it with the usual
    /// semantics. Pure state manipulation — no RNG stream is touched, so migration
    /// never perturbs the node's stochastic sequences.
    ///
    /// Returns `None` (and changes nothing) if the slot's job has already finished —
    /// there is nothing to migrate.
    pub fn extract_app(&mut self, index: usize) -> Option<BatchAppState> {
        if self.apps[index].is_finished() {
            return None;
        }
        let placeholder = BatchAppState::finished_placeholder(
            self.apps[index].profile().clone(),
            self.apps[index].initial_cores(),
            self.apps[index].cores(),
            self.config.instrumented,
            self.time_s,
        );
        Some(std::mem::replace(&mut self.apps[index], placeholder))
    }

    /// Implants a live-migrated batch application into the **finished** slot `index`.
    ///
    /// Mirrors [`Self::replace_app`]: the incoming job is rebased onto the slot's
    /// original fair share and then reclaims down to the cores the slot currently
    /// holds, so any cores the service reclaimed from the slot stay with the service.
    /// The job's progress, quality ledger, variant, and elapsed time carry over
    /// unchanged. Returns `false` (and changes nothing) if the slot's current job has
    /// not finished.
    pub fn implant_app(&mut self, index: usize, mut state: BatchAppState) -> bool {
        if !self.apps[index].is_finished() {
            return false;
        }
        let slot_share = self.apps[index].initial_cores();
        let current = self.apps[index].cores();
        state.rebase_to_share(slot_share);
        for _ in current..slot_share {
            state.reclaim_core();
        }
        self.config.apps[index] = state.profile().id;
        self.apps[index] = state;
        true
    }

    /// Switches application `index` to the given variant (`None` = precise). Returns
    /// whether the variant changed.
    pub fn set_variant(&mut self, index: usize, variant: Option<usize>) -> bool {
        self.apps[index].set_variant(variant)
    }

    /// Reclaims one core from application `index` and gives it to the interactive service.
    /// Returns `false` (and moves nothing) if the application is already at one core.
    pub fn reclaim_core(&mut self, index: usize) -> bool {
        if self.apps[index].reclaim_core() {
            self.service_cores += 1;
            true
        } else {
            false
        }
    }

    /// Returns one core from the interactive service to application `index`. Returns
    /// `false` if the application already holds its full initial allocation or the service
    /// is at its own fair share.
    pub fn return_core(&mut self, index: usize) -> bool {
        let (fair_service, _) = self.config.server.fair_allocation(self.apps.len() as u32);
        if self.service_cores <= fair_service {
            return false;
        }
        if self.apps[index].return_core() {
            self.service_cores -= 1;
            true
        } else {
            false
        }
    }

    /// Captures the simulator's full mutable state (see [`ColocationSimSnapshot`]).
    pub fn snapshot(&self) -> ColocationSimSnapshot {
        ColocationSimSnapshot {
            load: self.config.load.clone(),
            config_apps: self.config.apps.clone(),
            apps: self.apps.clone(),
            service_cores: self.service_cores,
            generator_qps: self.generator.qps(),
            generator_seed: self.generator.seed(),
            generator_rng: self.generator.rng_state(),
            rng: rng_state_words(&self.rng),
            sample_rng: rng_state_words(&self.sample_rng),
            time_s: self.time_s,
            interval_counter: self.interval_counter,
            parked: self.parked,
            degrade: self.degrade,
        }
    }

    /// Restores state captured by [`Self::snapshot`] onto a simulator built from the
    /// same configuration, after which every subsequent interval is bit-identical to the
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Rejects a snapshot whose generator seed disagrees with this simulator's (the
    /// snapshot was taken from a different configuration), a slot-count mismatch, or
    /// malformed RNG wire states.
    pub fn restore(&mut self, snapshot: &ColocationSimSnapshot) -> Result<(), String> {
        if snapshot.generator_seed != self.generator.seed() {
            return Err(format!(
                "snapshot generator seed {} does not match simulator seed {}",
                snapshot.generator_seed,
                self.generator.seed()
            ));
        }
        if snapshot.apps.len() != self.apps.len() || snapshot.config_apps.len() != self.apps.len() {
            return Err(format!(
                "snapshot carries {} batch slots, simulator has {}",
                snapshot.apps.len(),
                self.apps.len()
            ));
        }
        self.config.load = snapshot.load.clone();
        self.config.apps = snapshot.config_apps.clone();
        self.apps = snapshot.apps.clone();
        self.service_cores = snapshot.service_cores;
        self.generator.set_qps(snapshot.generator_qps);
        self.generator.restore_rng_state(&snapshot.generator_rng)?;
        self.rng = rng_from_state_words(&snapshot.rng)?;
        self.sample_rng = rng_from_state_words(&snapshot.sample_rng)?;
        self.time_s = snapshot.time_s;
        self.interval_counter = snapshot.interval_counter;
        self.parked = snapshot.parked;
        self.degrade = snapshot.degrade;
        Ok(())
    }

    /// Advances the simulation by one decision interval of `dt` seconds and returns the
    /// interval's observation.
    ///
    /// Allocates fresh observation buffers; drivers that advance many intervals should
    /// hand the previous observation back through [`Self::advance_reusing`] instead.
    pub fn advance(&mut self, dt: f64) -> IntervalObservation {
        self.advance_reusing(dt, None)
    }

    /// Advances one decision interval, recycling the heap buffers (latency samples,
    /// per-app statuses) of a previous interval's observation.
    ///
    /// This is the hot-path entry point: a driver loop that feeds each observation back
    /// in (`obs = sim.advance_reusing(dt, Some(obs))`) runs every interval without any
    /// per-interval allocation. The recycled observation's contents are discarded —
    /// only its capacity is reused — so idle intervals still deliver an *empty* sample
    /// set, never a stale one.
    pub fn advance_reusing(
        &mut self,
        dt: f64,
        recycle: Option<IntervalObservation>,
    ) -> IntervalObservation {
        assert!(dt > 0.0, "interval must be positive");
        let (mut samples, mut app_statuses) = match recycle {
            Some(obs) => (obs.latency_samples_s, obs.apps),
            // pliant-lint: allow(hot-path-alloc): cold-start fallback only — callers
            // on the steady-state path always recycle the previous observation.
            None => (Vec::new(), Vec::new()),
        };
        samples.clear();
        app_statuses.clear();
        // Sample the load profile at the interval start: the generator's *rate* follows
        // the profile while its RNG stream stays untouched, so constant profiles
        // reproduce the exact pre-profile arrival sequences. The recorded load is
        // clamped to what the generator actually runs at, so statistics never claim an
        // operating point above the saturation model's ceiling.
        let interval_start_s = self.time_s;
        let offered_load = self
            .config
            .load
            .load_at(interval_start_s)
            .clamp(0.0, ServiceProfile::MAX_OFFERED_LOAD);
        let load_phase = self.config.load.phase_at(interval_start_s);
        self.generator
            .set_qps(self.config.service.qps_at_load(offered_load));
        self.interval_counter += 1;
        self.time_s += dt;

        // Contention for this interval, from the live co-runners' current pressure.
        self.pressure_scratch.clear();
        self.pressure_scratch
            .extend(self.apps.iter().map(|a| a.current_pressure()));
        let contention = self.config.interference.contention(
            &self.config.server,
            &self.config.service,
            &self.pressure_scratch,
        );

        // Interactive service latency for the interval.
        let arrivals = self.generator.arrivals_in(dt);
        let qps = arrivals as f64 / dt;
        let mut inputs = LatencyInputs {
            qps,
            cores: self.service_cores,
            capacity_slowdown: contention.service_capacity_slowdown,
            direct_slowdown: contention.service_direct_slowdown,
        };
        // A degraded straggler delivers `degrade` of its nominal capacity: both slowdown
        // channels scale by the lost frequency. Healthy nodes skip the branch entirely so
        // fault-free runs stay bit-identical to pre-fault builds.
        if self.degrade < 1.0 {
            inputs.capacity_slowdown /= self.degrade;
            inputs.direct_slowdown /= self.degrade;
        }
        let p99 = self
            .config
            .latency
            .p99_with_noise(&self.config.service, &inputs, &mut self.rng);
        // An interval with zero arrivals serves no requests, so the client-side monitor
        // receives no samples: deliver an empty set (the monitor reports no-signal and
        // the runtime holds) instead of fabricating `samples_per_interval` synthetic
        // low-latency samples that would read as maximal headroom at a load trough.
        if arrivals > 0 {
            self.config.latency.sample_latencies_into(
                &self.config.service,
                p99,
                self.config.samples_per_interval,
                &mut self.sample_rng,
                &mut samples,
            );
        }
        let utilization = LatencyModel::utilization(&self.config.service, &inputs);

        // Electrical power for the interval, from the start-of-interval allocation and
        // activity (the same convention the contention model uses): every allocated
        // core draws static power, the service's cores draw dynamic power weighted by
        // its utilization, and each batch slot's cores draw dynamic power weighted by
        // its variant's CPU intensity (zero once the job finishes). Pure arithmetic —
        // no allocation on the hot path. A parked node bills the suspend draw instead.
        let power_w = if self.parked {
            self.config.server.power.parked_w
        } else {
            let mut allocated = self.service_cores;
            let mut busy = self.service_cores as f64 * utilization.clamp(0.0, 1.0);
            for (app, pressure) in self.apps.iter().zip(&self.pressure_scratch) {
                allocated += app.cores();
                busy += app.cores() as f64 * pressure.cpu_intensity.clamp(0.0, 1.0);
            }
            self.config
                .server
                .power
                .power_w(allocated, busy, self.config.server.base_freq_ghz)
        };
        let energy_j = power_w * dt;

        // Batch applications make progress under their own interference slowdown.
        for app in &mut self.apps {
            app.advance(dt, contention.batch_slowdown, self.time_s);
        }

        app_statuses.extend(self.apps.iter().map(|a| AppIntervalStatus {
            app: a.profile().id,
            variant: a.variant(),
            cores: a.cores(),
            cores_reclaimed: a.cores_reclaimed(),
            progress: a.progress(),
            finished: a.is_finished(),
            inaccuracy_pct: a.inaccuracy_pct(),
            relative_execution_time: a.relative_execution_time(),
        }));
        let all_apps_finished = self.apps.iter().all(|a| a.is_finished());

        IntervalObservation {
            time_s: self.time_s,
            offered_load,
            load_phase,
            arrivals,
            power_w,
            energy_j,
            p99_latency_s: p99,
            qos_target_s: self.config.service.qos_target_s,
            latency_samples_s: samples,
            utilization,
            apps: app_statuses,
            all_apps_finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::default()
    }

    fn run_static(
        service: ServiceId,
        app: AppId,
        variant: Option<usize>,
        extra_cores: u32,
        intervals: usize,
    ) -> (f64, f64) {
        // Returns (mean p99 / QoS ratio, QoS-violation fraction) for a static configuration.
        let cfg = ColocationConfig::paper_default(service, &[app], 7);
        let mut sim = ColocationSim::new(cfg, &catalog());
        sim.set_variant(0, variant);
        for _ in 0..extra_cores {
            sim.reclaim_core(0);
        }
        let mut ratio_sum = 0.0;
        let mut violations = 0usize;
        for _ in 0..intervals {
            let obs = sim.advance(1.0);
            ratio_sum += obs.p99_latency_s / obs.qos_target_s;
            if obs.qos_violated() {
                violations += 1;
            }
        }
        (
            ratio_sum / intervals as f64,
            violations as f64 / intervals as f64,
        )
    }

    #[test]
    fn precise_colocation_violates_qos_for_sensitive_services() {
        for service in [ServiceId::Nginx, ServiceId::Memcached] {
            let (ratio, violation_frac) = run_static(service, AppId::Canneal, None, 0, 20);
            assert!(
                ratio > 1.4,
                "{service}: precise canneal colocation should clearly violate QoS (ratio {ratio})"
            );
            assert!(violation_frac > 0.9);
        }
    }

    #[test]
    fn mongodb_precise_colocation_is_borderline_or_violating() {
        let (ratio, _) = run_static(ServiceId::MongoDb, AppId::Canneal, None, 0, 20);
        assert!(
            ratio > 0.95,
            "MongoDB + precise canneal should sit at or above QoS (ratio {ratio})"
        );
    }

    #[test]
    fn snp_most_approximate_lets_memcached_meet_qos_without_cores() {
        let catalog = catalog();
        let most = catalog.profile(AppId::Snp).unwrap().most_approximate();
        let (ratio, violation_frac) = run_static(ServiceId::Memcached, AppId::Snp, most, 0, 20);
        assert!(
            violation_frac < 0.3,
            "memcached + most-approximate SNP should mostly meet QoS (ratio {ratio}, violations {violation_frac})"
        );
    }

    #[test]
    fn canneal_needs_cores_in_addition_to_approximation_for_memcached() {
        let catalog = catalog();
        let most = catalog.profile(AppId::Canneal).unwrap().most_approximate();
        let (_, violations_without_cores) =
            run_static(ServiceId::Memcached, AppId::Canneal, most, 0, 20);
        let (_, violations_with_cores) =
            run_static(ServiceId::Memcached, AppId::Canneal, most, 4, 20);
        assert!(
            violations_without_cores > 0.5,
            "approximation alone should not be enough for canneal + memcached"
        );
        assert!(
            violations_with_cores < 0.3,
            "reclaiming cores plus approximation should restore QoS"
        );
    }

    #[test]
    fn batch_app_progresses_and_finishes() {
        let cfg = ColocationConfig::paper_default(ServiceId::MongoDb, &[AppId::Raytrace], 3);
        let mut sim = ColocationSim::new(cfg, &catalog());
        let mut finished_at = None;
        for _ in 0..120 {
            let obs = sim.advance(1.0);
            if obs.all_apps_finished {
                finished_at = Some(obs.time_s);
                break;
            }
        }
        let t = finished_at.expect("raytrace should finish within 120 s");
        let nominal = catalog()
            .profile(AppId::Raytrace)
            .unwrap()
            .nominal_exec_time_s;
        assert!(
            t >= nominal * 0.9 && t <= nominal * 1.6,
            "finish time {t} vs nominal {nominal}"
        );
    }

    #[test]
    fn reclaim_and_return_core_move_allocation_back_and_forth() {
        let cfg = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Bayesian], 5);
        let mut sim = ColocationSim::new(cfg, &catalog());
        let initial = sim.service_cores();
        assert!(sim.reclaim_core(0));
        assert_eq!(sim.service_cores(), initial + 1);
        assert!(sim.return_core(0));
        assert_eq!(sim.service_cores(), initial);
        // The service never drops below its fair share.
        assert!(!sim.return_core(0));
    }

    #[test]
    fn multi_app_colocation_splits_batch_cores() {
        let cfg = ColocationConfig::paper_default(
            ServiceId::Nginx,
            &[AppId::Canneal, AppId::Bayesian],
            9,
        );
        let sim = ColocationSim::new(cfg, &catalog());
        assert_eq!(sim.app_count(), 2);
        assert_eq!(sim.service_cores(), 8);
        assert_eq!(sim.app(0).cores() + sim.app(1).cores(), 8);
    }

    #[test]
    fn observation_reports_samples_and_slack() {
        let cfg = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 11);
        let mut sim = ColocationSim::new(cfg, &catalog());
        let obs = sim.advance(1.0);
        assert_eq!(obs.latency_samples_s.len(), 1_000);
        assert!(obs.latency_samples_s.iter().all(|s| *s > 0.0));
        assert_eq!(obs.apps.len(), 1);
        assert!(
            (obs.slack_fraction() - (obs.qos_target_s - obs.p99_latency_s) / obs.qos_target_s)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn simulation_is_deterministic_in_seed() {
        let run = |seed: u64| -> Vec<f64> {
            let cfg = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::KMeans], seed);
            let mut sim = ColocationSim::new(cfg, &catalog());
            (0..10).map(|_| sim.advance(1.0).p99_latency_s).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn flash_crowd_profile_shapes_arrivals_over_time() {
        let profile = LoadProfile::FlashCrowd {
            base: 0.4,
            peak: 1.0,
            start_s: 10.0,
            ramp_s: 2.0,
            hold_s: 8.0,
            decay_s: 2.0,
        };
        let cfg = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 17)
            .with_load_profile(profile);
        let mut sim = ColocationSim::new(cfg, &catalog());
        let mut by_phase: Vec<(LoadPhase, f64, f64)> = Vec::new();
        for _ in 0..30 {
            let obs = sim.advance(1.0);
            by_phase.push((obs.load_phase, obs.offered_load, obs.utilization));
        }
        let mean_util = |phase: LoadPhase| {
            let sel: Vec<f64> = by_phase
                .iter()
                .filter(|(p, _, _)| *p == phase)
                .map(|(_, _, u)| *u)
                .collect();
            assert!(!sel.is_empty(), "phase {phase} must occur");
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        assert!(mean_util(LoadPhase::Peak) > mean_util(LoadPhase::Steady));
        assert_eq!(by_phase[0].0, LoadPhase::Steady);
        assert_eq!(by_phase[0].1, 0.4);
        assert_eq!(by_phase[15].0, LoadPhase::Peak);
        assert_eq!(by_phase[15].1, 1.0);
    }

    #[test]
    fn pre_profile_config_archives_still_deserialize() {
        // Configurations archived before `load` was a LoadProfile carry a scalar
        // `load_fraction`; the hand-written deserializer maps it onto a constant profile.
        let current = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 9);
        let json = serde_json::to_string(&current).expect("serializable");
        let round: ColocationConfig = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(round.load, current.load);
        let legacy = json.replace(
            &format!(
                "\"load\":{}",
                serde_json::to_string(&current.load).expect("serializable")
            ),
            "\"load_fraction\":0.6",
        );
        assert_ne!(legacy, json, "the load field must have been replaced");
        let old: ColocationConfig =
            serde_json::from_str(&legacy).expect("legacy config archives deserialize");
        assert_eq!(old.load, LoadProfile::constant(0.6));
    }

    #[test]
    fn recorded_load_is_clamped_to_what_the_generator_runs_at() {
        // Profiles validate up to 1.5× saturation, but the generator caps at 1.2×; the
        // observation must report the capped value, not the nominal one.
        let cfg = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 31)
            .with_load_profile(LoadProfile::constant(1.4));
        let mut sim = ColocationSim::new(cfg, &catalog());
        let obs = sim.advance(1.0);
        assert_eq!(obs.offered_load, ServiceProfile::MAX_OFFERED_LOAD);
    }

    #[test]
    fn idle_intervals_deliver_no_latency_samples() {
        // A load trough with zero arrivals serves no requests, so the monitor must see
        // an empty sample set (and report no-signal) instead of fabricated headroom.
        let profile = LoadProfile::Step {
            base: 0.75,
            to: 0.0,
            at_s: 2.0,
        };
        let cfg = ColocationConfig::paper_default(ServiceId::MongoDb, &[AppId::Raytrace], 23)
            .with_load_profile(profile);
        let mut sim = ColocationSim::new(cfg, &catalog());
        let busy = sim.advance(1.0);
        assert_eq!(busy.latency_samples_s.len(), 1_000);
        let _ = sim.advance(1.0);
        let idle = sim.advance(1.0);
        assert_eq!(idle.offered_load, 0.0);
        assert!(
            idle.latency_samples_s.is_empty(),
            "zero arrivals must not fabricate latency samples"
        );
    }

    #[test]
    fn recycled_buffers_never_leak_samples_into_idle_intervals() {
        // Regression for the buffer-reuse hot path: an idle interval that recycles a
        // busy interval's observation must deliver an *empty* sample set, not the stale
        // samples whose capacity it inherited, and a later busy interval must refill
        // the same allocation.
        let profile = LoadProfile::Trace {
            points: vec![(0.0, 0.75), (1.0, 0.0), (2.0, 0.0), (3.0, 0.75)],
        };
        let cfg = ColocationConfig::paper_default(ServiceId::MongoDb, &[AppId::Raytrace], 23)
            .with_load_profile(profile);
        let mut sim = ColocationSim::new(cfg, &catalog());
        let busy = sim.advance_reusing(1.0, None);
        assert_eq!(busy.latency_samples_s.len(), 1_000);
        let busy_capacity = busy.latency_samples_s.capacity();
        let idle = sim.advance_reusing(1.0, Some(busy));
        assert_eq!(idle.offered_load, 0.0);
        assert_eq!(idle.arrivals, 0);
        assert!(
            idle.latency_samples_s.is_empty(),
            "a recycled buffer must not leak the previous interval's samples"
        );
        let _ = sim.advance_reusing(1.0, None);
        let busy_again = sim.advance_reusing(1.0, Some(idle));
        assert_eq!(busy_again.latency_samples_s.len(), 1_000);
        assert_eq!(
            busy_again.latency_samples_s.capacity(),
            busy_capacity,
            "the busy interval must reuse the recycled allocation"
        );
        assert!(busy_again.latency_samples_s.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn advance_reusing_matches_advance() {
        // Buffer recycling is a pure allocation optimization: the observations of a
        // recycling run must be identical to a fresh-allocation run.
        let run = |reuse: bool| -> Vec<String> {
            let cfg = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::KMeans], 7);
            let mut sim = ColocationSim::new(cfg, &catalog());
            let mut recycled: Option<IntervalObservation> = None;
            (0..12)
                .map(|_| {
                    let obs = if reuse {
                        sim.advance_reusing(1.0, recycled.take())
                    } else {
                        sim.advance(1.0)
                    };
                    let json = serde_json::to_string(&obs).expect("serializable");
                    if reuse {
                        recycled = Some(obs);
                    }
                    json
                })
                .collect()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn profile_runs_are_deterministic_in_seed() {
        let run = |seed: u64| -> Vec<f64> {
            let profile = LoadProfile::Diurnal {
                base: 0.6,
                amplitude: 0.3,
                period_s: 20.0,
                phase_s: 0.0,
            };
            let cfg = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::KMeans], seed)
                .with_load_profile(profile);
            let mut sim = ColocationSim::new(cfg, &catalog());
            (0..15).map(|_| sim.advance(1.0).p99_latency_s).collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "invalid load profile")]
    fn with_load_rejects_out_of_range_fractions() {
        let _ = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 1).with_load(2.0);
    }

    #[test]
    #[should_panic(expected = "invalid load profile")]
    fn with_load_profile_rejects_invalid_profiles() {
        let _ = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 1)
            .with_load_profile(LoadProfile::Trace { points: vec![] });
    }

    #[test]
    #[should_panic(expected = "invalid load profile")]
    fn simulator_construction_rejects_hand_built_invalid_loads() {
        // Serde or struct-literal construction bypasses the `with_load*` builders; the
        // simulator boundary must reject the profile anyway.
        let mut cfg = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 1);
        cfg.load = LoadProfile::constant(f64::NAN);
        let _ = ColocationSim::new(cfg, &catalog());
    }

    #[test]
    fn mid_run_load_swaps_allow_zero_but_reject_malformed_profiles() {
        let cfg = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 1);
        let mut sim = ColocationSim::new(cfg, &catalog());
        // A dispatcher may assign zero load (idle node) — accepted.
        sim.set_load_fraction(0.0);
        assert_eq!(sim.advance(1.0).arrivals, 0);
        // Anything else invalid is still rejected at the swap.
        let nan = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.set_load_fraction(f64::NAN);
        }));
        assert!(nan.is_err(), "NaN loads must not enter the simulator");
        let over = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.set_load_fraction(7.0);
        }));
        assert!(
            over.is_err(),
            "out-of-range loads must not enter the simulator"
        );
    }

    #[test]
    fn replace_app_swaps_a_finished_slot_and_keeps_core_state() {
        let catalog = catalog();
        let cfg = ColocationConfig::paper_default(ServiceId::MongoDb, &[AppId::Raytrace], 3);
        let mut sim = ColocationSim::new(cfg, &catalog);
        let slot_share = sim.app(0).initial_cores();
        // Reclaim two cores, then run the job to completion.
        assert!(sim.reclaim_core(0));
        assert!(sim.reclaim_core(0));
        let service_cores = sim.service_cores();
        let snp = catalog.profile(AppId::Snp).unwrap().clone();
        assert!(
            !sim.replace_app(0, snp.clone()),
            "a running job must not be evicted"
        );
        for _ in 0..120 {
            if sim.advance(1.0).all_apps_finished {
                break;
            }
        }
        assert!(sim.app(0).is_finished(), "raytrace finishes within 120 s");
        assert!(sim.replace_app(0, snp));
        // The new job inherits the slot exactly: same current cores, same full share,
        // precise execution, zero progress; the service keeps its reclaimed cores.
        assert_eq!(sim.app(0).profile().id, AppId::Snp);
        assert_eq!(sim.config().apps[0], AppId::Snp);
        assert_eq!(sim.app(0).cores(), slot_share - 2);
        assert_eq!(sim.app(0).initial_cores(), slot_share);
        assert_eq!(sim.app(0).cores_reclaimed(), 2);
        assert_eq!(sim.app(0).variant(), None);
        assert_eq!(sim.app(0).progress(), 0.0);
        assert!(!sim.app(0).is_finished());
        assert_eq!(sim.service_cores(), service_cores);
        // Returning the reclaimed cores now benefits the new occupant.
        assert!(sim.return_core(0));
        assert!(sim.return_core(0));
        assert_eq!(sim.app(0).cores(), slot_share);
        assert!(!sim.return_core(0), "cannot exceed the slot's fair share");
    }

    #[test]
    fn extract_and_implant_migrate_in_flight_state() {
        let catalog = catalog();
        // Source node: run canneal partway under an approximate variant.
        let src_cfg = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::Canneal], 3);
        let mut src = ColocationSim::new(src_cfg, &catalog);
        src.set_variant(0, Some(1));
        assert!(src.reclaim_core(0));
        for _ in 0..5 {
            let _ = src.advance(1.0);
        }
        let progress = src.app(0).progress();
        assert!(progress > 0.0 && !src.app(0).is_finished());
        let slot_share = src.app(0).initial_cores();
        let held = src.app(0).cores();

        let state = src.extract_app(0).expect("in-flight job extracts");
        assert_eq!(state.progress(), progress);
        assert_eq!(state.variant(), Some(1));
        // The vacated slot is a finished placeholder with the same core split.
        assert!(src.app(0).is_finished());
        assert_eq!(src.app(0).initial_cores(), slot_share);
        assert_eq!(src.app(0).cores(), held);
        assert!(
            src.extract_app(0).is_none(),
            "a finished placeholder has nothing to migrate"
        );

        // Destination node: its raytrace slot must finish before the implant lands.
        let dst_cfg = ColocationConfig::paper_default(ServiceId::MongoDb, &[AppId::Raytrace], 5);
        let mut dst = ColocationSim::new(dst_cfg, &catalog);
        assert!(
            !dst.implant_app(0, state.clone()),
            "a running destination slot must not be evicted"
        );
        for _ in 0..120 {
            if dst.advance(1.0).all_apps_finished {
                break;
            }
        }
        let dst_share = dst.app(0).initial_cores();
        assert!(dst.implant_app(0, state));
        // The implanted job continues where it stopped, rebased onto the new slot.
        assert_eq!(dst.app(0).profile().id, AppId::Canneal);
        assert_eq!(dst.config().apps[0], AppId::Canneal);
        assert_eq!(dst.app(0).progress(), progress);
        assert_eq!(dst.app(0).variant(), Some(1));
        assert_eq!(dst.app(0).initial_cores(), dst_share);
        assert!(!dst.app(0).is_finished());
        // It keeps making progress on the destination.
        let before = dst.app(0).progress();
        let _ = dst.advance(1.0);
        assert!(dst.app(0).progress() > before);
    }

    #[test]
    fn interval_power_reflects_allocation_and_activity() {
        let cfg = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::Canneal], 7);
        let power = cfg.server.power.clone();
        let freq = cfg.server.base_freq_ghz;
        let mut sim = ColocationSim::new(cfg, &catalog());
        let obs = sim.advance(1.0);
        // A busy interval draws more than the fully-idle allocation and less than
        // every core pegged at 100%.
        let allocated = sim.service_cores() + sim.app(0).cores();
        assert!(obs.power_w > power.idle_node_power_w(allocated, freq));
        assert!(obs.power_w < power.power_w(allocated, allocated as f64, freq));
        assert_eq!(obs.energy_j, obs.power_w * 1.0);
        // Energy scales with the interval length.
        let obs2 = sim.advance(2.0);
        assert_eq!(obs2.energy_j, obs2.power_w * 2.0);
    }

    #[test]
    fn zero_load_idle_intervals_bill_exactly_idle_power() {
        // Run the batch job to completion, then drop the load to zero: with no traffic
        // and no batch activity the node must bill exactly the allocated-core idle
        // power, nothing more.
        let cfg = ColocationConfig::paper_default(ServiceId::MongoDb, &[AppId::Raytrace], 3);
        let power = cfg.server.power.clone();
        let freq = cfg.server.base_freq_ghz;
        let mut sim = ColocationSim::new(cfg, &catalog());
        for _ in 0..120 {
            if sim.advance(1.0).all_apps_finished {
                break;
            }
        }
        assert!(sim.app(0).is_finished());
        sim.set_load_fraction(0.0);
        let idle = sim.advance(1.0);
        assert_eq!(idle.arrivals, 0);
        let allocated = sim.service_cores() + sim.app(0).cores();
        assert_eq!(idle.power_w, power.idle_node_power_w(allocated, freq));
        assert_eq!(idle.energy_j, idle.power_w);
    }

    #[test]
    fn parked_nodes_bill_the_suspend_draw() {
        let cfg = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 5);
        let parked_w = cfg.server.power.parked_w;
        let mut sim = ColocationSim::new(cfg, &catalog());
        let on = sim.advance(1.0);
        assert!(on.power_w > parked_w);
        sim.set_load_fraction(0.0);
        sim.set_parked(true);
        assert!(sim.is_parked());
        let parked = sim.advance(1.0);
        assert_eq!(parked.power_w, parked_w);
        assert_eq!(parked.energy_j, parked_w);
        sim.set_parked(false);
        let back = sim.advance(1.0);
        assert!(
            back.power_w > parked_w,
            "un-parking restores normal billing"
        );
    }

    #[test]
    fn finished_jobs_stop_drawing_dynamic_power() {
        let cfg = ColocationConfig::paper_default(ServiceId::MongoDb, &[AppId::Raytrace], 3);
        let mut sim = ColocationSim::new(cfg, &catalog());
        let busy = sim.advance(1.0).power_w;
        for _ in 0..120 {
            if sim.advance(1.0).all_apps_finished {
                break;
            }
        }
        assert!(sim.app(0).is_finished());
        let after = sim.advance(1.0).power_w;
        assert!(
            after < busy,
            "a finished batch slot must fall back to static core draw ({after} vs {busy})"
        );
    }

    #[test]
    #[should_panic(expected = "invalid power model")]
    fn simulator_construction_rejects_hand_built_invalid_power_models() {
        let mut cfg = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 1);
        cfg.server.power.idle_w = f64::NAN;
        let _ = ColocationSim::new(cfg, &catalog());
    }

    #[test]
    fn degraded_straggler_inflates_tail_latency_and_recovers() {
        let run = |factor: Option<f64>| -> Vec<f64> {
            let cfg = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::KMeans], 19);
            let mut sim = ColocationSim::new(cfg, &catalog());
            if let Some(f) = factor {
                sim.set_degrade(f);
            }
            (0..15).map(|_| sim.advance(1.0).p99_latency_s).collect()
        };
        let healthy = run(None);
        let unit = run(Some(1.0));
        let degraded = run(Some(0.5));
        assert_eq!(
            healthy, unit,
            "factor 1.0 must be bit-identical to never touching the degrade knob"
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&degraded) > mean(&healthy) * 1.2,
            "a half-speed straggler must visibly inflate p99 ({} vs {})",
            mean(&degraded),
            mean(&healthy)
        );
        // Recovery restores the healthy latency distribution going forward.
        let cfg = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::KMeans], 19);
        let mut sim = ColocationSim::new(cfg, &catalog());
        sim.set_degrade(0.5);
        sim.set_degrade(1.0);
        let recovered: Vec<f64> = (0..15).map(|_| sim.advance(1.0).p99_latency_s).collect();
        assert_eq!(recovered, healthy);
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn degrade_factor_must_be_a_positive_fraction() {
        let cfg = ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 1);
        let mut sim = ColocationSim::new(cfg, &catalog());
        sim.set_degrade(0.0);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let cfg = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::KMeans], 29)
            .with_load_profile(LoadProfile::Diurnal {
                base: 0.6,
                amplitude: 0.3,
                period_s: 20.0,
                phase_s: 0.0,
            });
        let mut reference = ColocationSim::new(cfg.clone(), &catalog());
        let mut interrupted = ColocationSim::new(cfg.clone(), &catalog());
        for _ in 0..7 {
            let _ = reference.advance(1.0);
            let _ = interrupted.advance(1.0);
        }
        // Checkpoint through the JSON wire form, restore into a *fresh* simulator.
        let snapshot = interrupted.snapshot();
        let json = serde_json::to_string(&snapshot).expect("serializable");
        let restored_snapshot: ColocationSimSnapshot =
            serde_json::from_str(&json).expect("deserializable");
        let mut resumed = ColocationSim::new(cfg, &catalog());
        resumed.restore(&restored_snapshot).expect("restores");
        for _ in 0..10 {
            let a = serde_json::to_string(&reference.advance(1.0)).expect("serializable");
            let b = serde_json::to_string(&resumed.advance(1.0)).expect("serializable");
            assert_eq!(a, b, "resumed run must be byte-identical to uninterrupted");
        }
    }

    #[test]
    fn restore_rejects_mismatched_targets() {
        let cfg = ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::KMeans], 29);
        let snapshot = ColocationSim::new(cfg, &catalog()).snapshot();
        let other_seed =
            ColocationConfig::paper_default(ServiceId::Memcached, &[AppId::KMeans], 30);
        let mut target = ColocationSim::new(other_seed, &catalog());
        assert!(target.restore(&snapshot).is_err(), "seed mismatch rejected");
        let other_shape = ColocationConfig::paper_default(
            ServiceId::Memcached,
            &[AppId::KMeans, AppId::Canneal],
            29,
        );
        let mut target = ColocationSim::new(other_shape, &catalog());
        assert!(
            target.restore(&snapshot).is_err(),
            "slot-count mismatch rejected"
        );
    }

    #[test]
    fn load_sweep_changes_utilization() {
        let cfg =
            ColocationConfig::paper_default(ServiceId::Nginx, &[AppId::Snp], 13).with_load(0.4);
        let mut sim = ColocationSim::new(cfg, &catalog());
        let low = sim.advance(1.0).utilization;
        sim.set_load_fraction(0.95);
        let high = sim.advance(1.0).utilization;
        assert!(high > low);
    }
}
