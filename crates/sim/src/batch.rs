//! Execution-progress and output-quality accounting for approximate applications.
//!
//! The co-location simulator advances each batch application in work units: an application
//! finishes when its progress reaches 1.0 (one complete job). The rate of progress depends
//! on its core allocation, the variant it is executing (more aggressive variants need less
//! work), interference from co-runners, and the dynamic-instrumentation overhead. The
//! final output-quality loss is the work-weighted average of the inaccuracies of the
//! variants used across the run, matching how Pliant reports inaccuracy.

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::{AppProfile, ResourcePressure};

/// Runtime state of one approximate application inside a co-location experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchAppState {
    profile: AppProfile,
    /// Cores the application started with (its fair share).
    initial_cores: u32,
    /// Cores currently allocated.
    cores: u32,
    /// Active variant (`None` = precise execution).
    variant: Option<usize>,
    /// Fraction of the job completed, in `[0, 1]`.
    progress: f64,
    /// Work-weighted accumulated inaccuracy numerator (percent × progress fraction).
    weighted_inaccuracy: f64,
    /// Simulated wall-clock time spent on the job so far, in seconds.
    elapsed_s: f64,
    /// Completion time, once finished.
    finished_at_s: Option<f64>,
    /// Number of variant switches performed (each incurs a small one-off cost).
    switches: u32,
    /// Whether the application runs under the dynamic-instrumentation tool.
    instrumented: bool,
}

/// One-off cost (in seconds of lost progress time) per variant switch; the paper's
/// signal-based switching is cheap because recompilation happens at coarse granularity.
const SWITCH_COST_S: f64 = 0.01;

impl BatchAppState {
    /// Creates the state for an application starting in precise mode with `cores` cores.
    pub fn new(profile: AppProfile, cores: u32, instrumented: bool) -> Self {
        Self {
            profile,
            initial_cores: cores.max(1),
            cores: cores.max(1),
            variant: None,
            progress: 0.0,
            weighted_inaccuracy: 0.0,
            elapsed_s: 0.0,
            finished_at_s: None,
            switches: 0,
            instrumented,
        }
    }

    /// The application profile.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Cores currently allocated.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Cores the application started with.
    pub fn initial_cores(&self) -> u32 {
        self.initial_cores
    }

    /// Number of cores reclaimed from the application so far (never negative).
    pub fn cores_reclaimed(&self) -> u32 {
        self.initial_cores.saturating_sub(self.cores)
    }

    /// Currently active variant (`None` = precise).
    pub fn variant(&self) -> Option<usize> {
        self.variant
    }

    /// Completed fraction of the job.
    pub fn progress(&self) -> f64 {
        self.progress
    }

    /// Whether the job has completed.
    pub fn is_finished(&self) -> bool {
        self.finished_at_s.is_some()
    }

    /// Completion time in seconds since the experiment start, if finished.
    pub fn finished_at_s(&self) -> Option<f64> {
        self.finished_at_s
    }

    /// Number of variant switches performed so far.
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// Shared-resource pressure the application currently exerts (zero once finished).
    pub fn current_pressure(&self) -> ResourcePressure {
        if self.is_finished() {
            ResourcePressure::new(0.0, 0.0, 0.0)
        } else {
            self.profile.pressure_at(self.variant)
        }
    }

    /// Switches to a new variant (`None` = precise). Returns `true` if the variant
    /// actually changed.
    pub fn set_variant(&mut self, variant: Option<usize>) -> bool {
        let clamped = variant.map(|v| v.min(self.profile.variants.len().saturating_sub(1)));
        if clamped == self.variant || self.is_finished() {
            return false;
        }
        self.variant = clamped;
        self.switches += 1;
        // Switching costs a sliver of progress time (signal delivery + code-cache refill).
        self.elapsed_s += SWITCH_COST_S;
        true
    }

    /// Removes one core from the application (used when the interactive service reclaims
    /// it). Returns `true` if a core was actually removed (at least one core always
    /// remains).
    pub fn reclaim_core(&mut self) -> bool {
        if self.cores > 1 {
            self.cores -= 1;
            true
        } else {
            false
        }
    }

    /// Returns one previously-reclaimed core to the application. Returns `true` if a core
    /// was restored.
    pub fn return_core(&mut self) -> bool {
        if self.cores < self.initial_cores {
            self.cores += 1;
            true
        } else {
            false
        }
    }

    /// Rebases a live-migrated application onto a destination slot's fair share.
    ///
    /// The job keeps its progress, work-weighted quality ledger, elapsed time, active
    /// variant, and switch count — only the core accounting restarts from the
    /// destination's `slot_share`. The caller then reclaims cores down to the
    /// destination's current allocation, mirroring how
    /// [`ColocationSim::replace_app`](crate::colocation::ColocationSim::replace_app)
    /// seeds a fresh job.
    pub fn rebase_to_share(&mut self, slot_share: u32) {
        let share = slot_share.max(1);
        self.initial_cores = share;
        self.cores = share;
    }

    /// Creates an already-finished placeholder for a slot vacated by migration: it
    /// exerts no pressure, makes no progress, and reports zero inaccuracy. Keeping the
    /// slot occupied (rather than shrinking the app list) preserves slot arity, so
    /// schedulers and checkpoints see the same shape before and after an extraction.
    /// The placeholder keeps the slot's core split — `slot_share` is the slot's
    /// original fair share, `cores` what the outgoing job currently held — so a later
    /// slot refill seeds the next job exactly as it would after a normal completion.
    pub fn finished_placeholder(
        profile: AppProfile,
        slot_share: u32,
        cores: u32,
        instrumented: bool,
        now_s: f64,
    ) -> Self {
        let share = slot_share.max(1);
        Self {
            profile,
            initial_cores: share,
            cores: cores.clamp(1, share),
            variant: None,
            progress: 1.0,
            weighted_inaccuracy: 0.0,
            elapsed_s: 0.0,
            finished_at_s: Some(now_s),
            switches: 0,
            instrumented,
        }
    }

    /// Advances the application by `dt` seconds of wall-clock time under the given
    /// interference slowdown. `now_s` is the absolute experiment time at the *end* of the
    /// step (used to record the completion timestamp).
    pub fn advance(&mut self, dt: f64, batch_slowdown: f64, now_s: f64) {
        if self.is_finished() || dt <= 0.0 {
            return;
        }
        let exec_factor = self.profile.exec_factor_at(self.variant);
        let overhead = if self.instrumented {
            1.0 + self.profile.instrumentation_overhead
        } else {
            1.0
        };
        // Speed relative to the nominal (fair-share cores, precise, uninstrumented,
        // no interference) execution.
        let core_speed =
            (self.cores as f64 / self.initial_cores as f64).powf(self.profile.parallel_efficiency);
        let rate = core_speed / (exec_factor * overhead * batch_slowdown.max(1.0));
        let full_step = dt * rate / self.profile.nominal_exec_time_s;
        let remaining = 1.0 - self.progress;
        if full_step >= remaining && full_step > 0.0 {
            // Finishing step: the job only needs `remaining / full_step` of the
            // interval. Charging the whole `dt` (and stamping completion at the
            // interval end) overstated execution time by up to one decision interval.
            let used_dt = dt * (remaining / full_step);
            self.weighted_inaccuracy += remaining * self.profile.inaccuracy_at(self.variant);
            self.progress = 1.0;
            self.elapsed_s += used_dt;
            self.finished_at_s = Some(now_s - dt + used_dt);
        } else {
            self.weighted_inaccuracy += full_step * self.profile.inaccuracy_at(self.variant);
            self.progress += full_step;
            self.elapsed_s += dt;
            if self.progress >= 1.0 - 1e-12 {
                // Floating-point accumulation can land a hair under `remaining` above;
                // treat within-epsilon as complete at the interval boundary.
                self.progress = 1.0;
                self.finished_at_s = Some(now_s);
            }
        }
    }

    /// Final (or running) output-quality loss in percent: the work-weighted average of the
    /// variants used so far.
    pub fn inaccuracy_pct(&self) -> f64 {
        if self.progress <= 0.0 {
            0.0
        } else {
            self.weighted_inaccuracy / self.progress
        }
    }

    /// Execution time so far (or total, once finished), in seconds.
    pub fn execution_time_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Execution time relative to the nominal precise execution time.
    pub fn relative_execution_time(&self) -> f64 {
        self.elapsed_s / self.profile.nominal_exec_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_approx::catalog::{AppId, Catalog};

    fn canneal_state(cores: u32) -> BatchAppState {
        let profile = Catalog::default().profile(AppId::Canneal).unwrap().clone();
        BatchAppState::new(profile, cores, true)
    }

    #[test]
    fn precise_run_finishes_near_nominal_time_with_overhead() {
        let mut s = canneal_state(8);
        let nominal = s.profile().nominal_exec_time_s;
        let mut t = 0.0;
        while !s.is_finished() && t < nominal * 2.0 {
            t += 1.0;
            s.advance(1.0, 1.0, t);
        }
        assert!(s.is_finished());
        let rel = s.relative_execution_time();
        // The final partial step is pro-rated, so the only overhead left is the
        // instrumentation tool's (~4%) — the pre-fix 1.12 allowance covered up to a
        // full decision interval of completion-time inflation.
        let overhead = s.profile().instrumentation_overhead;
        assert!(
            (rel - (1.0 + overhead)).abs() < 1e-9,
            "relative execution time {rel} must equal 1 + instrumentation overhead {overhead}"
        );
        let finished_at = s.finished_at_s().expect("finished");
        assert!(
            (finished_at - nominal * (1.0 + overhead)).abs() < 1e-9,
            "completion must be stamped at the pro-rated instant, not the interval end"
        );
        assert_eq!(s.inaccuracy_pct(), 0.0);
    }

    #[test]
    fn most_approximate_variant_finishes_faster_with_quality_loss() {
        let mut s = canneal_state(8);
        let most = s.profile().most_approximate();
        s.set_variant(most);
        let mut t = 0.0;
        while !s.is_finished() && t < 100.0 {
            t += 1.0;
            s.advance(1.0, 1.0, t);
        }
        assert!(s.is_finished());
        assert!(
            s.relative_execution_time() < 0.65,
            "most-approximate canneal should run much faster"
        );
        assert!(s.inaccuracy_pct() > 3.0 && s.inaccuracy_pct() <= 5.0);
    }

    #[test]
    fn fewer_cores_slow_the_application_down() {
        let mut full = canneal_state(8);
        let mut constrained = canneal_state(8);
        constrained.reclaim_core();
        constrained.reclaim_core();
        for step in 1..=10 {
            full.advance(1.0, 1.0, step as f64);
            constrained.advance(1.0, 1.0, step as f64);
        }
        assert!(constrained.progress() < full.progress());
        assert_eq!(constrained.cores_reclaimed(), 2);
    }

    #[test]
    fn reclaim_and_return_cores_are_bounded() {
        let mut s = canneal_state(2);
        assert!(s.reclaim_core());
        assert!(!s.reclaim_core(), "the last core can never be reclaimed");
        assert!(s.return_core());
        assert!(!s.return_core(), "cannot exceed the initial allocation");
    }

    #[test]
    fn variant_switches_are_counted_and_idempotent() {
        let mut s = canneal_state(8);
        assert!(s.set_variant(Some(3)));
        assert!(!s.set_variant(Some(3)), "same variant is a no-op");
        assert!(s.set_variant(None));
        assert_eq!(s.switches(), 2);
        // Out-of-range variants are clamped to the most aggressive one.
        assert!(s.set_variant(Some(99)));
        assert_eq!(s.variant(), Some(3));
    }

    #[test]
    fn mixed_variant_run_accumulates_weighted_inaccuracy() {
        let mut s = canneal_state(8);
        let most = s.profile().most_approximate();
        let most_inacc = s.profile().inaccuracy_at(most);
        // Run half the job precise, half at the most aggressive variant.
        let mut t = 0.0;
        while s.progress() < 0.5 {
            t += 1.0;
            s.advance(1.0, 1.0, t);
        }
        s.set_variant(most);
        while !s.is_finished() && t < 200.0 {
            t += 1.0;
            s.advance(1.0, 1.0, t);
        }
        let inacc = s.inaccuracy_pct();
        assert!(
            inacc > 0.0 && inacc < most_inacc,
            "mixed run inaccuracy {inacc} must sit between 0 and {most_inacc}"
        );
    }

    #[test]
    fn interference_slowdown_extends_execution() {
        let mut clean = canneal_state(8);
        let mut contended = canneal_state(8);
        for step in 1..=20 {
            clean.advance(1.0, 1.0, step as f64);
            contended.advance(1.0, 1.3, step as f64);
        }
        assert!(contended.progress() < clean.progress());
    }

    #[test]
    fn finished_app_exerts_no_pressure() {
        let mut s = canneal_state(8);
        let mut t = 0.0;
        while !s.is_finished() {
            t += 1.0;
            s.advance(1.0, 1.0, t);
        }
        let p = s.current_pressure();
        assert_eq!(p.llc_mb, 0.0);
        assert_eq!(p.membw_gbps, 0.0);
    }
}
