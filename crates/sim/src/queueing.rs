//! Analytic open-loop tail-latency model.
//!
//! Interactive cloud services driven by open-loop load exhibit the classic hockey-stick
//! latency curve: tail latency is flat at low utilization and explodes as the offered load
//! approaches the service's (contention-derated) capacity. The model here combines a
//! lognormal service-time body with a utilization-dependent congestion factor
//! `1 / sqrt(1 - rho)` (capped near saturation), which reproduces that shape without
//! simulating every request. The request-level discrete-event simulator in
//! [`crate::events`] is used in tests to confirm the shape agrees.

use rand::rngs::SmallRng;

use pliant_telemetry::rng::{sample_lognormal, seeded_rng};
use pliant_workloads::service::ServiceProfile;

use serde::{Deserialize, Serialize};

/// z-score of the 99th percentile of the standard normal distribution.
const Z99: f64 = 2.326;

/// Analytic latency model with calibration constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Utilization cap: `rho` is clamped below this before the `1/sqrt(1-rho)` factor, so
    /// overload produces a large-but-finite violation (as observed over a finite interval).
    pub rho_cap: f64,
    /// Multiplicative lognormal noise (sigma) applied to each interval's p99 estimate,
    /// modelling run-to-run variability of tail measurements.
    pub interval_noise_sigma: f64,
    /// Probability per interval of a latency spike (GC pause, minor page fault storm,
    /// network hiccup) multiplying the tail by `spike_multiplier`.
    pub spike_probability: f64,
    /// Tail multiplier applied when a spike occurs.
    pub spike_multiplier: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            rho_cap: 0.98,
            interval_noise_sigma: 0.06,
            spike_probability: 0.015,
            spike_multiplier: 2.5,
        }
    }
}

/// Inputs for one interval's latency evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyInputs {
    /// Offered load in queries per second.
    pub qps: f64,
    /// Cores currently allocated to the interactive service.
    pub cores: u32,
    /// Capacity slowdown from interference (>= 1).
    pub capacity_slowdown: f64,
    /// Direct per-request latency inflation from interference (>= 1).
    pub direct_slowdown: f64,
}

impl LatencyModel {
    /// Service-time p99 (seconds) of the service in isolation at negligible load.
    pub fn base_p99(service: &ServiceProfile) -> f64 {
        service.base_service_time_s * (service.service_time_sigma * Z99).exp()
    }

    /// Utilization implied by the inputs.
    pub fn utilization(service: &ServiceProfile, inputs: &LatencyInputs) -> f64 {
        let capacity =
            service.per_core_rate() * inputs.cores as f64 / inputs.capacity_slowdown.max(1.0);
        if capacity <= 0.0 {
            return f64::INFINITY;
        }
        inputs.qps / capacity
    }

    /// Deterministic (noise-free) p99 tail latency in seconds for the given operating
    /// point.
    pub fn p99_deterministic(&self, service: &ServiceProfile, inputs: &LatencyInputs) -> f64 {
        let rho = Self::utilization(service, inputs);
        let congestion = 1.0 / (1.0 - rho.min(self.rho_cap)).max(1.0 - self.rho_cap).sqrt();
        Self::base_p99(service) * inputs.direct_slowdown.max(1.0) * congestion
    }

    /// p99 tail latency with per-interval measurement noise and occasional spikes.
    pub fn p99_with_noise(
        &self,
        service: &ServiceProfile,
        inputs: &LatencyInputs,
        rng: &mut SmallRng,
    ) -> f64 {
        let det = self.p99_deterministic(service, inputs);
        let noise = sample_lognormal(rng, 1.0, self.interval_noise_sigma);
        let spike = if rand::Rng::gen_range(rng, 0.0f64..1.0) < self.spike_probability {
            self.spike_multiplier
        } else {
            1.0
        };
        det * noise * spike
    }

    /// Generates `n` per-request latency samples whose empirical p99 is approximately
    /// `p99_target` and whose body follows the service's lognormal shape. These are the
    /// samples Pliant's client-side performance monitor ingests.
    pub fn sample_latencies(
        &self,
        service: &ServiceProfile,
        p99_target: f64,
        n: usize,
        rng: &mut SmallRng,
    ) -> Vec<f64> {
        let sigma = service.service_time_sigma.max(0.05);
        let median = p99_target / (sigma * Z99).exp();
        (0..n)
            .map(|_| sample_lognormal(rng, median, sigma))
            .collect()
    }

    /// Convenience helper: p99 and monitor samples for one interval, deterministic in the
    /// provided seed.
    pub fn interval(
        &self,
        service: &ServiceProfile,
        inputs: &LatencyInputs,
        samples: usize,
        seed: u64,
    ) -> (f64, Vec<f64>) {
        let mut rng = seeded_rng(seed);
        let p99 = self.p99_with_noise(service, inputs, &mut rng);
        let s = self.sample_latencies(service, p99, samples, &mut rng);
        (p99, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_telemetry::stats::exact_quantile;
    use pliant_workloads::service::ServiceId;

    fn inputs(
        service: &ServiceProfile,
        load: f64,
        cores: u32,
        cap: f64,
        direct: f64,
    ) -> LatencyInputs {
        LatencyInputs {
            qps: service.qps_at_load(load),
            cores,
            capacity_slowdown: cap,
            direct_slowdown: direct,
        }
    }

    #[test]
    fn latency_is_monotone_in_load() {
        let model = LatencyModel::default();
        for id in ServiceId::all() {
            let svc = ServiceProfile::paper_default(id);
            let mut prev = 0.0;
            for load in [0.3, 0.5, 0.7, 0.8, 0.9, 1.0, 1.1] {
                let p = model.p99_deterministic(&svc, &inputs(&svc, load, 8, 1.0, 1.0));
                assert!(p >= prev, "{id}: p99 must not decrease with load");
                prev = p;
            }
        }
    }

    #[test]
    fn every_service_meets_qos_alone_at_high_load() {
        let model = LatencyModel::default();
        for id in ServiceId::all() {
            let svc = ServiceProfile::paper_default(id);
            let p = model.p99_deterministic(&svc, &inputs(&svc, 0.75, 8, 1.0, 1.0));
            assert!(
                p < svc.qos_target_s,
                "{id}: p99 {p} must be below QoS {} when running alone",
                svc.qos_target_s
            );
        }
    }

    #[test]
    fn every_service_violates_qos_beyond_saturation() {
        let model = LatencyModel::default();
        for id in ServiceId::all() {
            let svc = ServiceProfile::paper_default(id);
            let p = model.p99_deterministic(&svc, &inputs(&svc, 1.05, 8, 1.0, 1.0));
            assert!(p > svc.qos_target_s, "{id}: overload must violate QoS");
        }
    }

    #[test]
    fn contention_slowdown_raises_latency_and_cores_recover_it() {
        let model = LatencyModel::default();
        let svc = ServiceProfile::paper_default(ServiceId::Memcached);
        let clean = model.p99_deterministic(&svc, &inputs(&svc, 0.75, 8, 1.0, 1.0));
        let contended = model.p99_deterministic(&svc, &inputs(&svc, 0.75, 8, 1.45, 1.12));
        let with_cores = model.p99_deterministic(&svc, &inputs(&svc, 0.75, 12, 1.45, 1.12));
        assert!(contended > svc.qos_target_s, "contention must violate QoS");
        assert!(contended > clean * 1.5);
        assert!(with_cores < contended, "extra cores must reduce latency");
    }

    #[test]
    fn noise_stays_within_reason() {
        let model = LatencyModel::default();
        let svc = ServiceProfile::paper_default(ServiceId::Nginx);
        let det = model.p99_deterministic(&svc, &inputs(&svc, 0.75, 8, 1.0, 1.0));
        let mut rng = seeded_rng(7);
        for _ in 0..200 {
            let noisy = model.p99_with_noise(&svc, &inputs(&svc, 0.75, 8, 1.0, 1.0), &mut rng);
            assert!(
                noisy > det * 0.6 && noisy < det * 4.0,
                "noisy {noisy} vs det {det}"
            );
        }
    }

    #[test]
    fn sampled_latencies_match_target_p99() {
        let model = LatencyModel::default();
        let svc = ServiceProfile::paper_default(ServiceId::Memcached);
        let mut rng = seeded_rng(3);
        let target = 0.000_25;
        let samples = model.sample_latencies(&svc, target, 20_000, &mut rng);
        let p99 = exact_quantile(&samples, 0.99).unwrap();
        assert!(
            (p99 - target).abs() / target < 0.10,
            "sampled p99 {p99} should approximate target {target}"
        );
    }

    #[test]
    fn interval_is_deterministic_in_seed() {
        let model = LatencyModel::default();
        let svc = ServiceProfile::paper_default(ServiceId::Nginx);
        let i = inputs(&svc, 0.8, 8, 1.2, 1.05);
        let a = model.interval(&svc, &i, 100, 99);
        let b = model.interval(&svc, &i, 100, 99);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn zero_cores_is_infinite_utilization() {
        let svc = ServiceProfile::paper_default(ServiceId::Nginx);
        let i = LatencyInputs {
            qps: 1000.0,
            cores: 0,
            capacity_slowdown: 1.0,
            direct_slowdown: 1.0,
        };
        assert!(LatencyModel::utilization(&svc, &i).is_infinite());
    }
}
