//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors a minimal
//! deterministic implementation of the `rand` API surface the pliant crates actually use:
//! [`rngs::SmallRng`] (xoshiro256++), [`SeedableRng::seed_from_u64`], the [`Rng`] helper
//! methods `gen`/`gen_range`, and [`seq::SliceRandom::shuffle`].
//!
//! The streams are deterministic and stable across runs and platforms, which is all the
//! reproduction needs; they do not match the upstream `rand` crate bit-for-bit.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word in the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the full value domain via [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Converts a random word into a uniform f64 in `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value covering the type's full domain (`u64`, `u32`, `f64` in `[0,1)`, or
    /// `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Constructing RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256++), seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Returns the generator's internal 256-bit state, for checkpointing. An RNG
        /// rebuilt from this state via [`SmallRng::from_state`] continues the stream
        /// exactly where this one left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`SmallRng::state`].
        ///
        /// The all-zero state is a fixed point of xoshiro256++ and can never be
        /// produced by [`SeedableRng::seed_from_u64`]; it is rejected.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "SmallRng::from_state: the all-zero state is invalid"
            );
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(-2.0..4.0);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
