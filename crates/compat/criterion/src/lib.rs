//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness with criterion's spelling: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. It reports mean wall-clock time per
//! iteration; it does not do statistical analysis, plotting, or regression detection.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target measurement time per benchmark (after one warm-up iteration).
const TARGET_MEASURE: Duration = Duration::from_millis(200);
/// Hard cap on measured iterations per benchmark.
const MAX_ITERS: u64 = 10_000;

/// Times closures and reports per-iteration wall-clock means.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; command-line filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall-clock budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures to time the hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, choosing an iteration count that fills the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration, also used to size the measured batch.
        let warmup_start = Instant::now();
        black_box(f());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (TARGET_MEASURE.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.measured {
        Some((total, iters)) => {
            let per_iter = total.as_secs_f64() / iters as f64;
            println!(
                "{name:<60} time: {:>12}  ({iters} iterations)",
                format_time(per_iter)
            );
        }
        None => println!("{name:<60} (no measurement taken)"),
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
