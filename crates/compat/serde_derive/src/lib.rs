//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the companion
//! `serde` shim without depending on `syn`/`quote` (crates.io is unreachable in this build
//! environment): the item is parsed with a small hand-rolled token cursor and the impl is
//! generated as a string, which `proc_macro`'s `FromStr` turns back into tokens.
//!
//! Supported shapes: non-generic structs with named fields and non-generic enums with
//! unit, tuple, or struct variants. Supported attributes: `#[serde(skip)]`,
//! `#[serde(default)]`, `#[serde(default = "path")]`, `#[serde(rename = "name")]`,
//! `#[serde(skip_serializing_if = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    default_path: Option<String>,
    rename: Option<String>,
    skip_serializing_if: Option<String>,
}

#[derive(Debug, Clone)]
struct Field {
    ident: String,
    attrs: FieldAttrs,
}

impl Field {
    fn wire_name(&self) -> String {
        self.attrs
            .rename
            .clone()
            .unwrap_or_else(|| self.ident.clone())
    }
}

#[derive(Debug, Clone)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    ident: String,
    rename: Option<String>,
    fields: VariantFields,
}

impl Variant {
    fn wire_name(&self) -> String {
        self.rename.clone().unwrap_or_else(|| self.ident.clone())
    }
}

#[derive(Debug)]
enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives `serde::Serialize` via the value-tree model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` via the value-tree model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind_kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive shim: generic types are not supported (type `{name}`)");
        }
    }

    // Skip a possible where-clause (none in this workspace) and find the body group.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && kind_kw == "struct" =>
            {
                panic!("serde derive shim: tuple structs are not supported (type `{name}`)")
            }
            Some(_) => i += 1,
            None => panic!("serde derive: no body found for `{name}`"),
        }
    };

    let kind = match kind_kw.as_str() {
        "struct" => ItemKind::Struct(parse_named_fields(body)),
        "enum" => ItemKind::Enum(parse_variants(body)),
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Parses `#[serde(...)]`-style attributes at the cursor, returning collected attrs and
/// advancing past every attribute (serde or not).
fn parse_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*i + 1) else {
            panic!("serde derive: malformed attribute");
        };
        *i += 2;
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        let arg_tokens: Vec<TokenTree> = args.stream().into_iter().collect();
        let mut j = 0;
        while j < arg_tokens.len() {
            let key = match &arg_tokens[j] {
                TokenTree::Ident(id) => id.to_string(),
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    j += 1;
                    continue;
                }
                other => panic!("serde derive: unexpected attribute token {other:?}"),
            };
            j += 1;
            let mut value: Option<String> = None;
            if let Some(TokenTree::Punct(p)) = arg_tokens.get(j) {
                if p.as_char() == '=' {
                    j += 1;
                    match arg_tokens.get(j) {
                        Some(TokenTree::Literal(lit)) => {
                            value = Some(strip_string_literal(&lit.to_string()));
                            j += 1;
                        }
                        other => {
                            panic!("serde derive: expected literal after `=`, found {other:?}")
                        }
                    }
                }
            }
            match (key.as_str(), value) {
                ("skip", None) | ("skip_serializing", None) | ("skip_deserializing", None) => {
                    attrs.skip = true;
                }
                ("default", None) => attrs.default = true,
                ("default", Some(path)) => {
                    attrs.default = true;
                    attrs.default_path = Some(path);
                }
                ("rename", Some(name)) => attrs.rename = Some(name),
                ("skip_serializing_if", Some(path)) => {
                    attrs.skip_serializing_if = Some(path);
                }
                (other, _) => {
                    panic!("serde derive shim: unsupported serde attribute `{other}`")
                }
            }
        }
    }
    attrs
}

fn strip_string_literal(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut i);
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let ident = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{ident}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { ident, attrs });
    }
    fields
}

/// Advances the cursor past a type, stopping after the top-level `,` (or at end of input).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i64 = 0;
    let mut prev_dash = false;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                '<' => angle_depth += 1,
                '>' if !prev_dash => angle_depth -= 1,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut i);
        let ident = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_top_level_elements(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip to the comma separating variants (covers explicit discriminants).
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant {
            ident,
            rename: attrs.rename,
            fields,
        });
    }
    variants
}

fn count_top_level_elements(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth: i64 = 0;
    let mut prev_dash = false;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    prev_dash = false;
                    continue;
                }
                '<' => angle_depth += 1,
                '>' if !prev_dash => angle_depth -= 1,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let push = format!(
                    "__fields.push((\"{}\".to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                    f.wire_name(),
                    f.ident
                );
                match &f.attrs.skip_serializing_if {
                    Some(path) => {
                        pushes.push_str(&format!("if !{path}(&self.{}) {{\n{push}}}\n", f.ident))
                    }
                    None => pushes.push_str(&push),
                }
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)"
            )
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vi = &v.ident;
                let wire = v.wire_name();
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vi} => ::serde::Value::Str(\"{wire}\".to_string()),\n"
                    )),
                    VariantFields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vi}(__f0) => ::serde::Value::Object(vec![(\"{wire}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vi}({}) => ::serde::Value::Object(vec![(\"{wire}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.ident.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            pushes.push_str(&format!(
                                "__inner.push((\"{}\".to_string(), ::serde::Serialize::to_value({})));\n",
                                f.wire_name(),
                                f.ident
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vi} {{ {} }} => {{\n\
                             let mut __inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![(\"{wire}\".to_string(), ::serde::Value::Object(__inner))])\n\
                             }},\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_field_read(ty_name: &str, f: &Field, source: &str) -> String {
    if f.attrs.skip {
        return match &f.attrs.default_path {
            Some(path) => format!("{}: {path}(),\n", f.ident),
            None => format!("{}: ::std::default::Default::default(),\n", f.ident),
        };
    }
    let wire = f.wire_name();
    let missing = if f.attrs.default {
        match &f.attrs.default_path {
            Some(path) => format!("{path}()"),
            None => "::std::default::Default::default()".to_string(),
        }
    } else {
        format!(
            "match ::serde::Deserialize::absent() {{\n\
             Some(__d) => __d,\n\
             None => return Err(::serde::Error::missing_field(\"{ty_name}\", \"{wire}\")),\n\
             }}"
        )
    };
    format!(
        "{}: match {source}.get(\"{wire}\") {{\n\
         Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
         None => {missing},\n\
         }},\n",
        f.ident
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut reads = String::new();
            for f in fields {
                reads.push_str(&gen_field_read(name, f, "__value"));
            }
            format!(
                "if __value.as_object().is_none() {{\n\
                 return Err(::serde::Error::unexpected(\"{name} (object)\", __value));\n\
                 }}\n\
                 Ok({name} {{\n{reads}}})"
            )
        }
        ItemKind::Enum(variants) => {
            let mut str_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vi = &v.ident;
                let wire = v.wire_name();
                match &v.fields {
                    VariantFields::Unit => str_arms.push_str(&format!(
                        "\"{wire}\" => return Ok({name}::{vi}),\n"
                    )),
                    VariantFields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{wire}\" => return Ok({name}::{vi}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let reads: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{wire}\" => {{\n\
                             let __items = __inner.as_array().ok_or_else(|| ::serde::Error::unexpected(\"{name}::{vi} data (array)\", __inner))?;\n\
                             if __items.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\"wrong tuple arity for {name}::{vi}\"));\n\
                             }}\n\
                             return Ok({name}::{vi}({}));\n\
                             }}\n",
                            reads.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut reads = String::new();
                        for f in fields {
                            reads.push_str(&gen_field_read(name, f, "__inner"));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{wire}\" => return Ok({name}::{vi} {{\n{reads}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "if let Some(__s) = __value.as_str() {{\n\
                 match __s {{\n{str_arms}_ => return Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__s}}`\"))),\n}}\n\
                 }}\n\
                 if let Some((__tag, __inner)) = __value.as_single_entry() {{\n\
                 match __tag {{\n{tagged_arms}_ => return Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__tag}}`\"))),\n}}\n\
                 }}\n\
                 Err(::serde::Error::unexpected(\"{name} (string or single-entry object)\", __value))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
