//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace vendors a compact
//! serialization framework with the same spelling as serde: `Serialize` / `Deserialize`
//! traits plus `#[derive(Serialize, Deserialize)]` macros (re-exported from the companion
//! `serde_derive` proc-macro crate).
//!
//! Unlike upstream serde's visitor architecture, this implementation serializes through an
//! explicit self-describing [`Value`] tree, which `serde_json` then prints/parses. That is
//! a deliberate simplification: the pliant workspace only needs deterministic JSON
//! round-tripping of plain data types.
//!
//! Supported field attributes: `#[serde(skip)]`, `#[serde(default)]`,
//! `#[serde(default = "path")]`, `#[serde(rename = "name")]`. Enums serialize externally
//! tagged: unit variants as strings, data variants as single-entry objects.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model, with integers kept exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or signed integer.
    Int(i64),
    /// Non-negative integer (kept separate so `u64` round-trips exactly).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved so serialization is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value coerced to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The single `(key, value)` entry, if this is a one-entry object (externally tagged
    /// enum data variants serialize this way).
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self.as_object() {
            Some([(k, v)]) => Some((k.as_str(), v)),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with an arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A required field was missing from the serialized object.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// The value had an unexpected shape.
    pub fn unexpected(ty: &str, value: &Value) -> Self {
        let shape = match value {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::UInt(_) => "an integer",
            Value::Float(_) => "a number",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        Error(format!("expected {ty}, found {shape}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when a field is absent from the serialized object (`Some` only for
    /// types with a natural absent representation, like `Option`).
    fn absent() -> Option<Self> {
        None
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! serialize_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::unexpected(stringify!($t), v))?;
                <$t>::try_from(u).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )+};
}

serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::unexpected(stringify!($t), v))?;
                <$t>::try_from(i).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )+};
}

serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::unexpected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::unexpected("f32", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::unexpected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()
            .ok_or_else(|| Error::unexpected("string", v))?
            .to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::unexpected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::unexpected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::unexpected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::unexpected("2-element array", v)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::unexpected("3-element array", v)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::unexpected("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hasher state.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::unexpected("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::unexpected("null", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn u64_round_trips_exactly() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn absent_fields_only_default_for_option() {
        assert_eq!(<Option<u32> as Deserialize>::absent(), Some(None));
        assert_eq!(<u32 as Deserialize>::absent(), None);
    }

    #[test]
    fn single_entry_object_access() {
        let v = Value::Object(vec![("Cores".to_string(), Value::UInt(2))]);
        let (k, inner) = v.as_single_entry().unwrap();
        assert_eq!(k, "Cores");
        assert_eq!(inner.as_u64(), Some(2));
    }
}
