//! Offline stand-in for `serde_json`.
//!
//! JSON printing and parsing over the vendored `serde` shim's [`Value`] tree. Output is
//! deterministic: object fields keep declaration order, floats print via Rust's shortest
//! round-trip formatting, and non-finite floats serialize as `null` (as upstream
//! serde_json does).

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Serializes a value as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parses a JSON string into a deserializable value.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid JSON keyword at byte {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated JSON string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let second = self.parse_hex4()?;
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                                } else {
                                    return Err(Error::custom("unpaired surrogate in JSON string"));
                                }
                            } else {
                                first
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = rest
                        .get(..len)
                        .ok_or_else(|| Error::custom("invalid UTF-8 in JSON string"))?;
                    s.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated unicode escape"))?;
        let text =
            std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!(
                "invalid JSON number at byte {start}"
            )));
        }
        if !is_float {
            if text.strip_prefix('-').is_some() {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid JSON number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for json in ["null", "true", "false", "42", "-17", "1.5"] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
        let v: Value = from_str("[1, 2.5, \"x\", null, {\"a\": true}]").unwrap();
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2.5,\"x\",null,{\"a\":true}]");
        let v2: Value = from_str(&s).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str("{\"a\":[1,2]}").unwrap();
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn big_u64_round_trips() {
        let big = u64::MAX - 1;
        let s = to_string(&big).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn extreme_i64_round_trips() {
        for i in [i64::MIN, i64::MIN + 1, -1, i64::MAX] {
            let s = to_string(&i).unwrap();
            let back: i64 = from_str(&s).unwrap();
            assert_eq!(back, i);
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\n\"quoted\"\tüñîçødé \\ end".to_string();
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn floats_round_trip_via_shortest_repr() {
        for f in [0.1, 1.0, -2.75e-9, 12345.6789] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
