//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace vendors a small
//! deterministic property-testing harness with proptest's spelling: the [`proptest!`]
//! macro, `prop_assert*` macros, `any::<T>()`, numeric-range strategies, tuple strategies,
//! and `proptest::collection::vec`.
//!
//! Differences from upstream: cases are drawn from a fixed deterministic seed derived from
//! the test name (no persisted failure files), there is no shrinking, and each property
//! runs a fixed number of cases ([`NUM_CASES`]).

#![forbid(unsafe_code)]

/// Number of random cases each property is checked against.
pub const NUM_CASES: usize = 64;

/// Deterministic RNG used by the harness (SplitMix64).
pub mod test_runner {
    /// A deterministic RNG for drawing test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream is fully determined by `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Returns the next word in the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// Types with a canonical full-domain strategy (see [`crate::any`]).
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    /// The strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Returns the full-domain strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length is drawn
    /// uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn name(x in strategy) { ... } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __seed: u64 = 0x5EED;
                for __b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(0x100_0000_01B3).wrapping_add(__b as u64);
                }
                let mut __rng = $crate::test_runner::TestRng::new(__seed);
                for __case in 0..$crate::NUM_CASES {
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!("property `{}` failed on case {}: {}", stringify!($name), __case, __msg);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}` ({:?} vs {:?})",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}` (both {:?})",
                stringify!($left), stringify!($right), __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec((any::<bool>(), 0.0f64..0.5), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (_, f) in v {
                prop_assert!((0.0..0.5).contains(&f));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::new(1);
        let mut b = crate::test_runner::TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
