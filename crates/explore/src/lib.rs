//! Approximation design-space exploration and pareto-frontier variant selection.
//!
//! Pliant's instrumentation system explores each application's approximation design space
//! offline (§3 of the paper): every candidate configuration is run, its execution-time and
//! output-quality trade-off is measured against precise execution, configurations whose
//! inaccuracy exceeds the 5% tolerance are discarded, and the survivors closest to the
//! pareto-optimal frontier become the ordered variant list the runtime switches between.
//!
//! This crate drives the Rust kernels in `pliant-approx` through exactly that process and
//! can bridge the measured results into the runtime's [`pliant_approx::catalog`] form.
//!
//! # Example
//!
//! ```
//! use pliant_approx::kernels::minebench::kmeans::KMeansKernel;
//! use pliant_explore::{ExplorationConfig, explore_kernel};
//!
//! let kernel = KMeansKernel::small(7);
//! let result = explore_kernel(&kernel, &ExplorationConfig::default());
//! assert!(!result.measurements.is_empty());
//! // Selected variants are ordered from closest-to-precise to most aggressive.
//! let sel = result.selected_variants();
//! for pair in sel.windows(2) {
//!     assert!(pair[0].inaccuracy_pct <= pair[1].inaccuracy_pct);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bridge;
pub mod dse;
pub mod pareto;

pub use bridge::{catalog_with_explored, catalog_with_variants};
pub use dse::{explore_kernel, ExplorationConfig, ExplorationResult, Measurement};
pub use pareto::{pareto_frontier, PointKind};
