//! Bridges offline exploration results into the runtime's application catalog.
//!
//! The DSE-to-runtime path of the paper: explore a kernel offline
//! ([`crate::explore_kernel`]), then swap the measured variant list into a calibrated
//! [`Catalog`] so the scenario engine runs co-locations against what was actually
//! measured rather than the paper-calibrated defaults.

use pliant_approx::catalog::{AppId, Catalog, VariantProfile};

use crate::dse::ExplorationResult;

/// Returns a catalog identical to `base` except that `app`'s variant list is replaced
/// with `variants` (ordered from closest-to-precise to most aggressive).
///
/// # Panics
///
/// Panics if `base` has no profile for `app`.
pub fn catalog_with_variants(base: &Catalog, app: AppId, variants: Vec<VariantProfile>) -> Catalog {
    assert!(
        base.profile(app).is_some(),
        "catalog has no profile for {app}, cannot bridge variants into it"
    );
    Catalog::from_profiles(
        base.profiles()
            .iter()
            .map(|p| {
                if p.id == app {
                    p.clone().with_variants(variants.clone())
                } else {
                    p.clone()
                }
            })
            .collect(),
    )
}

/// Returns a catalog identical to `base` except that `app`'s variants come from the
/// exploration result's selected near-pareto set.
///
/// This is the one-call DSE-to-runtime bridge:
///
/// ```
/// use pliant_approx::catalog::{AppId, Catalog};
/// use pliant_approx::kernels::kernel_for;
/// use pliant_explore::{bridge, explore_kernel, ExplorationConfig};
///
/// let kernel = kernel_for(AppId::KMeans, 7);
/// let result = explore_kernel(kernel.as_ref(), &ExplorationConfig::default());
/// let catalog = bridge::catalog_with_explored(&Catalog::default(), AppId::KMeans, &result);
/// assert_eq!(
///     catalog.profile(AppId::KMeans).unwrap().variant_count(),
///     result.selected_count()
/// );
/// ```
pub fn catalog_with_explored(base: &Catalog, app: AppId, result: &ExplorationResult) -> Catalog {
    catalog_with_variants(base, app, result.selected_variants())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::{explore_kernel, ExplorationConfig};
    use pliant_approx::kernels::kernel_for;

    #[test]
    fn bridged_catalog_swaps_only_the_target_app() {
        let base = Catalog::default();
        let kernel = kernel_for(AppId::Fasta, 5);
        let result = explore_kernel(kernel.as_ref(), &ExplorationConfig::default());
        let bridged = catalog_with_explored(&base, AppId::Fasta, &result);
        assert_eq!(
            bridged.profile(AppId::Fasta).unwrap().variant_count(),
            result.selected_count()
        );
        for app in AppId::all() {
            if app != AppId::Fasta {
                assert_eq!(
                    bridged.profile(app).unwrap(),
                    base.profile(app).unwrap(),
                    "{app} must be untouched"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot bridge")]
    fn bridging_into_an_empty_catalog_panics() {
        let empty = Catalog::from_profiles(Vec::new());
        catalog_with_variants(&empty, AppId::KMeans, Vec::new());
    }
}
