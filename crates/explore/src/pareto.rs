//! Pareto-frontier extraction over (inaccuracy, execution-time) points.

use serde::{Deserialize, Serialize};

/// Classification of a measured approximate variant in Fig. 1's scatter plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointKind {
    /// Precise execution (the green dot).
    Precise,
    /// An examined approximate variant that was not selected (blue dots).
    Examined,
    /// A variant on (or near) the pareto frontier, selected for use by the runtime
    /// (red dots).
    Selected,
}

/// Returns the indices of the points on the pareto frontier of (inaccuracy, time), i.e.
/// points for which no other point has both lower-or-equal inaccuracy and strictly lower
/// execution time (with ties broken toward lower inaccuracy).
///
/// Points are `(inaccuracy_pct, relative_execution_time)` pairs; both objectives are
/// minimized. The returned indices are sorted by increasing inaccuracy.
///
/// # Example
///
/// ```
/// use pliant_explore::pareto::pareto_frontier;
///
/// let points = vec![(0.0, 1.0), (1.0, 0.8), (2.0, 0.9), (3.0, 0.5)];
/// let frontier = pareto_frontier(&points);
/// assert_eq!(frontier, vec![0, 1, 3]); // (2.0, 0.9) is dominated by (1.0, 0.8)
/// ```
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    // Degenerate (non-finite) measurements cannot sit on a minimization frontier and
    // are excluded up front. Relying on the sort order alone would not be enough:
    // `total_cmp` places *negative* NaN — the bit pattern x86-64 actually produces for
    // `0.0/0.0` — before every real number, so a (-NaN, fast) point would otherwise
    // enter the frontier first and shadow every real point.
    let mut order: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].0.is_finite() && points[i].1.is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
    });
    let mut frontier = Vec::new();
    let mut best_time = f64::INFINITY;
    for &i in &order {
        let (_, time) = points[i];
        if time < best_time - 1e-12 {
            frontier.push(i);
            best_time = time;
        }
    }
    frontier
}

/// Distance-based near-pareto selection: returns the indices of points whose execution
/// time is within `tolerance` (relative) of the frontier at their inaccuracy level. The
/// paper selects variants "close to" the pareto-optimal frontier rather than exactly on
/// it, which this mirrors.
pub fn near_pareto(points: &[(f64, f64)], tolerance: f64) -> Vec<usize> {
    let frontier = pareto_frontier(points);
    if frontier.is_empty() {
        return Vec::new();
    }
    let mut selected = Vec::new();
    for (i, &(inacc, time)) in points.iter().enumerate() {
        // The frontier time at this inaccuracy level is the best time among frontier
        // points with inaccuracy <= this point's inaccuracy.
        let frontier_time = frontier
            .iter()
            .filter(|&&f| points[f].0 <= inacc + 1e-12)
            .map(|&f| points[f].1)
            .fold(f64::INFINITY, f64::min);
        if frontier_time.is_finite() && time <= frontier_time * (1.0 + tolerance) {
            selected.push(i);
        }
    }
    // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN inaccuracy must not panic the
    // whole exploration (it simply sorts last and is never within tolerance anyway).
    selected.sort_by(|&a, &b| points[a].0.total_cmp(&points[b].0));
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_frontier(&[]).is_empty());
        assert!(near_pareto(&[], 0.05).is_empty());
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        assert_eq!(pareto_frontier(&[(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn dominated_points_are_excluded() {
        let points = vec![(0.0, 1.0), (1.0, 0.8), (2.0, 0.9), (3.0, 0.5), (4.0, 0.55)];
        let frontier = pareto_frontier(&points);
        assert_eq!(frontier, vec![0, 1, 3]);
    }

    #[test]
    fn frontier_is_monotone_decreasing_in_time() {
        let points = vec![(0.5, 0.9), (1.5, 0.7), (2.5, 0.6), (0.1, 1.0), (3.0, 0.4)];
        let frontier = pareto_frontier(&points);
        let times: Vec<f64> = frontier.iter().map(|&i| points[i].1).collect();
        assert!(times.windows(2).all(|w| w[1] < w[0]));
        let inaccs: Vec<f64> = frontier.iter().map(|&i| points[i].0).collect();
        assert!(inaccs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn near_pareto_includes_frontier_and_close_points() {
        let points = vec![(0.0, 1.0), (1.0, 0.8), (1.1, 0.81), (2.0, 0.78), (3.0, 0.5)];
        let near = near_pareto(&points, 0.05);
        let frontier = pareto_frontier(&points);
        for f in &frontier {
            assert!(near.contains(f), "frontier point {f} must be selected");
        }
        assert!(
            near.contains(&2),
            "a point within 5% of the frontier should be kept"
        );
    }

    #[test]
    fn nan_inputs_do_not_panic_and_never_shadow_real_points() {
        // Regression: both sorts used `partial_cmp(..).unwrap()` and panicked on NaN.
        // Both NaN signs are exercised — runtime arithmetic (`0.0/0.0`) yields
        // *negative* NaN on x86-64, which `total_cmp` orders before every real
        // number, so an unfiltered sort would let a (-NaN, fast) point shadow the
        // whole frontier.
        // `f64::NAN` carries the positive bit pattern; negation flips the sign bit,
        // giving the negative NaN that `0.0 / 0.0` produces at runtime on x86-64.
        let runtime_nan = -f64::NAN;
        let points = vec![
            (f64::NAN, 0.9),
            (0.0, 1.0),
            (1.0, 0.8),
            (2.0, runtime_nan),
            (3.0, 0.5),
            (runtime_nan, 0.1),
        ];
        let frontier = pareto_frontier(&points);
        assert_eq!(
            frontier,
            vec![1, 2, 4],
            "exactly the real frontier points must survive NaN neighbours"
        );
        let near = near_pareto(&points, 0.05);
        for f in &frontier {
            assert!(near.contains(f), "frontier point {f} must be selected");
        }
        // NaN coordinates fail every `<=` tolerance comparison, so those points are
        // simply not selected.
        assert!(!near.contains(&0) && !near.contains(&3) && !near.contains(&5));
        // All-NaN input degenerates gracefully too.
        let all_nan = vec![(f64::NAN, f64::NAN); 3];
        assert!(pareto_frontier(&all_nan).is_empty());
        assert!(near_pareto(&all_nan, 0.05).is_empty());
    }

    proptest! {
        #[test]
        fn prop_frontier_points_are_mutually_nondominated(
            points in proptest::collection::vec((0.0f64..10.0, 0.1f64..2.0), 1..60)
        ) {
            let frontier = pareto_frontier(&points);
            for &a in &frontier {
                for &b in &frontier {
                    if a == b { continue; }
                    let dominated = points[b].0 <= points[a].0 && points[b].1 < points[a].1;
                    prop_assert!(!dominated, "frontier point {a} is dominated by {b}");
                }
            }
        }

        #[test]
        fn prop_frontier_subset_of_near_pareto(
            points in proptest::collection::vec((0.0f64..10.0, 0.1f64..2.0), 1..60)
        ) {
            let frontier = pareto_frontier(&points);
            let near = near_pareto(&points, 0.02);
            for f in frontier {
                prop_assert!(near.contains(&f));
            }
        }
    }
}
