//! Design-space exploration driver.
//!
//! Runs every candidate configuration of a kernel, measures relative execution time (via
//! the kernel's deterministic work counter) and output inaccuracy against precise
//! execution, prunes configurations above the quality threshold, and selects the variants
//! near the pareto frontier — reproducing the paper's §3 process and the data behind the
//! odd rows of Fig. 1.

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::VariantProfile;
use pliant_approx::kernel::{ApproxConfig, ApproxKernel};

use crate::pareto::{near_pareto, PointKind};

/// Configuration of the exploration process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplorationConfig {
    /// Maximum tolerable output-quality loss in percent (5% in the paper).
    pub quality_threshold_pct: f64,
    /// Relative execution-time tolerance for "close to the pareto frontier" selection.
    pub pareto_tolerance: f64,
    /// Maximum number of variants to hand to the runtime (the paper observes between 2 and
    /// 8 admissible variants per application).
    pub max_selected: usize,
}

impl Default for ExplorationConfig {
    fn default() -> Self {
        Self {
            quality_threshold_pct: 5.0,
            pareto_tolerance: 0.03,
            max_selected: 8,
        }
    }
}

/// Measurement of one examined configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Label of the configuration.
    pub label: String,
    /// Output inaccuracy versus precise execution, in percent.
    pub inaccuracy_pct: f64,
    /// Execution time (work) relative to precise execution.
    pub relative_time: f64,
    /// Bytes touched relative to precise execution (memory-traffic proxy).
    pub relative_bytes: f64,
    /// How the point is classified in the Fig. 1 scatter plot.
    pub kind: PointKind,
}

/// Full result of exploring one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplorationResult {
    /// Application name (the kernel's name).
    pub app: String,
    /// All measurements: the precise point first, then every examined configuration.
    pub measurements: Vec<Measurement>,
    /// Indices (into `measurements`) of the selected near-pareto variants, ordered from
    /// closest-to-precise to most aggressive.
    pub selected: Vec<usize>,
}

impl ExplorationResult {
    /// The selected variants as catalog-style [`VariantProfile`]s, ordered from
    /// closest-to-precise to most aggressive.
    ///
    /// The LLC / memory-bandwidth factors are derived from the measured relative memory
    /// traffic, which is the kernel-level proxy the paper's runtime also relies on
    /// (approximation lowers contention by touching less data).
    pub fn selected_variants(&self) -> Vec<VariantProfile> {
        self.selected
            .iter()
            .map(|&i| {
                let m = &self.measurements[i];
                VariantProfile::new(
                    m.label.clone(),
                    m.relative_time,
                    m.inaccuracy_pct,
                    m.relative_bytes,
                    m.relative_bytes,
                )
            })
            .collect()
    }

    /// Number of variants selected.
    pub fn selected_count(&self) -> usize {
        self.selected.len()
    }
}

/// Explores one kernel's candidate configurations.
pub fn explore_kernel<K: ApproxKernel + ?Sized>(
    kernel: &K,
    config: &ExplorationConfig,
) -> ExplorationResult {
    let precise = kernel.run(&ApproxConfig::precise());
    let precise_ops = precise.cost.ops.max(1e-9);
    let precise_bytes = precise.cost.bytes_touched.max(1e-9);

    let mut measurements = vec![Measurement {
        label: "precise".to_string(),
        inaccuracy_pct: 0.0,
        relative_time: 1.0,
        relative_bytes: 1.0,
        kind: PointKind::Precise,
    }];

    for candidate in kernel.candidate_configs() {
        let run = kernel.run(&candidate);
        measurements.push(Measurement {
            label: candidate.label.clone(),
            inaccuracy_pct: run.output.inaccuracy_vs(&precise.output),
            relative_time: run.cost.ops / precise_ops,
            relative_bytes: run.cost.bytes_touched / precise_bytes,
            kind: PointKind::Examined,
        });
    }

    // Admissible points: inaccuracy within the threshold, and strictly faster than precise
    // (a variant that saves no work is useless to the runtime), excluding the precise
    // point itself.
    let admissible: Vec<usize> = measurements
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, m)| m.inaccuracy_pct <= config.quality_threshold_pct && m.relative_time < 1.0)
        .map(|(i, _)| i)
        .collect();

    let points: Vec<(f64, f64)> = admissible
        .iter()
        .map(|&i| {
            (
                measurements[i].inaccuracy_pct,
                measurements[i].relative_time,
            )
        })
        .collect();
    let near = near_pareto(&points, config.pareto_tolerance);

    let mut selected: Vec<usize> = near.iter().map(|&k| admissible[k]).collect();
    // Order from closest-to-precise (lowest inaccuracy) to most aggressive, deduplicating
    // points with nearly identical trade-offs, and cap the list length. `total_cmp`
    // keeps the sort total even if a kernel's inaccuracy metric degenerates to NaN.
    selected.sort_by(|&a, &b| {
        measurements[a]
            .inaccuracy_pct
            .total_cmp(&measurements[b].inaccuracy_pct)
    });
    selected.dedup_by(|&mut a, &mut b| {
        (measurements[a].inaccuracy_pct - measurements[b].inaccuracy_pct).abs() < 0.05
            && (measurements[a].relative_time - measurements[b].relative_time).abs() < 0.02
    });
    if config.max_selected == 0 {
        // A zero cap means "select nothing": the caller only wants the measurement
        // scatter (every point stays `Examined`).
        selected.clear();
    } else if selected.len() > config.max_selected {
        if config.max_selected == 1 {
            // A single slot cannot span both extremes; keep the most aggressive
            // admissible variant — the one a single-knob runtime saves the most work
            // with. (The even-spread formula below divides by `max_selected - 1`.)
            selected = vec![*selected.last().expect("selected is non-empty here")];
        } else {
            // Keep an evenly-spread subset including the extremes.
            let n = selected.len();
            let keep: Vec<usize> = (0..config.max_selected)
                .map(|k| selected[k * (n - 1) / (config.max_selected - 1)])
                .collect();
            selected = keep;
            selected.dedup();
        }
    }
    for &i in &selected {
        measurements[i].kind = PointKind::Selected;
    }

    ExplorationResult {
        app: kernel.name().to_string(),
        measurements,
        selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_approx::catalog::AppId;
    use pliant_approx::kernels::kernel_for;

    #[test]
    fn exploration_of_kmeans_selects_ordered_variants() {
        let kernel = kernel_for(AppId::KMeans, 5);
        let result = explore_kernel(kernel.as_ref(), &ExplorationConfig::default());
        assert_eq!(result.app, "kmeans");
        assert!(result.measurements.len() > 5);
        assert!(
            result.selected_count() >= 1,
            "kmeans must have at least one admissible variant"
        );
        let variants = result.selected_variants();
        for w in variants.windows(2) {
            assert!(w[0].inaccuracy_pct <= w[1].inaccuracy_pct);
        }
        for v in &variants {
            assert!(v.exec_time_factor < 1.0);
            assert!(v.inaccuracy_pct <= 5.0);
        }
    }

    #[test]
    fn precise_point_is_always_first_and_marked() {
        let kernel = kernel_for(AppId::Raytrace, 5);
        let result = explore_kernel(kernel.as_ref(), &ExplorationConfig::default());
        assert_eq!(result.measurements[0].kind, PointKind::Precise);
        assert_eq!(result.measurements[0].relative_time, 1.0);
        assert!(!result.selected.contains(&0));
    }

    #[test]
    fn selected_points_respect_quality_threshold() {
        let strict = ExplorationConfig {
            quality_threshold_pct: 2.0,
            ..ExplorationConfig::default()
        };
        let kernel = kernel_for(AppId::Canneal, 5);
        let result = explore_kernel(kernel.as_ref(), &strict);
        for &i in &result.selected {
            assert!(result.measurements[i].inaccuracy_pct <= 2.0);
        }
    }

    #[test]
    fn max_selected_caps_variant_count() {
        let capped = ExplorationConfig {
            max_selected: 3,
            ..ExplorationConfig::default()
        };
        let kernel = kernel_for(AppId::Bayesian, 5);
        let result = explore_kernel(kernel.as_ref(), &capped);
        assert!(result.selected_count() <= 3);
    }

    #[test]
    fn max_selected_of_one_keeps_the_most_aggressive_variant() {
        // Regression: `k * (n - 1) / (max_selected - 1)` divided by zero here.
        let one = ExplorationConfig {
            max_selected: 1,
            ..ExplorationConfig::default()
        };
        for app in [AppId::KMeans, AppId::Canneal, AppId::Bayesian] {
            let kernel = kernel_for(app, 5);
            let result = explore_kernel(kernel.as_ref(), &one);
            assert_eq!(result.selected_count(), 1, "{app}");
            let unlimited = explore_kernel(kernel.as_ref(), &ExplorationConfig::default());
            if unlimited.selected_count() > 1 {
                // The surviving variant is the most aggressive admissible one.
                let kept = &result.measurements[result.selected[0]];
                let max_inacc = unlimited
                    .selected
                    .iter()
                    .map(|&i| unlimited.measurements[i].inaccuracy_pct)
                    .fold(f64::NEG_INFINITY, f64::max);
                assert!(
                    (kept.inaccuracy_pct - max_inacc).abs() < 1e-12,
                    "{app}: kept {} vs most aggressive {max_inacc}",
                    kept.inaccuracy_pct
                );
            }
        }
    }

    #[test]
    fn max_selected_of_zero_selects_nothing() {
        let none = ExplorationConfig {
            max_selected: 0,
            ..ExplorationConfig::default()
        };
        let kernel = kernel_for(AppId::KMeans, 5);
        let result = explore_kernel(kernel.as_ref(), &none);
        assert_eq!(result.selected_count(), 0);
        assert!(result.selected_variants().is_empty());
        // Every examined point stays unmarked.
        assert!(result
            .measurements
            .iter()
            .all(|m| m.kind != PointKind::Selected));
    }

    #[test]
    fn several_representative_kernels_yield_admissible_variants() {
        for app in [
            AppId::KMeans,
            AppId::Plsa,
            AppId::Hmmer,
            AppId::Fasta,
            AppId::Canneal,
        ] {
            let kernel = kernel_for(app, 11);
            let result = explore_kernel(kernel.as_ref(), &ExplorationConfig::default());
            assert!(
                result.selected_count() >= 1,
                "{app} produced no admissible variants"
            );
        }
    }
}
