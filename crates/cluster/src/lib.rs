//! Multi-node fleet simulation: Pliant at cluster scale.
//!
//! The paper's headline result is fleet-level: approximation-aware co-location raises
//! effective machine utilization, so the same tail-latency QoS is served with **fewer
//! machines**. This crate lifts the single-node reproduction to an N-node fleet in
//! which every node runs the exact single-node loop — a
//! [`ColocationSim`](pliant_sim::colocation::ColocationSim) driven by its own
//! monitor/policy/actuator — while three fleet-level components couple the nodes
//! between decision intervals:
//!
//! * [`balancer`] — splits the cluster-wide offered load into per-node load each
//!   interval ([`BalancerKind::RoundRobin`], [`BalancerKind::LeastLoaded`],
//!   [`BalancerKind::PowerOfTwoChoices`]).
//! * [`scheduler`] — admits queued batch jobs into node slots freed by completed jobs
//!   ([`SchedulerKind::FirstFit`], [`SchedulerKind::UtilizationAware`], and the
//!   approximation-aware [`SchedulerKind::QosSlackAware`]).
//! * [`sim`] / [`engine`] — the fleet simulator and its integration with the core
//!   [`Engine`](pliant_core::engine::Engine): [`ClusterEngineExt::run_cluster`] fans
//!   the independent node updates out over the engine's worker threads and produces
//!   byte-identical output to a serial run.
//! * [`population`] — the population/instance split behind hyperscale fleets: the
//!   logical fleet is grouped into clusters of interchangeable nodes, and
//!   [`FleetApproximation::Clustered`] simulates one representative per cluster under
//!   common random numbers, replicating its histogram/QoS/energy contributions per
//!   replica. [`FleetApproximation::Exact`] (the default) simulates every node and is
//!   byte-identical to the pre-population simulator.
//!
//! Fleet metrics come from merging every node's latency histogram
//! ([`LatencyHistogram::try_merge`](pliant_telemetry::histogram::LatencyHistogram::try_merge)),
//! so the fleet p99 is the exact quantile over every request in the fleet — the number
//! the machines-needed-at-QoS-target search ([`outcome::machines_needed`]) minimizes.
//!
//! # Example
//!
//! ```
//! use pliant_approx::catalog::AppId;
//! use pliant_cluster::prelude::*;
//! use pliant_core::engine::Engine;
//! use pliant_workloads::service::ServiceId;
//!
//! let scenario = ClusterScenario::builder(ServiceId::Memcached)
//!     .nodes(3)
//!     .jobs(vec![AppId::Canneal, AppId::Snp, AppId::Bayesian, AppId::KMeans])
//!     .avg_node_load(0.6)
//!     .horizon_intervals(20)
//!     .build();
//! let outcome = Engine::new().parallel().run_cluster(&scenario);
//! assert_eq!(outcome.nodes, 3);
//! println!("fleet p99/QoS = {:.2}", outcome.fleet_tail_latency_ratio);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autoscaler;
pub mod balancer;
pub mod engine;
pub mod faults;
pub mod node;
pub mod outcome;
mod pool;
pub mod population;
pub mod scenario;
pub mod scheduler;
pub mod sim;
pub mod suite;
pub mod topology;

pub use autoscaler::{
    Autoscaler, AutoscalerAction, AutoscalerConfig, AutoscalerSnapshot, NodePowerState,
};
pub use balancer::{BalancerKind, LoadBalancer};
pub use engine::{ClusterEngineExt, ClusterRun, ClusterRunCheckpoint};
pub use faults::{
    FaultKind, FaultProfile, FaultProfileError, FaultStateSnapshot, FaultStats, GroupOutage,
    NodeHealth, RackOutage, ScheduledFault,
};
pub use node::{ClusterNode, NodeCheckpoint, NodeInterval, NodeSnapshot};
pub use outcome::{machines_needed, ClusterOutcome, NodeOutcome};
pub use population::{InstancePlan, NodeGroup, NodePopulation};
pub use scenario::{
    ClusterScenario, ClusterScenarioBuilder, ClusterScenarioError, FleetApproximation,
};
pub use scheduler::{BatchScheduler, SchedulerKind, SchedulerStats};
pub use sim::{ClusterCheckpoint, ClusterInterval, ClusterSim, CLUSTER_CHECKPOINT_VERSION};
pub use suite::{ClusterCellOutcome, ClusterSuite, ClusterSuiteError, ClusterSweepAxis};
pub use topology::{Rack, Topology, TopologyConfig, TopologyConfigError};

/// Commonly-used items, re-exported for convenience.
pub mod prelude {
    pub use crate::autoscaler::{AutoscalerConfig, NodePowerState};
    pub use crate::balancer::BalancerKind;
    pub use crate::engine::{ClusterEngineExt, ClusterRun, ClusterRunCheckpoint};
    pub use crate::faults::{
        FaultKind, FaultProfile, FaultStats, GroupOutage, RackOutage, ScheduledFault,
    };
    pub use crate::outcome::{machines_needed, ClusterOutcome, NodeOutcome};
    pub use crate::population::NodePopulation;
    pub use crate::scenario::{
        ClusterScenario, ClusterScenarioBuilder, ClusterScenarioError, FleetApproximation,
    };
    pub use crate::scheduler::SchedulerKind;
    pub use crate::sim::{ClusterInterval, ClusterSim};
    pub use crate::suite::{ClusterCellOutcome, ClusterSuite, ClusterSweepAxis};
    pub use crate::topology::{Topology, TopologyConfig};
}
