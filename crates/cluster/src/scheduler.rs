//! Fleet-level batch-job scheduling: a queue of approximate jobs placed onto nodes.
//!
//! Every node exposes a fixed number of batch slots (its co-location width). A slot is
//! *free* once its current job has finished; each decision interval the scheduler admits
//! queued jobs into free slots, choosing the node by policy. The placement itself is
//! performed by the cluster simulator through
//! [`ColocationSim::replace_app`](pliant_sim::colocation::ColocationSim::replace_app), so
//! the new job inherits the slot's core state and the per-node Pliant controller keeps
//! its ledger.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::AppId;

use crate::node::NodeSnapshot;

/// Selector for the built-in job-placement policies.
///
/// Serializes as its display name (the same string [`SchedulerKind::name`] returns), so
/// JSON result rows are tagged `"first-fit"`, `"utilization-aware"`, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Place each job on the lowest-indexed node with a free slot.
    #[serde(rename = "first-fit")]
    FirstFit,
    /// Place each job on the free node whose interactive service is least utilized —
    /// the classic interference-oblivious heuristic.
    #[serde(rename = "utilization-aware")]
    UtilizationAware,
    /// Approximation-aware placement: prefer the free node with the most tail-latency
    /// slack relative to its QoS target. A node with slack can absorb a fresh
    /// (initially precise) co-runner without violating QoS, while a node already near
    /// its target would immediately force the runtime to approximate the newcomer.
    #[serde(rename = "qos-slack")]
    QosSlackAware,
}

impl SchedulerKind {
    /// Every built-in scheduler, in reporting order.
    pub fn all() -> [SchedulerKind; 3] {
        [
            SchedulerKind::FirstFit,
            SchedulerKind::UtilizationAware,
            SchedulerKind::QosSlackAware,
        ]
    }

    /// Short name used in result rows (also the serialized representation).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::FirstFit => "first-fit",
            SchedulerKind::UtilizationAware => "utilization-aware",
            SchedulerKind::QosSlackAware => "qos-slack",
        }
    }

    /// Picks the node to place the next job on, among nodes that currently have at
    /// least one free slot. Returns `None` when no node has capacity. Ties break toward
    /// the lowest node index, keeping every policy fully deterministic.
    pub fn choose(&self, snapshots: &[NodeSnapshot]) -> Option<usize> {
        let candidates = snapshots.iter().filter(|s| s.free_slots > 0);
        match self {
            SchedulerKind::FirstFit => candidates.map(|s| s.index).min(),
            // `total_cmp`, not `partial_cmp(..).expect(..)`: utilizations and slack
            // fractions are finite by construction today, but a NaN introduced by a
            // future model change must degrade to a deterministic placement (NaN sorts
            // as the largest value), not panic the whole fleet step.
            SchedulerKind::UtilizationAware => candidates
                .min_by(|a, b| {
                    a.utilization
                        .total_cmp(&b.utilization)
                        .then(a.index.cmp(&b.index))
                })
                .map(|s| s.index),
            SchedulerKind::QosSlackAware => candidates
                .max_by(|a, b| {
                    a.slack_fraction()
                        .total_cmp(&b.slack_fraction())
                        // On equal slack prefer the *lower* index, so reverse the
                        // index order inside a max_by.
                        .then(b.index.cmp(&a.index))
                })
                .map(|s| s.index),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Running totals the scheduler accumulates over a cluster run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Jobs handed to the scheduler in total (initial placements plus queue).
    pub submitted: usize,
    /// Jobs placed onto a node so far (including the initial placements).
    pub placed: usize,
    /// Jobs that have run to completion.
    pub completed: usize,
}

/// The fleet-level batch scheduler: a FIFO job queue plus a placement policy.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    kind: SchedulerKind,
    queue: VecDeque<AppId>,
    stats: SchedulerStats,
}

impl BatchScheduler {
    /// Creates a scheduler over the given queued jobs (submission order is preserved;
    /// `initial_placements` jobs are assumed to have been placed onto nodes already and
    /// only counted in the statistics).
    pub fn new(
        kind: SchedulerKind,
        queued: impl IntoIterator<Item = AppId>,
        initial_placements: usize,
    ) -> Self {
        let queue: VecDeque<AppId> = queued.into_iter().collect();
        Self {
            kind,
            stats: SchedulerStats {
                submitted: initial_placements + queue.len(),
                placed: initial_placements,
                completed: 0,
            },
            queue,
        }
    }

    /// The placement policy.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Jobs still waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Records `count` job completions reported by the nodes.
    pub fn record_completions(&mut self, count: usize) {
        self.stats.completed += count;
    }

    /// Returns `weight` logical copies of a job lost on a crashed node to the back of
    /// the queue. The lost placement is uncounted (`placed` decreases by `weight`), so
    /// the stats keep the invariant `submitted = placed + pending` and a later
    /// re-placement counts the job again.
    pub fn requeue(&mut self, app: AppId, weight: usize) {
        for _ in 0..weight {
            self.queue.push_back(app);
        }
        self.stats.placed = self.stats.placed.saturating_sub(weight);
    }

    /// The queued jobs in submission order, for checkpointing.
    pub fn queue_snapshot(&self) -> Vec<AppId> {
        self.queue.iter().copied().collect()
    }

    /// Rebuilds a scheduler from checkpointed queue contents and statistics.
    pub fn restore(kind: SchedulerKind, queue: Vec<AppId>, stats: SchedulerStats) -> Self {
        Self {
            kind,
            queue: queue.into(),
            stats,
        }
    }

    /// The next job to place, if the policy finds a node with capacity: returns
    /// `(node_index, app)` and pops the job from the queue. `snapshots` must reflect
    /// current free-slot counts; the caller performs the actual placement and calls this
    /// again (with updated snapshots) until it returns `None`.
    pub fn pop_placement(&mut self, snapshots: &[NodeSnapshot]) -> Option<(usize, AppId)> {
        if self.queue.is_empty() {
            return None;
        }
        let node = self.kind.choose(snapshots)?;
        // pliant-lint: allow(panic-hygiene): guarded by the is_empty() early return.
        let app = self.queue.pop_front().expect("queue checked non-empty");
        self.stats.placed += 1;
        Some((node, app))
    }

    /// Clustered-fleet variant of [`Self::pop_placement`]: the chosen instance stands
    /// for `weights[instance]` logical nodes, each of which would have absorbed one
    /// queued job this round, so up to that many jobs are popped as one batch and the
    /// returned `(instance, app, batch)` places the *first* popped job on the
    /// representative at replica weight `batch`. The jobs a batch collapses need not be
    /// identical — running the front job as the batch's representative is part of the
    /// clustered approximation (under common random numbers the queue is a
    /// statistically homogeneous mix), and with unit weights the batch is always one
    /// job, identical to the exact path.
    ///
    /// # Panics
    ///
    /// Panics if the chosen instance's weight is zero.
    pub fn pop_placement_grouped(
        &mut self,
        snapshots: &[NodeSnapshot],
        weights: &[usize],
    ) -> Option<(usize, AppId, usize)> {
        if self.queue.is_empty() {
            return None;
        }
        let node = self.kind.choose(snapshots)?;
        assert!(weights[node] > 0, "instance weights must be positive");
        let batch = weights[node].min(self.queue.len());
        // pliant-lint: allow(panic-hygiene): guarded by the is_empty() early return.
        let app = self.queue.pop_front().expect("queue checked non-empty");
        for _ in 1..batch {
            self.queue.pop_front();
        }
        self.stats.placed += batch;
        Some((node, app, batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(index: usize, free: usize, util: f64, p99: f64) -> NodeSnapshot {
        NodeSnapshot {
            index,
            smoothed_p99_s: p99,
            utilization: util,
            free_slots: free,
            qos_target_s: 0.01,
        }
    }

    #[test]
    fn first_fit_takes_the_lowest_free_node() {
        let snaps = [
            snapshot(0, 0, 0.1, 0.001),
            snapshot(1, 1, 0.9, 0.009),
            snapshot(2, 2, 0.1, 0.001),
        ];
        assert_eq!(SchedulerKind::FirstFit.choose(&snaps), Some(1));
    }

    #[test]
    fn utilization_aware_takes_the_idlest_free_node() {
        let snaps = [
            snapshot(0, 1, 0.8, 0.001),
            snapshot(1, 1, 0.2, 0.009),
            snapshot(2, 0, 0.0, 0.000),
        ];
        assert_eq!(SchedulerKind::UtilizationAware.choose(&snaps), Some(1));
    }

    #[test]
    fn qos_slack_aware_takes_the_node_with_most_headroom() {
        let snaps = [
            snapshot(0, 1, 0.2, 0.009), // 10% slack
            snapshot(1, 1, 0.9, 0.002), // 80% slack
            snapshot(2, 1, 0.1, 0.012), // violating
        ];
        assert_eq!(SchedulerKind::QosSlackAware.choose(&snaps), Some(1));
        // Ties break toward the lower index.
        let tied = [snapshot(0, 1, 0.5, 0.004), snapshot(1, 1, 0.5, 0.004)];
        assert_eq!(SchedulerKind::QosSlackAware.choose(&tied), Some(0));
    }

    #[test]
    fn no_capacity_means_no_placement() {
        let snaps = [snapshot(0, 0, 0.2, 0.001), snapshot(1, 0, 0.2, 0.001)];
        for kind in SchedulerKind::all() {
            assert_eq!(kind.choose(&snaps), None);
        }
    }

    #[test]
    fn scheduler_drains_its_queue_and_counts() {
        let mut s = BatchScheduler::new(
            SchedulerKind::FirstFit,
            [AppId::Canneal, AppId::Snp],
            4, // four jobs already placed at cluster construction
        );
        assert_eq!(s.stats().submitted, 6);
        assert_eq!(s.stats().placed, 4);
        assert_eq!(s.pending(), 2);
        let snaps = [snapshot(0, 1, 0.5, 0.001)];
        assert_eq!(s.pop_placement(&snaps), Some((0, AppId::Canneal)));
        assert_eq!(s.pop_placement(&[snapshot(0, 0, 0.5, 0.001)]), None);
        assert_eq!(s.pop_placement(&snaps), Some((0, AppId::Snp)));
        assert_eq!(s.pop_placement(&snaps), None, "queue exhausted");
        s.record_completions(3);
        assert_eq!(s.stats().placed, 6);
        assert_eq!(s.stats().completed, 3);
    }

    #[test]
    fn grouped_placement_pops_replica_sized_batches() {
        let mut s = BatchScheduler::new(
            SchedulerKind::FirstFit,
            [AppId::Canneal, AppId::Snp, AppId::Raytrace, AppId::Canneal],
            0,
        );
        let snaps = [snapshot(0, 1, 0.5, 0.001), snapshot(1, 1, 0.5, 0.001)];
        // Instance 0 stands for 3 logical nodes: one batch of 3 collapses onto it.
        assert_eq!(
            s.pop_placement_grouped(&snaps, &[3, 2]),
            Some((0, AppId::Canneal, 3))
        );
        assert_eq!(s.stats().placed, 3);
        // The tail batch is clipped to the remaining queue.
        assert_eq!(
            s.pop_placement_grouped(&snaps, &[3, 2]),
            Some((0, AppId::Canneal, 1))
        );
        assert_eq!(s.pop_placement_grouped(&snaps, &[3, 2]), None);
        // Unit weights behave exactly like pop_placement.
        let mut unit = BatchScheduler::new(SchedulerKind::FirstFit, [AppId::Snp], 0);
        assert_eq!(
            unit.pop_placement_grouped(&snaps, &[1, 1]),
            Some((0, AppId::Snp, 1))
        );
    }

    #[test]
    fn names_are_stable_and_serializable() {
        for kind in SchedulerKind::all() {
            let json = serde_json::to_string(&kind).expect("serializable");
            assert_eq!(json, format!("\"{}\"", kind.name()));
            let back: SchedulerKind = serde_json::from_str(&json).expect("deserializable");
            assert_eq!(back, kind);
        }
    }
}
