//! Executing cluster scenarios and suites on the core [`Engine`].
//!
//! [`ClusterEngineExt`] extends [`pliant_core::engine::Engine`] with fleet execution:
//! the engine's catalog is shared with every node and its [`ExecMode`] decides how many
//! worker threads the fleet's node updates fan out over. As everywhere else in this
//! codebase, parallelism changes wall-clock time, never output — a serial and a parallel
//! engine produce byte-identical [`ClusterOutcome`]s for the same scenario.

use pliant_core::engine::{Engine, ExecMode};
use pliant_telemetry::histogram::LatencyHistogram;
use pliant_telemetry::obs::{EventLog, ObsLevel};
use pliant_telemetry::series::{TimeSeries, TraceBundle};
use serde::{Deserialize, Serialize};

use crate::outcome::{ClusterOutcome, NodeOutcome};
use crate::scenario::ClusterScenario;
use crate::sim::{ClusterCheckpoint, ClusterSim, CLUSTER_CHECKPOINT_VERSION};
use crate::suite::{ClusterCellOutcome, ClusterSuite};

/// Fleet execution on the core [`Engine`]; see the module docs.
pub trait ClusterEngineExt {
    /// Runs one cluster scenario to completion.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`ClusterScenario::validate`] or names an
    /// application missing from the engine's catalog.
    fn run_cluster(&self, scenario: &ClusterScenario) -> ClusterOutcome;

    /// Runs one cluster scenario with observability enabled at `level`, returning the
    /// outcome plus the merged fleet-wide decision-event stream (see
    /// [`pliant_telemetry::obs`]). With [`ObsLevel::Off`] this is exactly
    /// [`Self::run_cluster`] plus an empty log; the simulation is byte-identical at
    /// every level — tracing observes decisions, it never alters them.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`ClusterScenario::validate`] or names an
    /// application missing from the engine's catalog.
    fn run_cluster_traced(
        &self,
        scenario: &ClusterScenario,
        level: ObsLevel,
    ) -> (ClusterOutcome, EventLog);

    /// Runs every cell of a cluster suite, returning the outcomes in cell-index order.
    ///
    /// Cells execute sequentially; a parallel engine parallelizes *within* each fleet
    /// (across its nodes). For sweeps of small fleets on many-core machines that
    /// leaves cores idle — cell-level fan-out across whole fleets is a possible future
    /// extension, but per-fleet memory (N simulators plus histograms) makes the
    /// sequential default the predictable choice.
    ///
    /// # Panics
    ///
    /// Panics if the suite fails [`ClusterSuite::validate`] or any cell's scenario is
    /// invalid.
    fn run_cluster_collect(&self, suite: &ClusterSuite) -> Vec<ClusterCellOutcome>;
}

impl ClusterEngineExt for Engine {
    fn run_cluster(&self, scenario: &ClusterScenario) -> ClusterOutcome {
        let threads = match self.mode() {
            ExecMode::Serial => 1,
            ExecMode::Parallel { threads } => threads,
        };
        execute_cluster(scenario, self, threads, ObsLevel::Off).0
    }

    fn run_cluster_traced(
        &self,
        scenario: &ClusterScenario,
        level: ObsLevel,
    ) -> (ClusterOutcome, EventLog) {
        let threads = match self.mode() {
            ExecMode::Serial => 1,
            ExecMode::Parallel { threads } => threads,
        };
        execute_cluster(scenario, self, threads, level)
    }

    fn run_cluster_collect(&self, suite: &ClusterSuite) -> Vec<ClusterCellOutcome> {
        if let Err(e) = suite.validate() {
            panic!("invalid cluster suite `{}`: {e}", suite.name());
        }
        suite
            .scenarios()
            .iter()
            .enumerate()
            .map(|(index, scenario)| ClusterCellOutcome {
                index,
                scenario: scenario.clone(),
                outcome: self.run_cluster(scenario),
            })
            .collect()
    }
}

/// Runs one cluster scenario against the engine's catalog with the given node-update
/// worker count (`0` = one per available core, `1` = serial).
fn execute_cluster(
    scenario: &ClusterScenario,
    engine: &Engine,
    threads: usize,
    level: ObsLevel,
) -> (ClusterOutcome, EventLog) {
    ClusterRun::with_threads(scenario, engine, threads, level).finish()
}

/// A cluster execution that can be paused, checkpointed, and resumed.
///
/// [`ClusterEngineExt::run_cluster`] is a thin wrapper over this type: it advances one
/// decision interval at a time ([`Self::step`]), aggregating the per-interval scalars
/// the [`ClusterOutcome`] traces are built from, and [`Self::finish`] runs whatever
/// remains of the horizon and assembles the outcome. Between steps the full state of
/// the execution — the simulator plus every aggregation accumulator — can be captured
/// with [`Self::checkpoint`] and restored with [`Self::restore`] into a run freshly
/// built from the same scenario. Resuming an untraced run is byte-identical to never
/// having stopped: the final outcome's JSON is equal byte for byte.
///
/// ```
/// use pliant_approx::catalog::AppId;
/// use pliant_cluster::prelude::*;
/// use pliant_core::engine::Engine;
/// use pliant_workloads::service::ServiceId;
///
/// let scenario = ClusterScenario::builder(ServiceId::Memcached)
///     .nodes(2)
///     .jobs(vec![AppId::Canneal, AppId::Snp, AppId::Bayesian])
///     .horizon_intervals(12)
///     .build();
/// let engine = Engine::new();
/// let mut first = ClusterRun::new(&scenario, &engine);
/// while first.intervals() < 5 {
///     first.step();
/// }
/// let checkpoint = first.checkpoint();
/// // ... possibly in another process, after a round trip through JSON ...
/// let mut resumed = ClusterRun::new(&scenario, &engine);
/// resumed.restore(&checkpoint).unwrap();
/// let (outcome, _) = resumed.finish();
/// assert_eq!(outcome.intervals, 12);
/// ```
pub struct ClusterRun {
    sim: ClusterSim,
    threads: usize,
    max_intervals: usize,
    // Per-instance accumulators: one slot per *simulated* node. In exact mode that is
    // the whole fleet; under the clustered approximation each instance already carries
    // its replica weight in everything it reports.
    assigned_sum: Vec<f64>,
    max_extra: Vec<u32>,
    jobs_completed: Vec<usize>,
    total_load_sum: f64,
    max_total_extra: u32,
    active_sum: usize,
    min_active: usize,
    load_series: TimeSeries,
    cores_series: TimeSeries,
    violating_series: TimeSeries,
    power_series: TimeSeries,
    active_series: TimeSeries,
}

impl ClusterRun {
    /// Builds the run (fleet plus aggregation state) for `scenario`, untraced, with
    /// the worker count the engine's [`ExecMode`] implies.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`ClusterScenario::validate`] or names an
    /// application missing from the engine's catalog.
    pub fn new(scenario: &ClusterScenario, engine: &Engine) -> Self {
        Self::with_obs(scenario, engine, ObsLevel::Off)
    }

    /// Like [`Self::new`], with the tracing subsystem on at `level`. A resumed traced
    /// run replays only post-resume events (the observability ring is not part of the
    /// checkpoint); the simulation itself is still byte-identical.
    pub fn with_obs(scenario: &ClusterScenario, engine: &Engine, level: ObsLevel) -> Self {
        let threads = match engine.mode() {
            ExecMode::Serial => 1,
            ExecMode::Parallel { threads } => threads,
        };
        Self::with_threads(scenario, engine, threads, level)
    }

    fn with_threads(
        scenario: &ClusterScenario,
        engine: &Engine,
        threads: usize,
        level: ObsLevel,
    ) -> Self {
        let sim = ClusterSim::with_obs(scenario, engine.catalog(), level);
        let n = sim.instance_count();
        let max_intervals = scenario.max_intervals();
        ClusterRun {
            sim,
            threads,
            max_intervals,
            assigned_sum: vec![0.0f64; n],
            max_extra: vec![0u32; n],
            jobs_completed: vec![0usize; n],
            total_load_sum: 0.0,
            max_total_extra: 0,
            active_sum: 0,
            min_active: scenario.nodes,
            load_series: TimeSeries::with_capacity("total_offered_load", max_intervals),
            cores_series: TimeSeries::with_capacity("total_extra_cores", max_intervals),
            violating_series: TimeSeries::with_capacity("violating_nodes", max_intervals),
            power_series: TimeSeries::with_capacity("fleet_power_w", max_intervals),
            active_series: TimeSeries::with_capacity("active_nodes", max_intervals),
        }
    }

    /// Decision intervals advanced so far.
    pub fn intervals(&self) -> usize {
        self.sim.intervals()
    }

    /// Whether the horizon has been fully simulated.
    pub fn is_done(&self) -> bool {
        self.sim.intervals() >= self.max_intervals
    }

    /// The fleet being advanced.
    pub fn sim(&self) -> &ClusterSim {
        &self.sim
    }

    /// Advances one decision interval and folds it into the aggregates; no-op once the
    /// horizon is complete. Returns `true` while intervals remain.
    pub fn step(&mut self) -> bool {
        if self.is_done() {
            return false;
        }
        // QoS accounting (busy/idle/violation counters and the per-node latency
        // histograms, microsecond-scaled, warm-up excluded) lives inside each
        // [`crate::node::ClusterNode`], where it runs on the worker thread advancing
        // the node; this loop only aggregates per-interval scalars for the traces.
        let interval = self.sim.advance_threads(self.threads);
        self.total_load_sum += interval.total_offered_load;
        let mut total_extra = 0u32;
        let mut violating_nodes = 0usize;
        let mut fleet_power_w = 0.0f64;
        for ni in &interval.nodes {
            let i = ni.node;
            let obs = &ni.observation;
            // Replica weighting: every logical node an instance stands for would have
            // shown the same per-node observation under CRN, so extensive fleet
            // quantities scale by `replicas` (which is 1 on every exactly-simulated
            // node, leaving the historical arithmetic bit-identical).
            if obs.arrivals > 0 && obs.qos_violated() {
                violating_nodes += ni.replicas;
            }
            self.assigned_sum[i] += ni.assigned_load;
            self.max_extra[i] = self.max_extra[i].max(ni.extra_service_cores);
            self.jobs_completed[i] += ni.jobs_completed;
            total_extra += ni.extra_service_cores * ni.replicas as u32;
            fleet_power_w += obs.power_w * ni.replicas as f64;
        }
        self.max_total_extra = self.max_total_extra.max(total_extra);
        self.active_sum += interval.active_nodes;
        self.min_active = self.min_active.min(interval.active_nodes);
        self.load_series
            .push(interval.time_s, interval.total_offered_load);
        self.cores_series.push(interval.time_s, total_extra as f64);
        self.violating_series
            .push(interval.time_s, violating_nodes as f64);
        self.power_series.push(interval.time_s, fleet_power_w);
        self.active_series
            .push(interval.time_s, interval.active_nodes as f64);
        // The interval is fully consumed: recycle its observation buffers into the
        // nodes so the fleet, like the single-node loop, allocates once per run.
        self.sim.recycle_interval(interval);
        !self.is_done()
    }

    /// Captures the run for later resumption: the simulator checkpoint plus every
    /// aggregation accumulator. Serializable; see [`ClusterRunCheckpoint`].
    pub fn checkpoint(&self) -> ClusterRunCheckpoint {
        let mut trace = TraceBundle::new();
        trace.insert(self.load_series.clone());
        trace.insert(self.cores_series.clone());
        trace.insert(self.violating_series.clone());
        trace.insert(self.power_series.clone());
        trace.insert(self.active_series.clone());
        ClusterRunCheckpoint {
            version: CLUSTER_CHECKPOINT_VERSION,
            sim: self.sim.checkpoint(),
            assigned_sum: self.assigned_sum.clone(),
            max_extra: self.max_extra.clone(),
            jobs_completed: self.jobs_completed.clone(),
            total_load_sum: self.total_load_sum,
            max_total_extra: self.max_total_extra,
            active_sum: self.active_sum,
            min_active: self.min_active,
            trace,
        }
    }

    /// Restores a checkpoint taken by [`Self::checkpoint`] into this run, which must
    /// have been built from the same scenario.
    ///
    /// # Errors
    ///
    /// Rejects checkpoints from a different format version or fleet shape; the run may
    /// be left partially restored on error and must not be advanced further.
    pub fn restore(&mut self, checkpoint: &ClusterRunCheckpoint) -> Result<(), String> {
        if checkpoint.version != CLUSTER_CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint format version {} (supported: {CLUSTER_CHECKPOINT_VERSION})",
                checkpoint.version
            ));
        }
        let n = self.sim.instance_count();
        if checkpoint.assigned_sum.len() != n
            || checkpoint.max_extra.len() != n
            || checkpoint.jobs_completed.len() != n
        {
            return Err(format!(
                "checkpoint aggregates cover {} instances, run has {n}",
                checkpoint.assigned_sum.len()
            ));
        }
        self.sim.restore(&checkpoint.sim)?;
        self.assigned_sum.clone_from(&checkpoint.assigned_sum);
        self.max_extra.clone_from(&checkpoint.max_extra);
        self.jobs_completed.clone_from(&checkpoint.jobs_completed);
        self.total_load_sum = checkpoint.total_load_sum;
        self.max_total_extra = checkpoint.max_total_extra;
        self.active_sum = checkpoint.active_sum;
        self.min_active = checkpoint.min_active;
        for (slot, name) in [
            (&mut self.load_series, "total_offered_load"),
            (&mut self.cores_series, "total_extra_cores"),
            (&mut self.violating_series, "violating_nodes"),
            (&mut self.power_series, "fleet_power_w"),
            (&mut self.active_series, "active_nodes"),
        ] {
            *slot = checkpoint
                .trace
                .get(name)
                .ok_or_else(|| format!("checkpoint trace is missing the `{name}` series"))?
                .clone();
        }
        Ok(())
    }

    /// Runs whatever remains of the horizon and assembles the final outcome plus the
    /// merged decision-event stream (empty on an untraced run).
    pub fn finish(mut self) -> (ClusterOutcome, EventLog) {
        while self.step() {}
        let ClusterRun {
            mut sim,
            max_intervals,
            assigned_sum,
            max_extra,
            jobs_completed,
            total_load_sum,
            max_total_extra,
            active_sum,
            min_active,
            load_series,
            cores_series,
            violating_series,
            power_series,
            active_series,
            ..
        } = self;
        let scenario = sim.scenario().clone();
        let n = sim.instance_count();

        // Fleet quantiles come from the exact merge of the per-node histograms.
        let mut fleet = LatencyHistogram::new();
        for i in 0..n {
            fleet
                .try_merge(sim.node(i).latency_histogram())
                // pliant-lint: allow(panic-hygiene): every node histogram was built by
                // this engine with the same bucket configuration, so the merge cannot
                // fail.
                .expect("in-process histograms share one bucket configuration");
        }
        let qos_target_s = scenario.qos_target_s.unwrap_or_else(|| {
            pliant_workloads::service::ServiceProfile::paper_default(scenario.service).qos_target_s
        });

        let node_outcomes: Vec<NodeOutcome> = (0..n)
            .map(|i| {
                let node = sim.node(i);
                let inaccuracies = node.completed_inaccuracy_pct();
                // Replica-weighted mean: a job completed at weight `w` stood for `w`
                // logical completions. With all-ones weights (exact mode) this reduces
                // bit-for-bit to the plain arithmetic mean the engine always computed.
                let weights = node.completed_weights();
                let weight_total: usize = weights.iter().sum();
                NodeOutcome {
                    node: i,
                    replicas: node.replicas(),
                    busy_intervals: node.busy_intervals(),
                    idle_intervals: node.idle_intervals(),
                    p99_s: node.latency_histogram().p99() / 1e6,
                    qos_violation_fraction: node.qos_violations() as f64
                        / node.busy_intervals().max(1) as f64,
                    mean_assigned_load: assigned_sum[i] / max_intervals.max(1) as f64,
                    max_extra_service_cores: max_extra[i],
                    jobs_completed: jobs_completed[i],
                    mean_completed_inaccuracy_pct: if inaccuracies.is_empty() {
                        0.0
                    } else {
                        inaccuracies
                            .iter()
                            .zip(weights)
                            .map(|(v, &w)| v * w as f64)
                            .sum::<f64>()
                            / weight_total as f64
                    },
                    energy_j: node.energy_j(),
                }
            })
            .collect();

        let total_busy: usize = (0..n).map(|i| sim.node(i).busy_intervals()).sum();
        let total_violations: usize = (0..n).map(|i| sim.node(i).qos_violations()).sum();
        let fleet_p99_s = fleet.p99() / 1e6;
        // Fleet energy is the exact sum of the per-node accounting, mirroring how the
        // fleet p99 is the exact merge of the per-node histograms.
        let fleet_energy_j: f64 = node_outcomes.iter().map(|node| node.energy_j).sum();
        let simulated_s = max_intervals as f64 * scenario.decision_interval_s;
        let completed = sim.scheduler_stats().completed;

        let mut trace = TraceBundle::new();
        trace.insert(load_series);
        trace.insert(cores_series);
        trace.insert(violating_series);
        trace.insert(power_series);
        trace.insert(active_series);

        let log = sim.take_event_log();
        let outcome = ClusterOutcome {
            service: scenario.service,
            policy: scenario.policy,
            balancer: scenario.balancer,
            scheduler: scenario.scheduler,
            nodes: sim.node_count(),
            approximation: scenario.approximation,
            simulated_instances: n,
            intervals: sim.intervals(),
            warmup_intervals: scenario.warmup_intervals,
            qos_target_s,
            mean_total_offered_load: total_load_sum / max_intervals.max(1) as f64,
            fleet_p99_s,
            fleet_mean_latency_s: fleet.mean() / 1e6,
            fleet_samples: fleet.count(),
            fleet_tail_latency_ratio: fleet_p99_s / qos_target_s,
            fleet_qos_violation_fraction: total_violations as f64 / total_busy.max(1) as f64,
            max_total_extra_cores: max_total_extra,
            fleet_energy_j,
            mean_fleet_power_w: if simulated_s > 0.0 {
                fleet_energy_j / simulated_s
            } else {
                0.0
            },
            energy_per_completed_job_j: if completed > 0 {
                fleet_energy_j / completed as f64
            } else {
                0.0
            },
            mean_active_nodes: active_sum as f64 / max_intervals.max(1) as f64,
            min_active_nodes: min_active,
            faults: sim.fault_stats(),
            scheduler_stats: sim.scheduler_stats(),
            node_outcomes,
            obs: log.summary(),
            trace,
        };
        (outcome, log)
    }
}

/// A serialized [`ClusterRun`] between intervals: the simulator checkpoint plus the
/// engine-level aggregation accumulators (the five outcome trace series travel in a
/// [`TraceBundle`] keyed by series name). Restoring into a run freshly built from the
/// same scenario and finishing it produces output byte-identical to an uninterrupted
/// run (untraced runs; see [`ClusterRun::with_obs`] for the tracing caveat).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterRunCheckpoint {
    /// Snapshot format version ([`CLUSTER_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The fleet simulator's state.
    pub sim: ClusterCheckpoint,
    /// Per-instance sum of assigned load over the intervals run so far.
    pub assigned_sum: Vec<f64>,
    /// Per-instance maximum of reclaimed service cores.
    pub max_extra: Vec<u32>,
    /// Per-instance completed-job counts.
    pub jobs_completed: Vec<usize>,
    /// Sum of total offered load over the intervals run so far.
    pub total_load_sum: f64,
    /// Maximum fleet-wide reclaimed cores in any one interval.
    pub max_total_extra: u32,
    /// Sum of per-interval active-node counts.
    pub active_sum: usize,
    /// Minimum per-interval active-node count.
    pub min_active: usize,
    /// The five partial outcome trace series, keyed by name.
    pub trace: TraceBundle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_approx::catalog::AppId;
    use pliant_core::policy::PolicyKind;
    use pliant_workloads::service::ServiceId;

    fn small_scenario() -> ClusterScenario {
        ClusterScenario::builder(ServiceId::Memcached)
            .nodes(3)
            .jobs([AppId::Canneal, AppId::Snp, AppId::Bayesian, AppId::KMeans])
            .avg_node_load(0.6)
            .horizon_intervals(20)
            .seed(11)
            .build()
    }

    #[test]
    fn run_cluster_produces_consistent_fleet_statistics() {
        let outcome = Engine::new().run_cluster(&small_scenario());
        assert_eq!(outcome.nodes, 3);
        assert_eq!(outcome.intervals, 20);
        assert_eq!(outcome.node_outcomes.len(), 3);
        assert!(outcome.fleet_samples > 0);
        assert!(outcome.fleet_p99_s > 0.0);
        assert!(outcome.fleet_mean_latency_s < outcome.fleet_p99_s);
        // Offered load: 3 nodes at 0.6 average = 1.8 node-units.
        assert!((outcome.mean_total_offered_load - 1.8).abs() < 1e-9);
        // The balancer conserves load: per-node means sum to the fleet average.
        let assigned: f64 = outcome
            .node_outcomes
            .iter()
            .map(|node| node.mean_assigned_load)
            .sum();
        assert!((assigned - 1.8).abs() < 1e-9);
        // Busy + idle account for every measured (post-warm-up) node-interval.
        for node in &outcome.node_outcomes {
            assert_eq!(
                node.busy_intervals + node.idle_intervals,
                20 - outcome.warmup_intervals
            );
        }
        // The trace covers every interval.
        assert_eq!(outcome.trace.get("total_offered_load").unwrap().len(), 20);
        assert_eq!(outcome.trace.get("total_extra_cores").unwrap().len(), 20);
        assert_eq!(outcome.trace.get("violating_nodes").unwrap().len(), 20);
    }

    #[test]
    fn serial_and_parallel_cluster_runs_agree() {
        let scenario = small_scenario();
        let serial = Engine::new().run_cluster(&scenario);
        let parallel = Engine::new().parallel_threads(3).run_cluster(&scenario);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "node-parallel execution must not change any fleet statistic"
        );
    }

    #[test]
    fn queued_jobs_flow_through_the_fleet() {
        // 2 nodes, 6 jobs: 2 placed initially, 4 queued; a long horizon lets several
        // complete and be replaced.
        let scenario = ClusterScenario::builder(ServiceId::MongoDb)
            .nodes(2)
            .jobs([
                AppId::Raytrace,
                AppId::Snp,
                AppId::KMeans,
                AppId::Bayesian,
                AppId::Snp,
                AppId::KMeans,
            ])
            .avg_node_load(0.5)
            .horizon_intervals(200)
            .seed(3)
            .build();
        let outcome = Engine::new().run_cluster(&scenario);
        assert_eq!(outcome.scheduler_stats.submitted, 6);
        assert!(
            outcome.scheduler_stats.completed >= 4,
            "queued jobs must be placed and complete ({:?})",
            outcome.scheduler_stats
        );
        assert!(
            outcome.scheduler_stats.placed > 2 && outcome.scheduler_stats.placed <= 6,
            "the queue must drain into freed slots ({:?})",
            outcome.scheduler_stats
        );
        assert!(outcome.scheduler_stats.placed >= outcome.scheduler_stats.completed);
        assert_eq!(outcome.jobs_completed(), outcome.scheduler_stats.completed);
        let per_node: usize = outcome
            .node_outcomes
            .iter()
            .map(|node| node.jobs_completed)
            .sum();
        assert_eq!(per_node, outcome.scheduler_stats.completed);
    }

    #[test]
    fn precise_fleet_runs_uninstrumented_and_never_reclaims() {
        let scenario = ClusterScenario::builder(ServiceId::Nginx)
            .nodes(2)
            .jobs([AppId::Canneal, AppId::Snp])
            .policy(PolicyKind::Precise)
            .avg_node_load(0.5)
            .horizon_intervals(15)
            .build();
        let outcome = Engine::new().run_cluster(&scenario);
        assert_eq!(outcome.max_total_extra_cores, 0);
        assert_eq!(outcome.mean_completed_inaccuracy_pct(), 0.0);
    }
}
