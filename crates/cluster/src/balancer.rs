//! Cluster-wide load balancing: splitting offered load across fleet nodes.
//!
//! Once per decision interval the fleet receives a total offered load (expressed in
//! node-saturation units — `1.0` is one node's saturation throughput) and the balancer
//! splits it into per-node offered-load fractions. The split is modelled the way a
//! front-end dispatcher works: the interval's load is divided into small *quanta* of
//! requests and each quantum is routed to one node. All three policies are fully
//! deterministic — [`BalancerKind::PowerOfTwoChoices`] draws its node pairs from a
//! dedicated RNG seeded from the cluster scenario's seed — so serial and parallel
//! cluster runs see the identical per-node load sequence.

use serde::{Deserialize, Serialize};

use pliant_telemetry::rng::seeded_rng;
use pliant_workloads::service::ServiceProfile;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::node::NodeSnapshot;

/// Per-node assignment level the greedy policies treat as a node's capacity: the
/// saturation ceiling the workload generator enforces. Load a node cannot absorb is
/// better spent on any node still under its ceiling.
const MAX_OFFERED_LOAD: f64 = ServiceProfile::MAX_OFFERED_LOAD;

/// Load quanta dispatched per node each interval. Higher values approximate a
/// continuous split more closely; 8 per node keeps the greedy policies responsive while
/// staying cheap.
const QUANTA_PER_NODE: usize = 8;

/// Selector for the built-in load-balancing policies.
///
/// Serializes as its display name (the same string [`BalancerKind::name`] returns), so
/// JSON result rows are tagged `"round-robin"`, `"least-loaded"`, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BalancerKind {
    /// Deal requests over the nodes in rotation. For an interval's worth of uniform
    /// traffic this is exactly an even split, blind to how the nodes are doing — the
    /// oblivious baseline the adaptive policies are compared against.
    #[serde(rename = "round-robin")]
    RoundRobin,
    /// Route every quantum to the node with the lowest effective load, where a node's
    /// smoothed tail latency (relative to the QoS target) counts as extra load. Nodes
    /// running hot receive less traffic until they recover.
    #[serde(rename = "least-loaded")]
    LeastLoaded,
    /// Sample two nodes per quantum and route to the less loaded of the pair — the
    /// classic O(1) approximation of least-loaded that avoids a full fleet scan.
    #[serde(rename = "p2c")]
    PowerOfTwoChoices,
}

impl BalancerKind {
    /// Every built-in balancer, in reporting order.
    pub fn all() -> [BalancerKind; 3] {
        [
            BalancerKind::RoundRobin,
            BalancerKind::LeastLoaded,
            BalancerKind::PowerOfTwoChoices,
        ]
    }

    /// Short name used in result rows (also the serialized representation).
    pub fn name(&self) -> &'static str {
        match self {
            BalancerKind::RoundRobin => "round-robin",
            BalancerKind::LeastLoaded => "least-loaded",
            BalancerKind::PowerOfTwoChoices => "p2c",
        }
    }

    /// Instantiates the balancer for a fleet of `nodes` nodes. `seed` feeds the
    /// power-of-two-choices sampling stream (ignored by the deterministic policies).
    pub fn build(&self, nodes: usize, seed: u64) -> LoadBalancer {
        LoadBalancer {
            kind: *self,
            nodes,
            rng: seeded_rng(seed),
        }
    }
}

impl std::fmt::Display for BalancerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A stateful load balancer built from a [`BalancerKind`]; see the module docs.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    kind: BalancerKind,
    nodes: usize,
    /// Sampling stream for power-of-two choices.
    rng: SmallRng,
}

impl LoadBalancer {
    /// The policy this balancer implements.
    pub fn kind(&self) -> BalancerKind {
        self.kind
    }

    /// The sampling RNG's state, for checkpointing (the kind and fleet size are rebuilt
    /// from the scenario; only the power-of-two-choices stream is mutable state).
    pub fn rng_state(&self) -> Vec<u64> {
        pliant_telemetry::rng::rng_state_words(&self.rng)
    }

    /// Restores the sampling RNG to a state captured by [`Self::rng_state`].
    ///
    /// # Errors
    ///
    /// Rejects malformed wire states (wrong width or all-zero).
    pub fn restore_rng_state(&mut self, words: &[u64]) -> Result<(), String> {
        self.rng = pliant_telemetry::rng::rng_from_state_words(words)?;
        Ok(())
    }

    /// Splits `total_load` (node-saturation units) into one offered-load fraction per
    /// node for the coming interval.
    ///
    /// `snapshots` carries each node's state as of the end of the previous interval
    /// (smoothed tail latency, QoS target); the greedy policies use it to bias quanta
    /// away from struggling nodes.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots.len()` differs from the fleet size the balancer was built
    /// for.
    pub fn split(&mut self, total_load: f64, snapshots: &[NodeSnapshot]) -> Vec<f64> {
        self.split_inner(total_load, snapshots, None)
    }

    /// Like [`Self::split`], but restricted to the nodes marked `true` in `active`:
    /// inactive nodes (drained or parked by an autoscaler) are assigned exactly zero
    /// load and the quanta budget scales with the active count. With every node active
    /// this is identical to [`Self::split`] draw-for-draw, so enabling an autoscaler
    /// that never acts does not perturb any stream.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots.len()` or `active.len()` differs from the fleet size.
    pub fn split_active(
        &mut self,
        total_load: f64,
        snapshots: &[NodeSnapshot],
        active: &[bool],
    ) -> Vec<f64> {
        assert_eq!(
            active.len(),
            self.nodes,
            "balancer built for {} nodes, got {} active flags",
            self.nodes,
            active.len()
        );
        self.split_inner(total_load, snapshots, Some(active))
    }

    /// Splits `total_load` across a *clustered* fleet of representative instances,
    /// writing each instance's **per-replica** offered-load fraction into `out`
    /// (`out[i] × weights[i]` summed over active instances equals `total_load`).
    ///
    /// `weights[i]` is the number of logical nodes instance `i` stands for, and
    /// `active[i]` marks instances currently serving (autoscaling is instance-atomic in
    /// clustered mode, so a whole replica block drains together). The policies mirror
    /// [`Self::split`] at the logical-node level: round-robin hands every active
    /// logical node an even share; the greedy policies dispatch
    /// `QUANTA_PER_NODE × active instances` quanta (instances, not logical nodes, so
    /// dispatch cost scales with what is actually simulated), each quantum routed by
    /// per-replica assigned load plus the tail-latency penalty; power-of-two-choices
    /// samples its pairs weighted by replica count, exactly as if it sampled logical
    /// nodes. With unit weights and the same mask this reproduces
    /// [`Self::split_active`] draw-for-draw.
    ///
    /// `out` is a caller-owned scratch buffer (cleared and refilled) so the
    /// per-interval loop stays allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots`, `weights`, or `active` differ in length from the instance
    /// count the balancer was built for, or if any weight is zero.
    pub fn split_grouped(
        &mut self,
        total_load: f64,
        snapshots: &[NodeSnapshot],
        weights: &[usize],
        active: &[bool],
        out: &mut Vec<f64>,
    ) {
        let n = self.nodes;
        assert_eq!(snapshots.len(), n, "snapshot count must match instances");
        assert_eq!(weights.len(), n, "weight count must match instances");
        assert_eq!(active.len(), n, "active-flag count must match instances");
        out.clear();
        out.resize(n, 0.0);
        let mut active_instances = 0usize;
        let mut active_weight = 0usize;
        for i in 0..n {
            assert!(weights[i] > 0, "instance weights must be positive");
            if active[i] {
                active_instances += 1;
                active_weight += weights[i];
            }
        }
        if total_load <= 0.0 || active_instances == 0 {
            return;
        }
        if self.kind == BalancerKind::RoundRobin {
            let share = total_load / active_weight as f64;
            for i in 0..n {
                if active[i] {
                    out[i] = share;
                }
            }
            return;
        }
        let quanta = QUANTA_PER_NODE * active_instances;
        let quantum = total_load / quanta as f64;
        // Same tail-latency penalty as the exact split (see split_inner), computed on
        // the fly to keep this scratch-buffer path allocation-free.
        let excess = |s: &NodeSnapshot| {
            if s.qos_target_s > 0.0 {
                (s.smoothed_p99_s / s.qos_target_s - 1.0).max(0.0)
            } else {
                0.0
            }
        };
        let mut floor = f64::INFINITY;
        for i in 0..n {
            if active[i] {
                floor = floor.min(excess(&snapshots[i]));
            }
        }
        match self.kind {
            BalancerKind::RoundRobin => unreachable!("handled above"),
            BalancerKind::LeastLoaded => {
                for _ in 0..quanta {
                    let target = (0..n)
                        .filter(|&i| active[i] && out[i] < MAX_OFFERED_LOAD)
                        .min_by(|&a, &b| {
                            // Parenthesized as `assigned + (excess - floor)` to match
                            // split_inner's precomputed penalty bit-for-bit.
                            (out[a] + (excess(&snapshots[a]) - floor))
                                .total_cmp(&(out[b] + (excess(&snapshots[b]) - floor)))
                        })
                        .or_else(|| {
                            (0..n)
                                .filter(|&i| active[i])
                                .min_by(|&a, &b| out[a].total_cmp(&out[b]))
                        })
                        // pliant-lint: allow(panic-hygiene): the empty-active case
                        // returned above, so a serving instance always exists.
                        .expect("at least one serving instance");
                    // One quantum of logical load raises the representative's
                    // per-replica load by its replica-diluted share, so the weighted
                    // sum over instances still conserves `total_load`.
                    out[target] += quantum / weights[target] as f64;
                }
            }
            BalancerKind::PowerOfTwoChoices => {
                for _ in 0..quanta {
                    let a = pick_weighted(&mut self.rng, weights, active, active_weight);
                    let b = pick_weighted(&mut self.rng, weights, active, active_weight);
                    let a_capped = out[a] >= MAX_OFFERED_LOAD;
                    let b_capped = out[b] >= MAX_OFFERED_LOAD;
                    let target = match (a_capped, b_capped) {
                        (false, true) => a,
                        (true, false) => b,
                        _ => {
                            let pa = out[a] + (excess(&snapshots[a]) - floor);
                            let pb = out[b] + (excess(&snapshots[b]) - floor);
                            if pa <= pb {
                                a
                            } else {
                                b
                            }
                        }
                    };
                    out[target] += quantum / weights[target] as f64;
                }
            }
        }
    }

    fn split_inner(
        &mut self,
        total_load: f64,
        snapshots: &[NodeSnapshot],
        active: Option<&[bool]>,
    ) -> Vec<f64> {
        assert_eq!(
            snapshots.len(),
            self.nodes,
            "balancer built for {} nodes, got {} snapshots",
            self.nodes,
            snapshots.len()
        );
        let n = self.nodes;
        let is_active = |i: usize| active.is_none_or(|m| m[i]);
        let active_count = active.map_or(n, |m| m.iter().filter(|a| **a).count());
        let mut assigned = vec![0.0f64; n];
        if total_load <= 0.0 || active_count == 0 {
            return assigned;
        }
        // Rotating a full interval's worth of quanta over the serving nodes hands each
        // exactly quanta/active_count of them, so round-robin needs no quantum loop
        // (and no rotation state): it is the even split, computed directly.
        if self.kind == BalancerKind::RoundRobin {
            let share = total_load / active_count as f64;
            for (i, slot) in assigned.iter_mut().enumerate() {
                if is_active(i) {
                    *slot = share;
                }
            }
            return assigned;
        }
        let quanta = QUANTA_PER_NODE * active_count;
        let quantum = total_load / quanta as f64;
        // A node's tail-latency *excess* over its QoS target counts as load it is
        // already carrying: a node at 1.5x its target must shed traffic even if the
        // dispatcher just assigned it little. Two normalizations keep the feedback loop
        // stable: latency below the target carries no penalty (differences between
        // healthy nodes must not unbalance the split), and the penalty is relative to
        // the least-stressed *serving* node — when the whole fleet is equally hot (e.g.
        // the convergence transient, or an overload no split can fix) shedding from
        // everyone to everyone would only slosh load around, so the split stays even.
        let excess: Vec<f64> = snapshots
            .iter()
            .map(|s| {
                if s.qos_target_s > 0.0 {
                    (s.smoothed_p99_s / s.qos_target_s - 1.0).max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        let floor = excess
            .iter()
            .enumerate()
            .filter(|(i, _)| is_active(*i))
            .map(|(_, e)| *e)
            .fold(f64::INFINITY, f64::min);
        let penalty: Vec<f64> = excess.iter().map(|e| e - floor).collect();
        match self.kind {
            BalancerKind::RoundRobin => unreachable!("handled above"),
            BalancerKind::LeastLoaded => {
                for _ in 0..quanta {
                    // Prefer serving nodes under the saturation cap; once every one is
                    // at capacity the overload has nowhere better to go and spills onto
                    // the least-loaded serving node.
                    // `total_cmp`, not `partial_cmp(..).expect(..)`: loads are finite by
                    // construction, but a NaN estimate must degrade to a deterministic
                    // pick (NaN sorts last in a min_by), not panic the dispatch loop.
                    let target = (0..n)
                        .filter(|&i| is_active(i) && assigned[i] < MAX_OFFERED_LOAD)
                        .min_by(|&a, &b| {
                            (assigned[a] + penalty[a]).total_cmp(&(assigned[b] + penalty[b]))
                        })
                        .or_else(|| {
                            (0..n)
                                .filter(|&i| is_active(i))
                                .min_by(|&a, &b| assigned[a].total_cmp(&assigned[b]))
                        })
                        // pliant-lint: allow(panic-hygiene): split() rejects an empty
                        // active set before dispatch, so a serving node always exists.
                        .expect("at least one serving node");
                    assigned[target] += quantum;
                }
            }
            BalancerKind::PowerOfTwoChoices => {
                // With no mask the pair is drawn over node indices directly; with one,
                // over positions in the active set. For an all-active mask the two are
                // the same draws, keeping pre-autoscaler streams intact.
                let pick = |rng: &mut SmallRng, active: Option<&[bool]>| match active {
                    None => rng.gen_range(0..n),
                    Some(mask) => {
                        let pos = rng.gen_range(0..active_count);
                        mask.iter()
                            .enumerate()
                            .filter(|(_, a)| **a)
                            .nth(pos)
                            // pliant-lint: allow(panic-hygiene): `pos` is drawn from
                            // `0..active_count` and the mask has that many set bits.
                            .expect("position is within the active count")
                            .0
                    }
                };
                for _ in 0..quanta {
                    let a = pick(&mut self.rng, active);
                    let b = pick(&mut self.rng, active);
                    // Same capacity rule as least-loaded, restricted to the sampled
                    // pair: a saturated choice loses to an unsaturated one.
                    let a_capped = assigned[a] >= MAX_OFFERED_LOAD;
                    let b_capped = assigned[b] >= MAX_OFFERED_LOAD;
                    let target = match (a_capped, b_capped) {
                        (false, true) => a,
                        (true, false) => b,
                        _ => {
                            if assigned[a] + penalty[a] <= assigned[b] + penalty[b] {
                                a
                            } else {
                                b
                            }
                        }
                    };
                    assigned[target] += quantum;
                }
            }
        }
        assigned
    }
}

/// Draws one logical node uniformly from the active population (positions
/// `0..active_weight`) and returns the representative instance that owns it: instance
/// `i` owns a contiguous run of `weights[i]` positions. With unit weights this is
/// exactly the masked nth-set-bit pick of [`LoadBalancer::split_active`].
fn pick_weighted(
    rng: &mut SmallRng,
    weights: &[usize],
    active: &[bool],
    active_weight: usize,
) -> usize {
    let mut pos = rng.gen_range(0..active_weight);
    for (i, (&w, &a)) in weights.iter().zip(active).enumerate() {
        if !a {
            continue;
        }
        if pos < w {
            return i;
        }
        pos -= w;
    }
    unreachable!("position {pos} is drawn from the summed active weight")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshots(p99s: &[f64]) -> Vec<NodeSnapshot> {
        p99s.iter()
            .enumerate()
            .map(|(i, &p99)| NodeSnapshot {
                index: i,
                smoothed_p99_s: p99,
                utilization: 0.5,
                free_slots: 0,
                qos_target_s: 0.01,
            })
            .collect()
    }

    #[test]
    fn round_robin_splits_evenly_regardless_of_latency() {
        let mut b = BalancerKind::RoundRobin.build(4, 1);
        let split = b.split(2.0, &snapshots(&[0.05, 0.0, 0.0, 0.0]));
        for share in &split {
            assert!(
                (share - 0.5).abs() < 1e-12,
                "even split expected: {split:?}"
            );
        }
    }

    #[test]
    fn least_loaded_shifts_load_away_from_hot_nodes() {
        let mut b = BalancerKind::LeastLoaded.build(3, 1);
        // Node 0 is at 3x its QoS target; nodes 1 and 2 are clean.
        let split = b.split(1.5, &snapshots(&[0.03, 0.0, 0.0]));
        assert!(split[0] < split[1]);
        assert!(split[0] < split[2]);
        assert!((split.iter().sum::<f64>() - 1.5).abs() < 1e-9);
        // With a modest overload the hot node still gets *some* traffic once the others
        // have caught up to its penalty.
        let mild = b.split(9.0, &snapshots(&[0.011, 0.01, 0.01]));
        assert!(mild[0] > 0.0);
    }

    #[test]
    fn least_loaded_splits_a_healthy_fleet_evenly() {
        // Latency differences *below* the QoS target carry no penalty: biasing on them
        // would slosh load between healthy nodes and oscillate.
        let mut b = BalancerKind::LeastLoaded.build(4, 1);
        let split = b.split(2.0, &snapshots(&[0.009, 0.002, 0.005, 0.0]));
        for share in &split {
            assert!(
                (share - 0.5).abs() < 1e-12,
                "healthy nodes share load evenly: {split:?}"
            );
        }
    }

    #[test]
    fn p2c_is_deterministic_in_its_seed_and_balances() {
        let split_a = BalancerKind::PowerOfTwoChoices
            .build(4, 9)
            .split(2.0, &snapshots(&[0.0; 4]));
        let split_b = BalancerKind::PowerOfTwoChoices
            .build(4, 9)
            .split(2.0, &snapshots(&[0.0; 4]));
        assert_eq!(split_a, split_b, "same seed, same split");
        let split_c = BalancerKind::PowerOfTwoChoices
            .build(4, 10)
            .split(2.0, &snapshots(&[0.0; 4]));
        assert_ne!(split_a, split_c, "different seed, different sampling");
        assert!((split_a.iter().sum::<f64>() - 2.0).abs() < 1e-9);
        // No node is starved or doubled-up under uniform conditions.
        for share in &split_a {
            assert!(*share > 0.0 && *share < 1.5);
        }
    }

    #[test]
    fn masked_split_starves_inactive_nodes_and_conserves_load() {
        for kind in BalancerKind::all() {
            let mut b = kind.build(4, 3);
            let split = b.split_active(1.5, &snapshots(&[0.0; 4]), &[true, false, true, false]);
            assert_eq!(split[1], 0.0, "{kind}: drained nodes get no traffic");
            assert_eq!(split[3], 0.0, "{kind}: parked nodes get no traffic");
            assert!(split[0] > 0.0 && split[2] > 0.0, "{kind}");
            assert!(
                (split.iter().sum::<f64>() - 1.5).abs() < 1e-9,
                "{kind}: masked splits conserve load"
            );
        }
    }

    #[test]
    fn all_active_mask_matches_the_unmasked_split_draw_for_draw() {
        for kind in BalancerKind::all() {
            let snaps = snapshots(&[0.012, 0.0, 0.03, 0.0]);
            let unmasked = kind.build(4, 11).split(2.2, &snaps);
            let masked = kind.build(4, 11).split_active(2.2, &snaps, &[true; 4]);
            assert_eq!(
                unmasked, masked,
                "{kind}: enabling an idle autoscaler must not perturb the split"
            );
        }
    }

    #[test]
    fn grouped_split_with_unit_weights_matches_the_masked_split() {
        for kind in BalancerKind::all() {
            let snaps = snapshots(&[0.012, 0.0, 0.03, 0.0]);
            let mask = [true, false, true, true];
            let masked = kind.build(4, 11).split_active(2.2, &snaps, &mask);
            let mut grouped = Vec::new();
            kind.build(4, 11)
                .split_grouped(2.2, &snaps, &[1; 4], &mask, &mut grouped);
            assert_eq!(
                masked, grouped,
                "{kind}: unit-weight grouped dispatch must reproduce the exact split"
            );
        }
    }

    #[test]
    fn grouped_split_conserves_replica_weighted_load() {
        for kind in BalancerKind::all() {
            let snaps = snapshots(&[0.012, 0.0, 0.03]);
            let weights = [5usize, 3, 2];
            let mut out = Vec::new();
            let mut b = kind.build(3, 11);
            b.split_grouped(6.0, &snaps, &weights, &[true; 3], &mut out);
            let logical: f64 = out
                .iter()
                .zip(&weights)
                .map(|(load, &w)| load * w as f64)
                .sum();
            assert!(
                (logical - 6.0).abs() < 1e-9,
                "{kind}: weighted sum {logical} must equal the offered total"
            );
            // Draining an instance starves its whole replica block.
            b.split_grouped(6.0, &snaps, &weights, &[true, false, true], &mut out);
            assert_eq!(out[1], 0.0, "{kind}");
            let logical: f64 = out
                .iter()
                .zip(&weights)
                .map(|(load, &w)| load * w as f64)
                .sum();
            assert!((logical - 6.0).abs() < 1e-9, "{kind}");
        }
    }

    #[test]
    fn zero_load_assigns_nothing() {
        for kind in BalancerKind::all() {
            let mut b = kind.build(3, 5);
            assert_eq!(b.split(0.0, &snapshots(&[0.0; 3])), vec![0.0; 3]);
        }
    }

    #[test]
    fn names_are_stable_and_serializable() {
        for kind in BalancerKind::all() {
            let json = serde_json::to_string(&kind).expect("serializable");
            assert_eq!(json, format!("\"{}\"", kind.name()));
            let back: BalancerKind = serde_json::from_str(&json).expect("deserializable");
            assert_eq!(back, kind);
            assert_eq!(kind.to_string(), kind.name());
        }
    }
}
