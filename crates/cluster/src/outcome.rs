//! Fleet-level experiment outcomes.
//!
//! A [`ClusterOutcome`] aggregates what the paper reports at cluster scale: the fleet's
//! tail latency (computed by merging every node's latency histogram — exact, not an
//! average of averages), the fleet-wide QoS-violation rate, the peak number of cores the
//! fleet reclaimed from batch work, and job-throughput counters, plus one
//! [`NodeOutcome`] per node for drill-down. Everything is serde round-trippable so
//! cluster runs can be archived and re-aggregated without re-simulating, exactly like
//! single-node outcomes.

use serde::{Deserialize, Serialize};

use pliant_core::policy::PolicyKind;
use pliant_telemetry::obs::ObsSummary;
use pliant_telemetry::series::TraceBundle;
use pliant_workloads::service::ServiceId;

use crate::balancer::BalancerKind;
use crate::faults::FaultStats;
use crate::scenario::FleetApproximation;
use crate::scheduler::{SchedulerKind, SchedulerStats};

fn one_replica() -> usize {
    1
}

/// Per-node outcome of one fleet run.
///
/// Under [`FleetApproximation::Clustered`] each entry describes one simulated
/// *instance* standing for [`Self::replicas`] logical nodes; the per-node statistics
/// (p99, violation fraction, assigned load) are per logical node in that block, while
/// extensive totals ([`Self::jobs_completed`], [`Self::energy_j`]) already include the
/// replication.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeOutcome {
    /// Index of the node within the fleet.
    pub node: usize,
    /// Logical nodes this entry stands for (`1` for an exactly-simulated node; absent
    /// in pre-hyperscale archives, which deserialize as 1).
    #[serde(default = "one_replica")]
    pub replicas: usize,
    /// Measured (post-warm-up) decision intervals in which the node served traffic.
    pub busy_intervals: usize,
    /// Measured intervals with zero arrivals (the balancer assigned ~no load).
    pub idle_intervals: usize,
    /// The node's own 99th-percentile latency over its measured (post-warm-up)
    /// traffic-serving intervals, in seconds.
    pub p99_s: f64,
    /// Fraction of the node's traffic-serving intervals that violated QoS.
    pub qos_violation_fraction: f64,
    /// Mean offered load the balancer *routed* to this node over the full run. Routed
    /// loads conserve the cluster total (they sum to
    /// [`ClusterOutcome::mean_total_offered_load`]); in overload a node serves less
    /// than it was routed, because the workload generator caps at 1.2x saturation.
    pub mean_assigned_load: f64,
    /// Maximum cores the node's service held beyond its fair share at any point.
    pub max_extra_service_cores: u32,
    /// Batch jobs completed on this node.
    pub jobs_completed: usize,
    /// Mean output-quality loss of the jobs completed on this node, in percent
    /// (`0.0` when the node completed no jobs).
    pub mean_completed_inaccuracy_pct: f64,
    /// Total electrical energy this node consumed over the whole run (warm-up
    /// included), in joules. Absent in pre-energy archives (deserializes as 0).
    #[serde(default)]
    pub energy_j: f64,
}

/// Outcome of one fleet experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Interactive service every node fronts.
    pub service: ServiceId,
    /// Per-node runtime policy.
    pub policy: PolicyKind,
    /// Load-balancing policy.
    pub balancer: BalancerKind,
    /// Job-placement policy.
    pub scheduler: SchedulerKind,
    /// Logical fleet size (the number of nodes the scenario describes).
    pub nodes: usize,
    /// Fleet approximation the run used ([`FleetApproximation::Exact`] unless the
    /// scenario opted into clustering; absent in pre-hyperscale archives, which
    /// deserialize as exact).
    #[serde(default)]
    pub approximation: FleetApproximation,
    /// Node instances actually simulated (`nodes` in exact mode, the number of cluster
    /// representatives under [`FleetApproximation::Clustered`]; absent in
    /// pre-hyperscale archives, which deserialize as 0).
    #[serde(default)]
    pub simulated_instances: usize,
    /// Decision intervals simulated.
    pub intervals: usize,
    /// Initial intervals excluded from the latency/QoS statistics while the per-node
    /// runtimes converged (see
    /// [`ClusterScenario::warmup_intervals`](crate::scenario::ClusterScenario::warmup_intervals)).
    pub warmup_intervals: usize,
    /// QoS target in seconds (shared by every node).
    pub qos_target_s: f64,
    /// Mean total offered load over the run, in node-saturation units.
    pub mean_total_offered_load: f64,
    /// Fleet 99th-percentile latency in seconds, from the merged per-node latency
    /// histograms — the quantile over *every request in the fleet*, not an average of
    /// per-node quantiles.
    pub fleet_p99_s: f64,
    /// Fleet mean latency in seconds, from the merged histograms.
    pub fleet_mean_latency_s: f64,
    /// Latency samples aggregated across the fleet.
    pub fleet_samples: u64,
    /// `fleet_p99_s / qos_target_s` — the fleet tail-latency-to-QoS ratio.
    pub fleet_tail_latency_ratio: f64,
    /// Fraction of measured traffic-serving (node, interval) pairs that violated QoS.
    pub fleet_qos_violation_fraction: f64,
    /// Peak number of cores the fleet's services held beyond their fair share at any
    /// single interval (cores reclaimed from batch work, summed over nodes).
    pub max_total_extra_cores: u32,
    /// Total electrical energy the fleet consumed over the whole run, in joules — the
    /// exact sum of every node's own accounting (like the fleet p99 is the exact merge
    /// of per-node histograms). Absent in pre-energy archives (deserializes as 0).
    #[serde(default)]
    pub fleet_energy_j: f64,
    /// Mean fleet power over the run, in watts (`fleet_energy_j` over the simulated
    /// wall clock). Absent in pre-energy archives (deserializes as 0).
    #[serde(default)]
    pub mean_fleet_power_w: f64,
    /// Fleet energy per completed batch job, in joules (`0.0` when no job completed).
    /// Absent in pre-energy archives (deserializes as 0).
    #[serde(default)]
    pub energy_per_completed_job_j: f64,
    /// Mean number of traffic-serving nodes over the run (equals `nodes` without an
    /// autoscaler). Absent in pre-energy archives (deserializes as 0).
    #[serde(default)]
    pub mean_active_nodes: f64,
    /// Smallest active set at any interval (equals `nodes` without an autoscaler).
    /// Absent in pre-energy archives (deserializes as 0).
    #[serde(default)]
    pub min_active_nodes: usize,
    /// Fault-injection counters and availability; `None` for runs whose scenario has
    /// no fault profile (and omitted from their JSON, so fault-free archives are
    /// byte-identical to pre-fault ones).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultStats>,
    /// Job-queue statistics (submitted / placed / completed).
    pub scheduler_stats: SchedulerStats,
    /// Per-node outcomes, in node order.
    pub node_outcomes: Vec<NodeOutcome>,
    /// Observability rollup: what the run emitted, per event kind (empty at the
    /// default [`pliant_telemetry::obs::ObsLevel::Off`]). Absent in pre-observability
    /// archives (deserializes as the empty summary).
    #[serde(default)]
    pub obs: ObsSummary,
    /// Fleet time series: total offered load, total extra cores, violating-node count.
    pub trace: TraceBundle,
}

impl ClusterOutcome {
    /// Whether the fleet met QoS for (almost) the whole run: at most 5% of measured
    /// traffic-serving node-intervals violated the target — the same allowance
    /// single-node outcomes use
    /// ([`pliant_core::experiment::ColocationOutcome::qos_met`]), applied fleet-wide.
    /// This is the predicate the machines-needed-at-QoS-target search minimizes over.
    ///
    /// [`Self::fleet_tail_latency_ratio`] is deliberately *not* part of the predicate:
    /// it is the strict quantile over every sample in the run, which a handful of
    /// bursty intervals (job arrivals re-escalating from precise) can push over 1.0
    /// even when the fleet meets its target more than 95% of the time. It is reported
    /// as the distribution-level diagnostic.
    pub fn qos_met(&self) -> bool {
        self.fleet_qos_violation_fraction <= 0.05
    }

    /// Jobs completed across the fleet.
    pub fn jobs_completed(&self) -> usize {
        self.scheduler_stats.completed
    }

    /// Mean output-quality loss across every job completed in the fleet, in percent
    /// (`0.0` when no job completed).
    pub fn mean_completed_inaccuracy_pct(&self) -> f64 {
        let mut jobs = 0usize;
        let mut weighted = 0.0f64;
        for node in &self.node_outcomes {
            jobs += node.jobs_completed;
            weighted += node.mean_completed_inaccuracy_pct * node.jobs_completed as f64;
        }
        if jobs == 0 {
            0.0
        } else {
            weighted / jobs as f64
        }
    }

    /// The outcome of one node.
    pub fn node(&self, index: usize) -> Option<&NodeOutcome> {
        self.node_outcomes.iter().find(|n| n.node == index)
    }
}

/// Finds the smallest fleet size whose outcome meets QoS, given `(nodes, outcome)`
/// pairs from a node-count sweep at a fixed total offered load — the paper's
/// machines-needed-at-QoS-target summary. Returns `None` when no swept size met QoS.
pub fn machines_needed(outcomes: &[(usize, ClusterOutcome)]) -> Option<usize> {
    outcomes
        .iter()
        .filter(|(_, o)| o.qos_met())
        .map(|(n, _)| *n)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(nodes: usize, ratio: f64, violations: f64) -> ClusterOutcome {
        ClusterOutcome {
            service: ServiceId::Nginx,
            policy: PolicyKind::Pliant,
            balancer: BalancerKind::LeastLoaded,
            scheduler: SchedulerKind::FirstFit,
            nodes,
            approximation: FleetApproximation::Exact,
            simulated_instances: nodes,
            intervals: 10,
            warmup_intervals: 2,
            qos_target_s: 0.01,
            mean_total_offered_load: 2.0,
            fleet_p99_s: 0.01 * ratio,
            fleet_mean_latency_s: 0.002,
            fleet_samples: 1000,
            fleet_tail_latency_ratio: ratio,
            fleet_qos_violation_fraction: violations,
            max_total_extra_cores: 0,
            fleet_energy_j: 1500.0 * nodes as f64,
            mean_fleet_power_w: 150.0 * nodes as f64,
            energy_per_completed_job_j: 1500.0,
            mean_active_nodes: nodes as f64,
            min_active_nodes: nodes,
            faults: None,
            scheduler_stats: SchedulerStats {
                submitted: nodes,
                placed: nodes,
                completed: nodes,
            },
            node_outcomes: vec![NodeOutcome {
                node: 0,
                replicas: 1,
                busy_intervals: 10,
                idle_intervals: 0,
                p99_s: 0.01 * ratio,
                qos_violation_fraction: violations,
                mean_assigned_load: 0.5,
                max_extra_service_cores: 0,
                jobs_completed: nodes,
                mean_completed_inaccuracy_pct: 2.0,
                energy_j: 1500.0,
            }],
            obs: ObsSummary::default(),
            trace: TraceBundle::new(),
        }
    }

    #[test]
    fn qos_met_applies_the_five_percent_allowance() {
        assert!(outcome(2, 0.9, 0.04).qos_met());
        assert!(!outcome(2, 0.9, 0.06).qos_met());
        // The strict all-samples quantile is a diagnostic, not part of the predicate: a
        // couple of bursty intervals can push it over 1.0 while 95%+ of intervals meet
        // the target (see the qos_met docs).
        assert!(outcome(2, 1.1, 0.0).qos_met());
    }

    #[test]
    fn machines_needed_picks_the_smallest_passing_fleet() {
        let sweep = vec![
            (2, outcome(2, 1.4, 0.5)),
            (3, outcome(3, 0.98, 0.03)),
            (4, outcome(4, 0.7, 0.0)),
        ];
        assert_eq!(machines_needed(&sweep), Some(3));
        let hopeless = vec![(2, outcome(2, 1.4, 0.5))];
        assert_eq!(machines_needed(&hopeless), None);
    }

    #[test]
    fn fleet_inaccuracy_is_job_weighted() {
        let mut o = outcome(2, 0.9, 0.0);
        o.node_outcomes.push(NodeOutcome {
            node: 1,
            replicas: 1,
            busy_intervals: 10,
            idle_intervals: 0,
            p99_s: 0.005,
            qos_violation_fraction: 0.0,
            mean_assigned_load: 0.5,
            max_extra_service_cores: 0,
            jobs_completed: 6,
            mean_completed_inaccuracy_pct: 4.0,
            energy_j: 1200.0,
        });
        // Node 0 completed 2 jobs at 2%, node 1 completed 6 jobs at 4%.
        let expected = (2.0 * 2.0 + 4.0 * 6.0) / 8.0;
        assert!((o.mean_completed_inaccuracy_pct() - expected).abs() < 1e-12);
        assert_eq!(o.node(1).unwrap().jobs_completed, 6);
    }

    #[test]
    fn pre_hyperscale_archives_deserialize_with_exact_defaults() {
        let o = outcome(2, 0.9, 0.01);
        let json = serde_json::to_string(&o).expect("serializable");
        // An archive written before the population/instance split has none of the
        // approximation fields; it must read back as an exactly-simulated fleet.
        let legacy = json
            .replace("\"approximation\":\"Exact\",", "")
            .replace("\"simulated_instances\":2,", "")
            .replace("\"replicas\":1,", "");
        assert!(!legacy.contains("approximation"), "{legacy}");
        let back: ClusterOutcome =
            serde_json::from_str(&legacy).expect("legacy archives deserialize");
        assert_eq!(back.approximation, FleetApproximation::Exact);
        assert_eq!(back.simulated_instances, 0);
        assert_eq!(back.node_outcomes[0].replicas, 1);
    }

    #[test]
    fn fault_free_outcomes_omit_the_faults_block() {
        let o = outcome(2, 0.9, 0.01);
        let json = serde_json::to_string(&o).expect("serializable");
        assert!(
            !json.contains("\"faults\""),
            "fault-free archives must stay byte-identical to pre-fault ones: {json}"
        );
        let mut with = o.clone();
        with.faults = Some(FaultStats {
            crashes: 1,
            degradations: 2,
            jobs_requeued: 3,
            down_node_intervals: 20,
            degraded_node_intervals: 15,
            availability: 0.95,
        });
        let json = serde_json::to_string(&with).expect("serializable");
        assert!(json.contains("\"faults\""));
        let back: ClusterOutcome = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.faults, with.faults);
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let o = outcome(3, 0.8, 0.01);
        let json = serde_json::to_string(&o).expect("serializable");
        let back: ClusterOutcome = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.fleet_p99_s, o.fleet_p99_s);
        assert_eq!(back.nodes, o.nodes);
        assert_eq!(back.scheduler_stats, o.scheduler_stats);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
