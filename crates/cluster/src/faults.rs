//! Deterministic fault injection: node crashes, stragglers, and correlated outages.
//!
//! A [`FaultProfile`] is the failure-side sibling of a
//! [`LoadProfile`](pliant_workloads::profile::LoadProfile): it describes *what goes wrong*
//! over a run — stochastic per-node crash and degradation hazards, explicitly scheduled
//! faults, and correlated whole-group outages — without saying anything about how the
//! fleet reacts. The profile is compiled once, before the run starts, into a flat
//! schedule of fault events over *logical* nodes, drawn from a dedicated RNG stream
//! derived from the scenario seed. Compilation is independent of everything the
//! simulation later does, which gives three properties the rest of the crate relies on:
//!
//! 1. **Determinism** — the same scenario (seed included) always experiences the same
//!    fault trace, on any thread count, traced or untraced.
//! 2. **Checkpointability** — mid-run fault state is just a cursor into the schedule
//!    plus per-node health, so snapshots stay small and resume is exact.
//! 3. **Fleet-approximation compatibility** — because the schedule names logical nodes
//!    before instances are planned, the clustered approximation can carve the faulted
//!    logical nodes out of their replica groups and simulate them exactly
//!    ([`NodePopulation::plan_instances_isolating`](crate::population::NodePopulation::plan_instances_isolating)).
//!
//! Consumption is a zero-allocation cursor walk inside
//! [`ClusterSim`](crate::sim::ClusterSim): each interval the simulator first recovers
//! nodes whose outage expired, then applies every event scheduled for the interval.
//! Events targeting a node that is not healthy are dropped (a crash cannot crash an
//! already-down node), so overlapping stochastic and scheduled faults compose safely.

use serde::{Deserialize, Serialize};

use pliant_telemetry::rng::{derive_seed, seeded_rng};
use rand::Rng;

use crate::population::{InstancePlan, NodePopulation};
use crate::topology::Topology;

/// RNG stream label for the stochastic fault schedule (derived from the scenario seed;
/// disjoint from every node/balancer/monitor stream, so enabling faults never perturbs
/// the traffic or batch randomness of the run).
const FAULT_STREAM: u64 = 0xFA17_0001;

/// What a fault does to the node it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node crashes: it stops serving traffic, its unfinished batch jobs are lost
    /// (and re-queued by the scheduler), and it consumes only parked power until it
    /// recovers.
    Crash,
    /// The node keeps serving but every request is slowed by `1 / factor` — a degraded
    /// frequency straggler (e.g. thermal throttling or a failing DIMM).
    Degrade {
        /// Remaining effective speed as a fraction in `(0, 1)` (e.g. `0.6` = the node
        /// runs at 60% of nominal frequency).
        factor: f64,
    },
}

/// One explicitly scheduled fault on a specific logical node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Logical node the fault strikes.
    pub node: usize,
    /// Decision interval at which the fault begins (0-based).
    pub at_interval: u64,
    /// How many decision intervals the fault lasts (≥ 1).
    pub duration_intervals: u64,
    /// What the fault does.
    pub kind: FaultKind,
}

/// A correlated outage taking down every member of one population group at once
/// (modelling a shared failure domain: a rack power feed, a top-of-rack switch).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupOutage {
    /// Index of the [`NodeGroup`](crate::population::NodeGroup) that fails, in
    /// population order.
    pub group: usize,
    /// Decision interval at which the outage begins (0-based).
    pub at_interval: u64,
    /// How many decision intervals the outage lasts (≥ 1).
    pub duration_intervals: u64,
}

/// A correlated outage taking down every node of one topology rack at once — a power-
/// domain failure (the rack's power feed or busbar trips), addressed by *physical*
/// rack rather than population group. Racks come from the scenario's
/// [`TopologyConfig`](crate::topology::TopologyConfig); on a flat topology the single
/// implicit rack covers the whole fleet, so a rack outage there is a full-fleet
/// blackout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackOutage {
    /// Index of the [`Rack`](crate::topology::Rack) that loses power, in topology
    /// order.
    pub rack: usize,
    /// Decision interval at which the outage begins (0-based).
    pub at_interval: u64,
    /// How many decision intervals the outage lasts (≥ 1).
    pub duration_intervals: u64,
}

/// The failure-side input of a cluster scenario; see the module docs.
///
/// All axes compose: stochastic hazards, scheduled faults, and group outages are merged
/// into one schedule. The default profile is empty (no faults), and an empty profile is
/// guaranteed not to perturb the run in any way — the simulator takes the exact same
/// code paths as a scenario with no profile at all.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultProfile {
    /// Per-node, per-interval crash probability (0 disables stochastic crashes).
    #[serde(default)]
    pub crash_probability: f64,
    /// How many decision intervals a stochastically crashed node stays down before
    /// recovering (must be ≥ 1 when `crash_probability > 0`).
    #[serde(default)]
    pub outage_intervals: u64,
    /// Per-node, per-interval degradation probability (0 disables stochastic
    /// stragglers).
    #[serde(default)]
    pub degrade_probability: f64,
    /// Remaining effective speed of a stochastically degraded node, in `(0, 1)`.
    #[serde(default)]
    pub degrade_factor: f64,
    /// How many decision intervals a stochastic degradation lasts (must be ≥ 1 when
    /// `degrade_probability > 0`).
    #[serde(default)]
    pub degrade_intervals: u64,
    /// Explicitly scheduled faults, on top of the stochastic hazards.
    #[serde(default)]
    pub scheduled: Vec<ScheduledFault>,
    /// Correlated group outages, on top of everything else.
    #[serde(default)]
    pub group_outages: Vec<GroupOutage>,
    /// Correlated rack power-domain outages, addressed by topology rack.
    #[serde(default)]
    pub rack_outages: Vec<RackOutage>,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            crash_probability: 0.0,
            outage_intervals: 0,
            degrade_probability: 0.0,
            degrade_factor: 0.0,
            degrade_intervals: 0,
            scheduled: Vec::new(),
            group_outages: Vec::new(),
            rack_outages: Vec::new(),
        }
    }
}

impl FaultProfile {
    /// An empty profile (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the profile injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crash_probability <= 0.0
            && self.degrade_probability <= 0.0
            && self.scheduled.is_empty()
            && self.group_outages.is_empty()
            && self.rack_outages.is_empty()
    }

    /// The fleet-independent half of validation: probabilities in range, every enabled
    /// hazard carries a duration, every factor in `(0, 1)`. Enforced at the
    /// deserialization boundary, where the fleet shape is not yet known; node/group
    /// ranges are checked by [`Self::validate`].
    pub fn validate_shape(&self) -> Result<(), FaultProfileError> {
        if !(0.0..=1.0).contains(&self.crash_probability) {
            return Err(FaultProfileError::InvalidCrashProbability);
        }
        if !(0.0..=1.0).contains(&self.degrade_probability) {
            return Err(FaultProfileError::InvalidDegradeProbability);
        }
        if self.crash_probability > 0.0 && self.outage_intervals == 0 {
            return Err(FaultProfileError::MissingOutageDuration);
        }
        if self.degrade_probability > 0.0 {
            if self.degrade_intervals == 0 {
                return Err(FaultProfileError::MissingDegradeDuration);
            }
            if !(self.degrade_factor > 0.0 && self.degrade_factor < 1.0) {
                return Err(FaultProfileError::InvalidDegradeFactor);
            }
        }
        for (index, fault) in self.scheduled.iter().enumerate() {
            if fault.duration_intervals == 0 {
                return Err(FaultProfileError::ScheduledZeroDuration { index });
            }
            if let FaultKind::Degrade { factor } = fault.kind {
                if !(factor > 0.0 && factor < 1.0) {
                    return Err(FaultProfileError::ScheduledInvalidFactor { index });
                }
            }
        }
        for (index, outage) in self.group_outages.iter().enumerate() {
            if outage.duration_intervals == 0 {
                return Err(FaultProfileError::GroupZeroDuration { index });
            }
        }
        for (index, outage) in self.rack_outages.iter().enumerate() {
            if outage.duration_intervals == 0 {
                return Err(FaultProfileError::RackZeroDuration { index });
            }
        }
        Ok(())
    }

    /// Validates the profile against a fleet of `nodes` logical nodes partitioned into
    /// `groups` population groups and `racks` topology racks.
    pub fn validate(
        &self,
        nodes: usize,
        groups: usize,
        racks: usize,
    ) -> Result<(), FaultProfileError> {
        self.validate_shape()?;
        for (index, fault) in self.scheduled.iter().enumerate() {
            if fault.node >= nodes {
                return Err(FaultProfileError::ScheduledNodeOutOfRange {
                    index,
                    node: fault.node,
                    nodes,
                });
            }
        }
        for (index, outage) in self.group_outages.iter().enumerate() {
            if outage.group >= groups {
                return Err(FaultProfileError::GroupOutOfRange {
                    index,
                    group: outage.group,
                    groups,
                });
            }
        }
        for (index, outage) in self.rack_outages.iter().enumerate() {
            if outage.rack >= racks {
                return Err(FaultProfileError::RackOutOfRange {
                    index,
                    rack: outage.rack,
                    racks,
                });
            }
        }
        Ok(())
    }
}

// Hand-written so the shape invariants hold on every decode path: a fault profile
// cannot enter through an archive without passing [`FaultProfile::validate_shape`]
// (the fleet-dependent range checks run later, in `ClusterScenario::validate`, where
// the population is known). Missing fields take their defaults, mirroring the
// `#[serde(default)]` annotations used for serialization.
impl Deserialize for FaultProfile {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize + Default>(
            value: &serde::Value,
            name: &str,
        ) -> Result<T, serde::Error> {
            match value.get(name) {
                Some(v) => T::from_value(v),
                None => Ok(T::default()),
            }
        }
        let profile = FaultProfile {
            crash_probability: field(value, "crash_probability")?,
            outage_intervals: field(value, "outage_intervals")?,
            degrade_probability: field(value, "degrade_probability")?,
            degrade_factor: field(value, "degrade_factor")?,
            degrade_intervals: field(value, "degrade_intervals")?,
            scheduled: field(value, "scheduled")?,
            group_outages: field(value, "group_outages")?,
            rack_outages: field(value, "rack_outages")?,
        };
        profile
            .validate_shape()
            .map_err(|e| serde::Error::custom(format!("invalid fault profile: {e}")))?;
        Ok(profile)
    }
}

/// Why a [`FaultProfile`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfileError {
    /// `crash_probability` is outside `[0, 1]`.
    InvalidCrashProbability,
    /// A stochastic crash hazard is enabled but `outage_intervals` is zero.
    MissingOutageDuration,
    /// `degrade_probability` is outside `[0, 1]`.
    InvalidDegradeProbability,
    /// A stochastic degradation hazard is enabled but `degrade_intervals` is zero.
    MissingDegradeDuration,
    /// A stochastic degradation hazard is enabled but `degrade_factor` is not in
    /// `(0, 1)`.
    InvalidDegradeFactor,
    /// A scheduled fault names a node outside the fleet.
    ScheduledNodeOutOfRange {
        /// Position in [`FaultProfile::scheduled`].
        index: usize,
        /// The out-of-range logical node.
        node: usize,
        /// The fleet size.
        nodes: usize,
    },
    /// A scheduled fault lasts zero intervals.
    ScheduledZeroDuration {
        /// Position in [`FaultProfile::scheduled`].
        index: usize,
    },
    /// A scheduled degradation's factor is not in `(0, 1)`.
    ScheduledInvalidFactor {
        /// Position in [`FaultProfile::scheduled`].
        index: usize,
    },
    /// A group outage names a group outside the population.
    GroupOutOfRange {
        /// Position in [`FaultProfile::group_outages`].
        index: usize,
        /// The out-of-range group.
        group: usize,
        /// Number of population groups.
        groups: usize,
    },
    /// A group outage lasts zero intervals.
    GroupZeroDuration {
        /// Position in [`FaultProfile::group_outages`].
        index: usize,
    },
    /// A rack outage names a rack outside the topology.
    RackOutOfRange {
        /// Position in [`FaultProfile::rack_outages`].
        index: usize,
        /// The out-of-range rack.
        rack: usize,
        /// Number of topology racks.
        racks: usize,
    },
    /// A rack outage lasts zero intervals.
    RackZeroDuration {
        /// Position in [`FaultProfile::rack_outages`].
        index: usize,
    },
}

impl std::fmt::Display for FaultProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultProfileError::InvalidCrashProbability => {
                f.write_str("crash_probability must be in [0, 1]")
            }
            FaultProfileError::MissingOutageDuration => {
                f.write_str("outage_intervals must be >= 1 when crash_probability > 0")
            }
            FaultProfileError::InvalidDegradeProbability => {
                f.write_str("degrade_probability must be in [0, 1]")
            }
            FaultProfileError::MissingDegradeDuration => {
                f.write_str("degrade_intervals must be >= 1 when degrade_probability > 0")
            }
            FaultProfileError::InvalidDegradeFactor => {
                f.write_str("degrade_factor must be in (0, 1)")
            }
            FaultProfileError::ScheduledNodeOutOfRange { index, node, nodes } => write!(
                f,
                "scheduled fault {index} targets node {node} but the fleet has {nodes} nodes"
            ),
            FaultProfileError::ScheduledZeroDuration { index } => {
                write!(f, "scheduled fault {index} must last at least one interval")
            }
            FaultProfileError::ScheduledInvalidFactor { index } => write!(
                f,
                "scheduled fault {index} has a degrade factor outside (0, 1)"
            ),
            FaultProfileError::GroupOutOfRange {
                index,
                group,
                groups,
            } => write!(
                f,
                "group outage {index} targets group {group} but the population has {groups} groups"
            ),
            FaultProfileError::GroupZeroDuration { index } => {
                write!(f, "group outage {index} must last at least one interval")
            }
            FaultProfileError::RackOutOfRange { index, rack, racks } => write!(
                f,
                "rack outage {index} targets rack {rack} but the topology has {racks} racks"
            ),
            FaultProfileError::RackZeroDuration { index } => {
                write!(f, "rack outage {index} must last at least one interval")
            }
        }
    }
}

impl std::error::Error for FaultProfileError {}

/// One compiled fault occurrence, over logical nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FaultEvent {
    /// Decision interval at which the fault begins.
    pub interval: u64,
    /// Logical node it strikes.
    pub node: usize,
    /// What it does.
    pub kind: FaultKind,
    /// How many intervals it lasts.
    pub duration: u64,
}

/// Compiles a profile into the run's fault schedule: stochastic draws (from a dedicated
/// seed-derived stream, interval-major then node-minor, one draw per enabled hazard per
/// node-interval regardless of hits — so the schedule is a pure function of profile,
/// seed, fleet size, and horizon), merged with the scheduled faults and the expanded
/// group and rack outages, sorted by `(interval, node)`. Rack outages expand over the
/// topology's member lists exactly as group outages expand over the population's, so
/// every downstream consumer — stats, availability, the isolating instance planner —
/// sees plain per-node crashes and composes for free.
pub(crate) fn compile_schedule(
    profile: &FaultProfile,
    seed: u64,
    population: &NodePopulation,
    topology: &Topology,
    max_intervals: usize,
) -> Vec<FaultEvent> {
    let nodes = population.total_nodes();
    let mut schedule = Vec::new();
    if profile.crash_probability > 0.0 || profile.degrade_probability > 0.0 {
        let mut rng = seeded_rng(derive_seed(seed, FAULT_STREAM));
        for interval in 0..max_intervals as u64 {
            for node in 0..nodes {
                if profile.crash_probability > 0.0 && rng.gen_bool(profile.crash_probability) {
                    schedule.push(FaultEvent {
                        interval,
                        node,
                        kind: FaultKind::Crash,
                        duration: profile.outage_intervals,
                    });
                }
                if profile.degrade_probability > 0.0 && rng.gen_bool(profile.degrade_probability) {
                    schedule.push(FaultEvent {
                        interval,
                        node,
                        kind: FaultKind::Degrade {
                            factor: profile.degrade_factor,
                        },
                        duration: profile.degrade_intervals,
                    });
                }
            }
        }
    }
    for fault in &profile.scheduled {
        schedule.push(FaultEvent {
            interval: fault.at_interval,
            node: fault.node,
            kind: fault.kind,
            duration: fault.duration_intervals,
        });
    }
    for outage in &profile.group_outages {
        for &member in &population.groups()[outage.group].members {
            schedule.push(FaultEvent {
                interval: outage.at_interval,
                node: member,
                kind: FaultKind::Crash,
                duration: outage.duration_intervals,
            });
        }
    }
    for outage in &profile.rack_outages {
        for &member in &topology.racks()[outage.rack].members {
            schedule.push(FaultEvent {
                interval: outage.at_interval,
                node: member,
                kind: FaultKind::Crash,
                duration: outage.duration_intervals,
            });
        }
    }
    schedule.sort_by_key(|e| (e.interval, e.node));
    schedule
}

/// Marks which logical nodes the schedule ever touches (the nodes the clustered
/// approximation must simulate exactly rather than fold into a replica group).
pub(crate) fn faulted_logical_nodes(schedule: &[FaultEvent], nodes: usize) -> Vec<bool> {
    let mut faulted = vec![false; nodes];
    for event in schedule {
        faulted[event.node] = true;
    }
    faulted
}

/// Health of one simulated node instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Serving normally.
    Up,
    /// Crashed; recovers at the start of interval `until`.
    Down {
        /// First interval at which the node is back up.
        until: u64,
    },
    /// Serving at reduced speed; back to nominal at the start of interval `until`.
    Degraded {
        /// First interval at which the node is back to nominal speed.
        until: u64,
        /// Remaining effective speed while degraded, in `(0, 1)`.
        factor: f64,
    },
}

impl NodeHealth {
    /// Whether the node is serving traffic (up or degraded, but not down).
    pub fn is_serving(&self) -> bool {
        !matches!(self, NodeHealth::Down { .. })
    }
}

/// Fault-injection outcome counters, reported in
/// [`ClusterOutcome::faults`](crate::outcome::ClusterOutcome::faults) when the scenario
/// carries a fault profile.
///
/// Node-interval counters are replica-weighted: a crash on an instance standing for `w`
/// logical nodes counts `w` node-intervals per interval of outage, so availability is
/// comparable between exact and clustered runs of the same scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Crash events applied (a correlated group outage counts one per member).
    pub crashes: u64,
    /// Degradation events applied.
    pub degradations: u64,
    /// Batch-job placements lost to crashes and handed back to the queue (counted in
    /// logical jobs, i.e. replica-weighted).
    pub jobs_requeued: u64,
    /// Logical node-intervals spent down.
    pub down_node_intervals: u64,
    /// Logical node-intervals spent degraded.
    pub degraded_node_intervals: u64,
    /// `1 - down_node_intervals / (nodes * intervals)` — the fraction of logical
    /// node-intervals that were in service.
    pub availability: f64,
}

/// Live fault-injection state inside a running [`ClusterSim`](crate::sim::ClusterSim).
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    /// Compiled schedule, over logical nodes, sorted by `(interval, node)`.
    pub schedule: Vec<FaultEvent>,
    /// Next unconsumed schedule entry.
    pub cursor: usize,
    /// Logical node → simulated instance carrying it exactly (weight-1), if any.
    pub instance_of: Vec<Option<usize>>,
    /// Per-instance health.
    pub health: Vec<NodeHealth>,
    /// Crash events applied.
    pub crashes: u64,
    /// Degradation events applied.
    pub degradations: u64,
    /// Jobs re-queued off crashed nodes (replica-weighted).
    pub jobs_requeued: u64,
    /// Replica-weighted node-intervals spent down.
    pub down_node_intervals: u64,
    /// Replica-weighted node-intervals spent degraded.
    pub degraded_node_intervals: u64,
}

impl FaultState {
    /// Builds the initial state for a fleet materialized as `plans`: every weight-1
    /// instance is addressable by its logical node (in exact mode that is every node;
    /// under the clustered approximation the isolating planner guarantees every faulted
    /// node got a weight-1 instance).
    pub fn new(schedule: Vec<FaultEvent>, logical_nodes: usize, plans: &[InstancePlan]) -> Self {
        let mut instance_of = vec![None; logical_nodes];
        for (index, plan) in plans.iter().enumerate() {
            if plan.replicas == 1 {
                instance_of[plan.seed_member] = Some(index);
            }
        }
        FaultState {
            schedule,
            cursor: 0,
            instance_of,
            health: vec![NodeHealth::Up; plans.len()],
            crashes: 0,
            degradations: 0,
            jobs_requeued: 0,
            down_node_intervals: 0,
            degraded_node_intervals: 0,
        }
    }

    /// The outcome counters, with availability computed over `nodes * intervals`
    /// logical node-intervals.
    pub fn stats(&self, logical_nodes: usize, intervals: usize) -> FaultStats {
        let denom = (logical_nodes * intervals) as f64;
        FaultStats {
            crashes: self.crashes,
            degradations: self.degradations,
            jobs_requeued: self.jobs_requeued,
            down_node_intervals: self.down_node_intervals,
            degraded_node_intervals: self.degraded_node_intervals,
            availability: if denom > 0.0 {
                1.0 - self.down_node_intervals as f64 / denom
            } else {
                1.0
            },
        }
    }

    /// Captures the mutable part of the state for a checkpoint (the schedule and the
    /// logical→instance map are pure functions of the scenario and are recompiled on
    /// restore).
    pub fn snapshot(&self) -> FaultStateSnapshot {
        FaultStateSnapshot {
            cursor: self.cursor,
            health: self.health.clone(),
            crashes: self.crashes,
            degradations: self.degradations,
            jobs_requeued: self.jobs_requeued,
            down_node_intervals: self.down_node_intervals,
            degraded_node_intervals: self.degraded_node_intervals,
        }
    }

    /// Restores the mutable part of the state from a checkpoint.
    pub fn restore(&mut self, snapshot: &FaultStateSnapshot) -> Result<(), String> {
        if snapshot.health.len() != self.health.len() {
            return Err(format!(
                "fault snapshot covers {} instances, fleet has {}",
                snapshot.health.len(),
                self.health.len()
            ));
        }
        if snapshot.cursor > self.schedule.len() {
            return Err(format!(
                "fault snapshot cursor {} exceeds schedule length {}",
                snapshot.cursor,
                self.schedule.len()
            ));
        }
        self.cursor = snapshot.cursor;
        self.health.clone_from(&snapshot.health);
        self.crashes = snapshot.crashes;
        self.degradations = snapshot.degradations;
        self.jobs_requeued = snapshot.jobs_requeued;
        self.down_node_intervals = snapshot.down_node_intervals;
        self.degraded_node_intervals = snapshot.degraded_node_intervals;
        Ok(())
    }
}

/// Serialized mutable fault state inside a
/// [`ClusterCheckpoint`](crate::sim::ClusterCheckpoint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultStateSnapshot {
    /// Next unconsumed entry of the (recompiled) schedule.
    pub cursor: usize,
    /// Per-instance health at the checkpoint.
    pub health: Vec<NodeHealth>,
    /// Crash events applied so far.
    pub crashes: u64,
    /// Degradation events applied so far.
    pub degradations: u64,
    /// Jobs re-queued off crashed nodes so far (replica-weighted).
    pub jobs_requeued: u64,
    /// Replica-weighted node-intervals spent down so far.
    pub down_node_intervals: u64,
    /// Replica-weighted node-intervals spent degraded so far.
    pub degraded_node_intervals: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ClusterScenario;
    use pliant_approx::catalog::AppId;
    use pliant_workloads::service::ServiceId;

    fn flat(nodes: usize) -> Topology {
        Topology::resolve(&crate::topology::TopologyConfig::Flat, nodes)
    }

    fn population(nodes: usize) -> NodePopulation {
        let mix = [AppId::Canneal, AppId::Snp, AppId::Raytrace];
        let scenario = ClusterScenario::builder(ServiceId::Memcached)
            .nodes(nodes)
            .jobs((0..nodes).map(|i| mix[i % 3]))
            .horizon_intervals(40)
            .build();
        NodePopulation::from_scenario(&scenario)
    }

    #[test]
    fn empty_profile_compiles_to_an_empty_schedule() {
        let profile = FaultProfile::new();
        assert!(profile.is_empty());
        let schedule = compile_schedule(&profile, 42, &population(6), &flat(6), 40);
        assert!(schedule.is_empty());
    }

    #[test]
    fn stochastic_schedule_is_a_pure_function_of_seed_and_shape() {
        let profile = FaultProfile {
            crash_probability: 0.02,
            outage_intervals: 5,
            degrade_probability: 0.03,
            degrade_factor: 0.6,
            degrade_intervals: 4,
            ..FaultProfile::new()
        };
        let pop = population(6);
        let a = compile_schedule(&profile, 42, &pop, &flat(6), 200);
        let b = compile_schedule(&profile, 42, &pop, &flat(6), 200);
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        assert!(
            !a.is_empty(),
            "200x6 node-intervals at 2%+3% must draw hits"
        );
        let c = compile_schedule(&profile, 43, &pop, &flat(6), 200);
        assert_ne!(a, c, "different seeds must draw different schedules");
        // Sorted by (interval, node): a cursor walk consumes it in one pass.
        assert!(a
            .windows(2)
            .all(|w| (w[0].interval, w[0].node) <= (w[1].interval, w[1].node)));
    }

    #[test]
    fn group_outages_expand_to_every_member() {
        let profile = FaultProfile {
            group_outages: vec![GroupOutage {
                group: 0,
                at_interval: 7,
                duration_intervals: 3,
            }],
            ..FaultProfile::new()
        };
        let pop = population(7); // group 0 = members [0, 3, 6]
        let schedule = compile_schedule(&profile, 42, &pop, &flat(7), 40);
        assert_eq!(schedule.len(), 3);
        let nodes: Vec<usize> = schedule.iter().map(|e| e.node).collect();
        assert_eq!(nodes, vec![0, 3, 6]);
        assert!(schedule
            .iter()
            .all(|e| e.interval == 7 && e.duration == 3 && e.kind == FaultKind::Crash));
        let faulted = faulted_logical_nodes(&schedule, 7);
        assert_eq!(faulted, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn validate_rejects_malformed_profiles() {
        let nodes = 4;
        let groups = 2;
        let racks = 2;
        let ok = |p: &FaultProfile| p.validate(nodes, groups, racks);
        assert!(ok(&FaultProfile::new()).is_ok());
        let mut p = FaultProfile::new();
        p.crash_probability = 1.5;
        assert!(ok(&p).is_err(), "probability above 1");
        let mut p = FaultProfile::new();
        p.crash_probability = 0.1;
        assert!(ok(&p).is_err(), "crash hazard without an outage duration");
        p.outage_intervals = 10;
        assert!(ok(&p).is_ok());
        let mut p = FaultProfile::new();
        p.degrade_probability = 0.1;
        p.degrade_intervals = 5;
        p.degrade_factor = 1.0;
        assert!(ok(&p).is_err(), "degrade factor must be below 1");
        p.degrade_factor = 0.5;
        assert!(ok(&p).is_ok());
        let mut p = FaultProfile::new();
        p.scheduled.push(ScheduledFault {
            node: nodes,
            at_interval: 0,
            duration_intervals: 1,
            kind: FaultKind::Crash,
        });
        assert!(ok(&p).is_err(), "scheduled node out of range");
        let mut p = FaultProfile::new();
        p.group_outages.push(GroupOutage {
            group: groups,
            at_interval: 0,
            duration_intervals: 1,
        });
        assert!(ok(&p).is_err(), "group out of range");
        let mut p = FaultProfile::new();
        p.rack_outages.push(RackOutage {
            rack: racks,
            at_interval: 0,
            duration_intervals: 1,
        });
        assert_eq!(
            ok(&p),
            Err(FaultProfileError::RackOutOfRange {
                index: 0,
                rack: racks,
                racks,
            }),
            "rack out of range"
        );
        let mut p = FaultProfile::new();
        p.rack_outages.push(RackOutage {
            rack: 0,
            at_interval: 0,
            duration_intervals: 0,
        });
        assert_eq!(
            p.validate_shape(),
            Err(FaultProfileError::RackZeroDuration { index: 0 }),
            "zero-duration rack outage is caught at the archive boundary"
        );
    }

    #[test]
    fn rack_outages_expand_over_power_domains() {
        let profile = FaultProfile {
            rack_outages: vec![RackOutage {
                rack: 1,
                at_interval: 5,
                duration_intervals: 4,
            }],
            ..FaultProfile::new()
        };
        let pop = population(6);
        let topo = Topology::resolve(
            &crate::topology::TopologyConfig::Racks {
                racks: 2,
                nodes_per_rack: 3,
                rack_power_w: None,
            },
            6,
        );
        let schedule = compile_schedule(&profile, 42, &pop, &topo, 40);
        // Rack 1 holds the contiguous back half of the fleet; every member crashes.
        let nodes: Vec<usize> = schedule.iter().map(|e| e.node).collect();
        assert_eq!(nodes, vec![3, 4, 5]);
        assert!(schedule
            .iter()
            .all(|e| e.interval == 5 && e.duration == 4 && e.kind == FaultKind::Crash));
        // On a flat topology the single implicit rack is the whole fleet.
        let mut blackout = profile.clone();
        blackout.rack_outages[0].rack = 0;
        let schedule = compile_schedule(&blackout, 42, &pop, &flat(6), 40);
        assert_eq!(schedule.len(), 6);
    }

    #[test]
    fn fault_state_tracks_instances_and_round_trips_snapshots() {
        let profile = FaultProfile {
            scheduled: vec![ScheduledFault {
                node: 2,
                at_interval: 3,
                duration_intervals: 4,
                kind: FaultKind::Crash,
            }],
            ..FaultProfile::new()
        };
        let pop = population(4);
        let schedule = compile_schedule(&profile, 42, &pop, &flat(4), 20);
        let plans = pop.plan_instances(&crate::scenario::FleetApproximation::Exact);
        let mut state = FaultState::new(schedule, 4, &plans);
        assert_eq!(state.instance_of, vec![Some(0), Some(1), Some(2), Some(3)]);
        state.cursor = 1;
        state.health[2] = NodeHealth::Down { until: 7 };
        state.crashes = 1;
        state.down_node_intervals = 2;
        let snap = state.snapshot();
        let json = serde_json::to_string(&snap).expect("serializable");
        let back: FaultStateSnapshot = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, snap);
        let schedule = compile_schedule(&profile, 42, &pop, &flat(4), 20);
        let mut fresh = FaultState::new(schedule, 4, &plans);
        fresh.restore(&back).expect("restorable");
        assert_eq!(fresh.cursor, 1);
        assert_eq!(fresh.health[2], NodeHealth::Down { until: 7 });
        assert_eq!(fresh.stats(4, 20).crashes, 1);
        let stats = fresh.stats(4, 20);
        assert!((stats.availability - (1.0 - 2.0 / 80.0)).abs() < 1e-12);
        // A snapshot from a different fleet shape is rejected.
        let bad = FaultStateSnapshot {
            health: vec![NodeHealth::Up; 2],
            ..back.clone()
        };
        assert!(fresh.restore(&bad).is_err());
    }

    #[test]
    fn profile_round_trips_through_json() {
        let profile = FaultProfile {
            crash_probability: 0.01,
            outage_intervals: 12,
            degrade_probability: 0.02,
            degrade_factor: 0.7,
            degrade_intervals: 6,
            scheduled: vec![ScheduledFault {
                node: 1,
                at_interval: 30,
                duration_intervals: 20,
                kind: FaultKind::Degrade { factor: 0.5 },
            }],
            group_outages: vec![GroupOutage {
                group: 0,
                at_interval: 10,
                duration_intervals: 8,
            }],
            rack_outages: vec![RackOutage {
                rack: 1,
                at_interval: 15,
                duration_intervals: 5,
            }],
        };
        let json = serde_json::to_string(&profile).expect("serializable");
        let back: FaultProfile = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, profile);
        // A pre-topology archive carries no `rack_outages` key; the field defaults.
        let value: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let legacy = serde_json::to_string(&serde::Value::Object(
            value
                .as_object()
                .expect("profiles serialize as objects")
                .iter()
                .filter(|(k, _)| k != "rack_outages")
                .cloned()
                .collect(),
        ))
        .expect("serializable");
        let back: FaultProfile = serde_json::from_str(&legacy).expect("deserializable");
        assert!(back.rack_outages.is_empty());
    }
}
