//! One fleet node: a co-location simulator plus its own Pliant runtime.
//!
//! A [`ClusterNode`] wraps exactly what a single-node experiment runs — a
//! [`ColocationSim`], a [`PerformanceMonitor`], a policy built from the scenario's
//! [`PolicyKind`](pliant_core::policy::PolicyKind), and an [`Actuator`] — and advances it
//! one decision interval at a time under whatever offered load the cluster's balancer
//! assigns. Nodes are fully independent within an interval (each derives its own RNG
//! streams from the cluster seed), which is what lets the cluster engine advance them in
//! parallel without changing any result.

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::{AppId, AppProfile, Catalog};
use pliant_core::actuator::{Action, Actuator, ActuatorStats};
use pliant_core::controller::ControllerConfig;
use pliant_core::monitor::{MonitorConfig, MonitorSnapshot, PerformanceMonitor};
use pliant_core::policy::Policy;
use pliant_sim::colocation::{
    ColocationConfig, ColocationSim, ColocationSimSnapshot, IntervalObservation,
};
use pliant_telemetry::histogram::LatencyHistogram;
use pliant_telemetry::obs::{Event, ObsAction, ObsBuffer, ObsLevel, DEFAULT_NODE_CAPACITY};
use pliant_telemetry::rng::derive_seed;

use crate::scenario::ClusterScenario;

/// Per-idle-interval decay of the balancer-visible smoothed-latency estimate. The
/// monitor's own EWMA is untouched (idle gaps are no evidence for the controller); this
/// only ages the dispatcher's view so a shed node rejoins the rotation within a few
/// intervals instead of being starved on a frozen reading.
const IDLE_ESTIMATE_DECAY: f64 = 0.5;

/// A node's externally visible state at an interval boundary, consumed by the load
/// balancer and the batch scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSnapshot {
    /// Index of the node within the fleet.
    pub index: usize,
    /// Smoothed (EWMA) tail-latency estimate of the node's interactive service, in
    /// seconds; `0.0` until the first traffic-serving interval.
    pub smoothed_p99_s: f64,
    /// Utilization of the node's interactive service during the last interval.
    pub utilization: f64,
    /// Batch slots whose job has finished (free for a queued job).
    pub free_slots: usize,
    /// The node's QoS target in seconds.
    pub qos_target_s: f64,
}

impl NodeSnapshot {
    /// Tail-latency slack relative to the QoS target (positive = headroom), from the
    /// smoothed estimate.
    pub fn slack_fraction(&self) -> f64 {
        if self.qos_target_s > 0.0 {
            (self.qos_target_s - self.smoothed_p99_s) / self.qos_target_s
        } else {
            0.0
        }
    }
}

/// What one node produced during one decision interval.
#[derive(Debug, Clone)]
pub struct NodeInterval {
    /// Index of the node within the fleet.
    pub node: usize,
    /// Offered load the balancer *routed* to this node for the interval, as a fraction
    /// of the node's saturation throughput. Routed, not served: the workload generator
    /// caps at 1.2x saturation, so in overload this exceeds the load the node actually
    /// ran — `observation.offered_load` reports the served (capped) value.
    pub assigned_load: f64,
    /// Cores the node's interactive service held beyond its fair share at the end of
    /// the interval (cores reclaimed from the batch slots).
    pub extra_service_cores: u32,
    /// Jobs that ran to completion during the interval, weighted by the replica count
    /// of the slot they occupied (equal to the plain completion count on an exact,
    /// weight-1 node).
    pub jobs_completed: usize,
    /// The node's smoothed tail-latency estimate after the interval, in seconds.
    pub smoothed_p99_s: f64,
    /// Logical nodes this instance stands for (1 on an exact node; the replica weight
    /// of its population chunk on a clustered representative).
    pub replicas: usize,
    /// The underlying single-node observation (latency samples, per-slot status, …).
    pub observation: IntervalObservation,
}

/// One fleet node; see the module docs.
///
/// A node is either *exact* (stands for one logical node, the default) or a clustered
/// *representative* (stands for `replicas` interchangeable logical nodes of one
/// population group; see [`crate::population`]). A representative runs exactly one
/// simulated co-location — the weighting only multiplies what its samples contribute to
/// the fleet's histogram, QoS counters, energy, and job accounting, which keeps the
/// per-interval hot path identical in both modes.
pub struct ClusterNode {
    index: usize,
    sim: ColocationSim,
    policy: Box<dyn Policy + Send>,
    monitor: PerformanceMonitor,
    actuator: Actuator,
    fair_service_cores: u32,
    /// Per-slot completion latch, used to report each job's completion exactly once.
    slot_done: Vec<bool>,
    /// Inaccuracy of every job completed on this node so far, in percent.
    completed_inaccuracy_pct: Vec<f64>,
    smoothed_p99_s: f64,
    utilization: f64,
    decision_interval_s: f64,
    /// Intervals excluded from the node's QoS statistics (the fleet's convergence
    /// transient).
    warmup_intervals: usize,
    /// Intervals stepped so far, for the warm-up cutoff.
    intervals_stepped: usize,
    /// Cumulative histogram of every post-warm-up latency sample, in microseconds.
    /// Recorded node-side (inside [`Self::step`], i.e. on the worker thread that
    /// advances the node) so the cluster engine aggregates fleet quantiles by merging
    /// N histograms instead of re-iterating every sample on the coordinating thread.
    hist: LatencyHistogram,
    /// Post-warm-up intervals that served traffic.
    busy_intervals: usize,
    /// Post-warm-up intervals with zero arrivals.
    idle_intervals: usize,
    /// Post-warm-up traffic-serving intervals that violated the QoS target.
    qos_violations: usize,
    /// Total electrical energy the node has consumed, in joules. Unlike the QoS
    /// counters this covers the *whole* run (warm-up included) — energy is billed
    /// whenever the machine is on, regardless of measurement windows.
    energy_j: f64,
    /// A consumed observation handed back via [`Self::recycle_observation`], whose
    /// buffers the next step reuses.
    recycle: Option<IntervalObservation>,
    /// Logical nodes this instance stands for (1 = exact).
    replicas: usize,
    /// Per-slot replica weight of the job currently in the slot: initial jobs stand for
    /// `replicas` copies (every member of the chunk starts the same job); jobs placed
    /// later carry the batch weight the scheduler popped for them.
    slot_weight: Vec<usize>,
    /// Replica weight of every completed job, parallel to `completed_inaccuracy_pct`.
    completed_weights: Vec<usize>,
    /// Decision-event ring for this node (disabled — the allocation-free null sink —
    /// unless the cluster engine calls [`Self::enable_obs`]). Filled on whichever
    /// worker thread advances the node; the engine merges rings in node order, so the
    /// stream is identical under serial and parallel execution.
    obs: ObsBuffer,
}

impl ClusterNode {
    /// Builds node `index` of the fleet described by `scenario`, co-locating
    /// `initial_jobs` (one per batch slot). All of the node's RNG streams derive from
    /// the cluster seed and the node index, mirroring how suites derive per-cell seeds.
    ///
    /// # Panics
    ///
    /// Panics if `initial_jobs` is empty or names an application missing from the
    /// catalog.
    pub fn new(
        scenario: &ClusterScenario,
        index: usize,
        initial_jobs: &[pliant_approx::catalog::AppId],
        catalog: &Catalog,
    ) -> Self {
        Self::representative(scenario, index, index, 1, initial_jobs, catalog)
    }

    /// Builds a clustered representative standing for `replicas` logical nodes of one
    /// population group. `index` is the instance's position in the simulated fleet (the
    /// index snapshots and intervals report); `seed_member` is the *logical* node whose
    /// derived RNG streams the representative consumes, which is what gives different
    /// representatives of one group independent randomness (per-replica seed jitter)
    /// and makes `replicas == 1, seed_member == index` coincide exactly with
    /// [`Self::new`].
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero, `initial_jobs` is empty, or a job is missing from
    /// the catalog.
    pub fn representative(
        scenario: &ClusterScenario,
        index: usize,
        seed_member: usize,
        replicas: usize,
        initial_jobs: &[pliant_approx::catalog::AppId],
        catalog: &Catalog,
    ) -> Self {
        assert!(replicas > 0, "a node must stand for at least one replica");
        let node_seed = derive_seed(scenario.seed, 0xC1_0000 + seed_member as u64);
        let mut config = ColocationConfig::paper_default(scenario.service, initial_jobs, node_seed)
            .with_load(scenario.avg_node_load);
        config.instrumented = scenario.effective_instrumented();
        if let Some(qos_s) = scenario.qos_target_s {
            config.service.qos_target_s = qos_s;
        }
        let qos_target_s = config.service.qos_target_s;
        let sim = ColocationSim::new(config, catalog);
        let fair_service_cores = sim.service_cores();

        let variant_counts: Vec<usize> = initial_jobs
            .iter()
            .map(|id| catalog.profile(*id).map_or(0, |p| p.variant_count()))
            .collect();
        let initial_cores: Vec<u32> = (0..initial_jobs.len())
            .map(|i| sim.app(i).cores())
            .collect();
        let controller_config = ControllerConfig {
            decision_interval_s: scenario.decision_interval_s,
            slack_threshold: scenario.slack_threshold,
            consecutive_slack_required: scenario.consecutive_slack_required,
        };
        let start_pointer = (derive_seed(node_seed, 7) % initial_jobs.len() as u64) as usize;
        let policy = scenario.policy.build(
            controller_config,
            &variant_counts,
            &initial_cores,
            start_pointer,
        );
        let monitor = PerformanceMonitor::new(
            MonitorConfig::for_qos(qos_target_s),
            derive_seed(node_seed, 8),
        );

        Self {
            index,
            sim,
            policy,
            monitor,
            actuator: Actuator::new(),
            fair_service_cores,
            slot_done: vec![false; initial_jobs.len()],
            completed_inaccuracy_pct: Vec::new(),
            smoothed_p99_s: 0.0,
            utilization: 0.0,
            decision_interval_s: scenario.decision_interval_s,
            warmup_intervals: scenario.warmup_intervals,
            intervals_stepped: 0,
            hist: LatencyHistogram::new(),
            busy_intervals: 0,
            idle_intervals: 0,
            qos_violations: 0,
            energy_j: 0.0,
            recycle: None,
            replicas,
            slot_weight: vec![replicas; initial_jobs.len()],
            completed_weights: Vec::new(),
            obs: ObsBuffer::disabled(),
        }
    }

    /// Switches the node's event ring on at `level` (source `index + 1`, replica
    /// weight carried through to every record). Called once at construction time by
    /// a traced cluster run; the default is the disabled null sink.
    pub fn enable_obs(&mut self, level: ObsLevel) {
        self.obs = ObsBuffer::new(
            level,
            self.index as u32 + 1,
            self.replicas as u32,
            DEFAULT_NODE_CAPACITY,
        );
    }

    /// Takes the node's event ring, leaving the disabled null sink behind. The cluster
    /// engine calls this once, after the run, to merge per-node streams.
    pub fn take_obs_buffer(&mut self) -> ObsBuffer {
        std::mem::replace(&mut self.obs, ObsBuffer::disabled())
    }

    /// Index of the node within the fleet.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Logical nodes this instance stands for (1 = exact node).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Replica weight of every completed job, parallel to
    /// [`Self::completed_inaccuracy_pct`].
    pub fn completed_weights(&self) -> &[usize] {
        &self.completed_weights
    }

    /// The node's state as the balancer and scheduler see it.
    pub fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            index: self.index,
            smoothed_p99_s: self.smoothed_p99_s,
            utilization: self.utilization,
            free_slots: self.free_slots(),
            qos_target_s: self.sim.config().service.qos_target_s,
        }
    }

    /// Batch slots whose job has finished.
    pub fn free_slots(&self) -> usize {
        (0..self.sim.app_count())
            .filter(|&slot| self.sim.app(slot).is_finished())
            .count()
    }

    /// Cores the interactive service holds beyond its fair share.
    pub fn extra_service_cores(&self) -> u32 {
        self.sim
            .service_cores()
            .saturating_sub(self.fair_service_cores)
    }

    /// Inaccuracy of every job completed on this node so far, in percent.
    pub fn completed_inaccuracy_pct(&self) -> &[f64] {
        &self.completed_inaccuracy_pct
    }

    /// Cumulative histogram of every post-warm-up latency sample the node served, in
    /// microseconds. Per-node histograms share one bucket layout, so the fleet's p99 is
    /// their exact merge (see
    /// [`LatencyHistogram::try_merge`]).
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Post-warm-up intervals that served traffic.
    pub fn busy_intervals(&self) -> usize {
        self.busy_intervals
    }

    /// Post-warm-up intervals with zero arrivals.
    pub fn idle_intervals(&self) -> usize {
        self.idle_intervals
    }

    /// Post-warm-up traffic-serving intervals that violated the QoS target.
    pub fn qos_violations(&self) -> usize {
        self.qos_violations
    }

    /// Total electrical energy the node has consumed over the whole run, in joules.
    /// Recorded node-side (on the worker thread advancing the node, like the latency
    /// histogram), so fleet energy is the exact sum of these.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Suspends the node (autoscaler park) or powers it back on; forwarded to
    /// [`ColocationSim::set_parked`]. While parked the node bills the suspend draw —
    /// the autoscaler guarantees it is assigned zero load and holds no running jobs.
    pub fn set_parked(&mut self, parked: bool) {
        self.sim.set_parked(parked);
    }

    /// Sets the node's effective speed to `factor` of nominal (`1.0` = healthy);
    /// forwarded to [`ColocationSim::set_degrade`]. Fault injection uses this to model
    /// degraded-frequency stragglers.
    pub fn set_degrade(&mut self, factor: f64) {
        self.sim.set_degrade(factor);
    }

    /// Abandons every batch job still running on the node (a crash): each unfinished
    /// slot's job is latched done *without* being counted as completed, and its
    /// `(app, weight)` is appended to `lost` so the cluster's scheduler can re-queue
    /// it. The in-slot computation itself is not rewound — the slot stays occupied
    /// until the abandoned work runs out, modelling the post-reboot cleanup window —
    /// but its completion, inaccuracy, and weight will never be reported.
    pub fn abort_unfinished_jobs(&mut self, lost: &mut Vec<(AppId, usize)>) {
        for slot in 0..self.sim.app_count() {
            if !self.slot_done[slot] && !self.sim.app(slot).is_finished() {
                self.slot_done[slot] = true;
                lost.push((self.sim.app(slot).profile().id, self.slot_weight[slot]));
            }
        }
    }

    /// Extracts the in-flight job from the node's lowest still-running batch slot for
    /// live migration to another node (see
    /// [`ColocationSim::extract_app`](pliant_sim::colocation::ColocationSim::extract_app)).
    ///
    /// Returns the job's full execution state and the replica weight it was placed
    /// with, or `None` when no slot holds a live job. The vacated slot is latched done
    /// — like [`Self::abort_unfinished_jobs`] — so the placeholder left behind is
    /// never reported as a completion; unlike an abort, the job is not lost: the
    /// caller implants the state into another node, where it completes and is counted
    /// exactly once. Slots already latched (post-crash cleanup of abandoned work) are
    /// skipped — their jobs were re-queued at the crash and must not also migrate.
    pub fn extract_job(&mut self) -> Option<(pliant_sim::batch::BatchAppState, usize)> {
        let slot = (0..self.sim.app_count())
            .find(|&s| !self.slot_done[s] && !self.sim.app(s).is_finished())?;
        let state = self
            .sim
            .extract_app(slot)
            // pliant-lint: allow(panic-hygiene): the slot was selected as
            // `!is_finished()` above, and `extract_app` only refuses finished slots.
            .expect("an unfinished slot must extract");
        self.slot_done[slot] = true;
        Some((state, self.slot_weight[slot]))
    }

    /// Implants a live-migrated job into the node's lowest free batch slot, continuing
    /// it exactly where the source node stopped (see
    /// [`ColocationSim::implant_app`](pliant_sim::colocation::ColocationSim::implant_app)).
    ///
    /// Mirrors [`Self::place_job_weighted`]: the job is rebased onto the slot's core
    /// state, the completion latch re-arms so the migrated job's eventual completion
    /// is reported (at its original weight), and the node's policy is notified so its
    /// per-slot variant ledger restarts — the destination controller re-learns the
    /// job's operating point from its own signal, a deliberate modelling
    /// simplification (the migrated job keeps executing whatever variant it ran on the
    /// source until the controller decides otherwise). Returns the slot used, or
    /// `None` when no slot is free.
    pub fn implant_job(
        &mut self,
        state: pliant_sim::batch::BatchAppState,
        weight: usize,
    ) -> Option<usize> {
        assert!(weight > 0, "a migrated job must stand for at least one job");
        let slot = (0..self.sim.app_count())
            .find(|&s| self.slot_done[s] && self.sim.app(s).is_finished())?;
        let variant_count = state.profile().variant_count();
        assert!(
            self.sim.implant_app(slot, state),
            "a finished slot must accept a migrated job"
        );
        self.policy.on_app_replaced(slot, variant_count);
        self.slot_done[slot] = false;
        self.slot_weight[slot] = weight;
        Some(slot)
    }

    /// Captures the node's complete mutable state. Restoring the checkpoint into a
    /// freshly built node for the same scenario slot resumes the run bit-identically
    /// (see [`ClusterSim::checkpoint`](crate::sim::ClusterSim::checkpoint)).
    pub fn checkpoint(&self) -> NodeCheckpoint {
        NodeCheckpoint {
            sim: self.sim.snapshot(),
            policy: self.policy.snapshot_state(),
            monitor: self.monitor.snapshot(),
            actuator_stats: self.actuator.stats(),
            slot_done: self.slot_done.clone(),
            slot_weight: self.slot_weight.clone(),
            completed_inaccuracy_pct: self.completed_inaccuracy_pct.clone(),
            completed_weights: self.completed_weights.clone(),
            smoothed_p99_s: self.smoothed_p99_s,
            utilization: self.utilization,
            intervals_stepped: self.intervals_stepped,
            hist: self.hist.clone(),
            busy_intervals: self.busy_intervals,
            idle_intervals: self.idle_intervals,
            qos_violations: self.qos_violations,
            energy_j: self.energy_j,
        }
    }

    /// Restores a checkpoint captured by [`Self::checkpoint`] into this node, which
    /// must have been built for the same scenario slot (same seed, jobs, and slot
    /// count — violations are rejected). The observation-recycling buffer is dropped
    /// (a capacity-only optimization with no observable effect).
    pub fn restore(&mut self, checkpoint: &NodeCheckpoint) -> Result<(), String> {
        if checkpoint.slot_done.len() != self.slot_done.len() {
            return Err(format!(
                "node {} checkpoint covers {} slots, node has {}",
                self.index,
                checkpoint.slot_done.len(),
                self.slot_done.len()
            ));
        }
        self.sim
            .restore(&checkpoint.sim)
            .map_err(|e| format!("node {} simulator: {e}", self.index))?;
        self.policy
            .restore_state(&checkpoint.policy)
            .map_err(|e| format!("node {} policy state: {e}", self.index))?;
        self.monitor
            .restore(&checkpoint.monitor)
            .map_err(|e| format!("node {} monitor: {e}", self.index))?;
        self.actuator.restore_stats(checkpoint.actuator_stats);
        self.slot_done.clone_from(&checkpoint.slot_done);
        self.slot_weight.clone_from(&checkpoint.slot_weight);
        self.completed_inaccuracy_pct
            .clone_from(&checkpoint.completed_inaccuracy_pct);
        self.completed_weights
            .clone_from(&checkpoint.completed_weights);
        self.smoothed_p99_s = checkpoint.smoothed_p99_s;
        self.utilization = checkpoint.utilization;
        self.intervals_stepped = checkpoint.intervals_stepped;
        self.hist = checkpoint.hist.clone();
        self.busy_intervals = checkpoint.busy_intervals;
        self.idle_intervals = checkpoint.idle_intervals;
        self.qos_violations = checkpoint.qos_violations;
        self.energy_j = checkpoint.energy_j;
        self.recycle = None;
        Ok(())
    }

    /// Hands a consumed interval observation back to the node so its heap buffers are
    /// recycled into the next [`Self::step`] (see
    /// [`ColocationSim::advance_reusing`]). Purely an allocation optimization: the
    /// observation's contents are discarded, only its capacity is reused.
    pub fn recycle_observation(&mut self, observation: IntervalObservation) {
        self.recycle = Some(observation);
    }

    /// Places a fresh job into the node's lowest free slot; the job inherits the slot's
    /// core state (see
    /// [`ColocationSim::replace_app`](pliant_sim::colocation::ColocationSim::replace_app))
    /// and the node's policy is notified so per-slot variant state resets while the core
    /// ledger persists. Returns the slot used, or `None` when no slot is free.
    pub fn place_job(&mut self, profile: &AppProfile) -> Option<usize> {
        self.place_job_weighted(profile, 1)
    }

    /// Like [`Self::place_job`], but the placed job stands for `weight` logical jobs
    /// (the grouped scheduler pops a batch of identical queued jobs and runs one copy
    /// on the representative). Completion accounting reports the job at this weight.
    pub fn place_job_weighted(&mut self, profile: &AppProfile, weight: usize) -> Option<usize> {
        assert!(weight > 0, "a placed job must stand for at least one job");
        let slot = (0..self.sim.app_count()).find(|&s| self.sim.app(s).is_finished())?;
        let variant_count = profile.variant_count();
        assert!(
            self.sim.replace_app(slot, profile.clone()),
            "a finished slot must accept a replacement job"
        );
        self.policy.on_app_replaced(slot, variant_count);
        self.slot_done[slot] = false;
        self.slot_weight[slot] = weight;
        self.obs.emit(
            self.intervals_stepped as u32,
            self.intervals_stepped as f64 * self.decision_interval_s,
            Event::JobReplaced {
                node: self.index as u32,
                slot: slot as u32,
                weight: weight as u32,
            },
        );
        Some(slot)
    }

    /// Advances the node one decision interval at the balancer-assigned offered load:
    /// the simulator runs the interval, the monitor reports on its latency samples, and
    /// the policy's actions are applied before the next interval — exactly the
    /// single-node loop, per node.
    pub fn step(&mut self, assigned_load: f64) -> NodeInterval {
        // A saturated-fleet spill can nudge an assignment slightly past the profile
        // bound; clamp into the range the simulator accepts (it caps the generator at
        // 1.2x saturation anyway).
        self.sim.set_load_fraction(
            assigned_load.clamp(0.0, pliant_workloads::profile::MAX_LOAD_FRACTION),
        );
        let observation = self
            .sim
            .advance_reusing(self.decision_interval_s, self.recycle.take());

        // QoS accounting and fleet-histogram recording happen here, on whichever worker
        // thread is advancing the node, so the coordinating thread never touches
        // individual latency samples. The first `warmup_intervals` are excluded: the
        // fleet p99 is a quantile over all samples, and the runtimes' one-off
        // convergence transient would otherwise sit in the histogram forever.
        // Every contribution below is scaled by the instance's replica weight: a
        // clustered representative's interval stands for `replicas` identical logical
        // node-intervals. On an exact node `replicas == 1` and the arithmetic is
        // bit-identical to unweighted accounting (`x * 1.0 == x` in IEEE-754;
        // `record_n(v, 1)` matches `record(v)` exactly).
        let measured = self.intervals_stepped >= self.warmup_intervals;
        let interval = self.intervals_stepped as u32;
        self.intervals_stepped += 1;
        self.energy_j += observation.energy_j * self.replicas as f64;
        if measured {
            if observation.arrivals == 0 {
                self.idle_intervals += self.replicas;
            } else {
                self.busy_intervals += self.replicas;
                if observation.qos_violated() {
                    self.qos_violations += self.replicas;
                    self.obs.emit(
                        interval,
                        observation.time_s,
                        Event::QosViolation {
                            node: self.index as u32,
                            p99_s: observation.p99_latency_s,
                            qos_target_s: self.sim.config().service.qos_target_s,
                        },
                    );
                }
                let weight = self.replicas as u64;
                for &sample_s in &observation.latency_samples_s {
                    self.hist.record_n(sample_s * 1e6, weight);
                }
            }
        }

        // Latch completions so each job is counted exactly once, at the replica weight
        // the job was placed with.
        let mut jobs_completed = 0usize;
        for slot in 0..self.sim.app_count() {
            if !self.slot_done[slot] && self.sim.app(slot).is_finished() {
                self.slot_done[slot] = true;
                jobs_completed += self.slot_weight[slot];
                let inaccuracy_pct = self.sim.app(slot).inaccuracy_pct();
                self.completed_inaccuracy_pct.push(inaccuracy_pct);
                self.completed_weights.push(self.slot_weight[slot]);
                self.obs.emit(
                    interval,
                    observation.time_s,
                    Event::JobCompleted {
                        node: self.index as u32,
                        slot: slot as u32,
                        weight: self.slot_weight[slot] as u32,
                        inaccuracy_pct,
                    },
                );
            }
        }

        let report = self
            .monitor
            .observe_interval(&observation.latency_samples_s);
        let actions = self.policy.decide(&report);
        if self.obs.enabled() {
            // Traced path: one ControllerDecision per action, plus the state-change
            // event for each action the actuator accepts. Applying actions one at a
            // time is semantically identical to `apply_all`; the untraced hot path
            // below stays untouched.
            let node = self.index as u32;
            for action in &actions {
                let (app, obs_action) = match *action {
                    Action::SetVariant { app, .. } => (app, ObsAction::SetVariant),
                    Action::ReclaimCore { app } => (app, ObsAction::ReclaimCore),
                    Action::ReturnCore { app } => (app, ObsAction::ReturnCore),
                };
                self.obs.emit(
                    interval,
                    observation.time_s,
                    Event::ControllerDecision {
                        node,
                        app: app as u32,
                        signal_p99_s: report.smoothed_p99_s,
                        slack: report.slack_fraction,
                        action: obs_action,
                    },
                );
                if self.actuator.apply(&mut self.sim, *action) {
                    let applied = match *action {
                        Action::SetVariant { app, variant } => Event::VariantSwitch {
                            node,
                            app: app as u32,
                            variant: variant.map_or(-1, |v| v as i64),
                        },
                        Action::ReclaimCore { app } => Event::CoreReclaimed {
                            node,
                            app: app as u32,
                        },
                        Action::ReturnCore { app } => Event::CoreReturned {
                            node,
                            app: app as u32,
                        },
                    };
                    self.obs.emit(interval, observation.time_s, applied);
                }
            }
        } else {
            self.actuator.apply_all(&mut self.sim, &actions);
        }
        if report.no_signal {
            // The monitor rightly holds its EWMA through idle intervals (no evidence —
            // the *controller* must not relax), but the balancer-visible estimate must
            // age out: an idle node has an empty queue, and freezing its last (possibly
            // terrible) latency reading would starve it forever once the dispatcher
            // sheds its traffic.
            self.smoothed_p99_s *= IDLE_ESTIMATE_DECAY;
        } else {
            self.smoothed_p99_s = report.smoothed_p99_s;
        }
        self.utilization = observation.utilization;

        NodeInterval {
            node: self.index,
            assigned_load,
            extra_service_cores: self.extra_service_cores(),
            jobs_completed,
            smoothed_p99_s: self.smoothed_p99_s,
            replicas: self.replicas,
            observation,
        }
    }
}

/// One node's complete mutable state inside a
/// [`ClusterCheckpoint`](crate::sim::ClusterCheckpoint): the co-location snapshot
/// (simulators, RNG streams, degradation), the runtime (policy state, monitor,
/// actuator counters), and every accumulator the outcome is assembled from. The
/// node's configuration (seed, jobs, QoS target) is *not* captured — it is rebuilt
/// from the scenario on restore and checked for consistency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeCheckpoint {
    /// Full co-location simulator state.
    pub sim: ColocationSimSnapshot,
    /// Opaque policy-specific controller state
    /// (see [`Policy::snapshot_state`]).
    pub policy: serde::Value,
    /// Performance-monitor state (EWMA, sampling RNG, hysteresis).
    pub monitor: MonitorSnapshot,
    /// Actuator counters.
    pub actuator_stats: ActuatorStats,
    /// Per-slot completion latch.
    pub slot_done: Vec<bool>,
    /// Per-slot replica weight of the job currently in the slot.
    pub slot_weight: Vec<usize>,
    /// Inaccuracy of every job completed so far, in percent.
    pub completed_inaccuracy_pct: Vec<f64>,
    /// Replica weight of every completed job.
    pub completed_weights: Vec<usize>,
    /// Balancer-visible smoothed tail-latency estimate, in seconds.
    pub smoothed_p99_s: f64,
    /// Interactive-service utilization over the last interval.
    pub utilization: f64,
    /// Intervals stepped so far.
    pub intervals_stepped: usize,
    /// Cumulative post-warm-up latency histogram, in microseconds.
    pub hist: LatencyHistogram,
    /// Post-warm-up intervals that served traffic.
    pub busy_intervals: usize,
    /// Post-warm-up intervals with zero arrivals.
    pub idle_intervals: usize,
    /// Post-warm-up traffic-serving intervals that violated QoS.
    pub qos_violations: usize,
    /// Total energy consumed, in joules.
    pub energy_j: f64,
}

impl std::fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterNode")
            .field("index", &self.index)
            .field("free_slots", &self.free_slots())
            .field("smoothed_p99_s", &self.smoothed_p99_s)
            .finish_non_exhaustive()
    }
}
