//! Persistent worker pool for parallel node updates.
//!
//! The fleet simulator advances its nodes once per decision interval. The original
//! implementation spawned fresh scoped threads *every interval*, paying thread creation
//! and teardown (tens of microseconds) hundreds of times per run. This pool spawns its
//! workers once and keeps them alive for the simulator's lifetime; each interval, nodes
//! are moved to their worker over a channel, stepped, and moved back.
//!
//! Determinism: a node's [`step`](crate::node::ClusterNode::step) depends only on the
//! node's own state and its assigned load — never on which thread runs it or in what
//! order — and results are stitched back together in node order, so pooled execution is
//! byte-identical to serial execution (the same guarantee the scoped-spawn version had,
//! pinned by `tests/cluster_determinism.rs`).
//!
//! Nodes are *sticky*: node `i` is always dispatched to worker `i % workers`, which keeps
//! each node's working set warm in one worker's cache and makes the per-interval
//! assignment deterministic without coordination.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::node::{ClusterNode, NodeInterval};

/// A unit of work: the node (moved to the worker), its index, and its assigned load.
type Task = (usize, ClusterNode, f64);
/// A completed unit: the node moved back, plus its interval result — or the panic
/// payload if stepping the node panicked.
type TaskResult = (usize, std::thread::Result<(ClusterNode, NodeInterval)>);

/// Persistent worker pool; see the module docs.
pub(crate) struct NodeWorkerPool {
    task_txs: Vec<Sender<Task>>,
    result_rx: Receiver<TaskResult>,
    handles: Vec<JoinHandle<()>>,
}

impl NodeWorkerPool {
    /// Spawns `workers` persistent worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a worker pool needs at least one worker");
        let (result_tx, result_rx) = channel::<TaskResult>();
        let mut task_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (task_tx, task_rx) = channel::<Task>();
            let result_tx = result_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok((index, mut node, load)) = task_rx.recv() {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let interval = node.step(load);
                        (node, interval)
                    }));
                    if result_tx.send((index, result)).is_err() {
                        // The coordinator is gone; exit quietly.
                        break;
                    }
                }
            }));
            task_txs.push(task_tx);
        }
        Self {
            task_txs,
            result_rx,
            handles,
        }
    }

    /// Spawns `requested` workers capped at the number of *simulated instances*: a
    /// worker per stepped node is the maximum useful parallelism, and under the
    /// clustered fleet approximation the instance count can be far below the logical
    /// fleet size — a 100k-node fleet simulated through a handful of representatives
    /// must not spin up a machine's worth of idle threads.
    pub fn sized_for(requested: usize, instances: usize) -> Self {
        Self::new(requested.clamp(1, instances.max(1)))
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.task_txs.len()
    }

    /// Steps every node at its assigned load, in parallel, and writes each node's
    /// interval into `out` at its node index. Nodes are taken from and returned to
    /// `nodes` (every slot must be occupied on entry, and is occupied again on normal
    /// return).
    ///
    /// # Panics
    ///
    /// Re-raises the first node panic on the calling thread after all other nodes have
    /// been collected (the panicking node's slot is left empty — the simulator is
    /// poisoned, exactly as the scoped-spawn implementation left it).
    pub fn step_all(
        &self,
        nodes: &mut [Option<ClusterNode>],
        loads: &[f64],
        out: &mut Vec<Option<NodeInterval>>,
    ) {
        let n = nodes.len();
        assert_eq!(loads.len(), n, "one assigned load per node");
        let workers = self.task_txs.len();
        out.clear();
        out.resize_with(n, || None);
        for (i, (slot, &load)) in nodes.iter_mut().zip(loads).enumerate() {
            // pliant-lint: allow(panic-hygiene): slots are refilled before step_all
            // returns; they are only empty between take() and the stitch-back below.
            let node = slot.take().expect("every node slot is occupied");
            self.task_txs[i % workers]
                .send((i, node, load))
                // pliant-lint: allow(panic-hygiene): workers hold their receiver for
                // the pool's lifetime and forward panics as results instead of dying.
                .expect("pool workers outlive the coordinator");
        }
        let mut first_panic = None;
        for _ in 0..n {
            let (i, result) = self
                .result_rx
                .recv()
                // pliant-lint: allow(panic-hygiene): every worker owns a sender clone
                // for the pool's lifetime, so the channel cannot disconnect mid-step.
                .expect("pool workers outlive the coordinator");
            match result {
                Ok((node, interval)) => {
                    nodes[i] = Some(node);
                    out[i] = Some(interval);
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for NodeWorkerPool {
    fn drop(&mut self) {
        // Closing the task channels ends each worker's recv loop; joining bounds the
        // teardown so no thread outlives the simulator.
        self.task_txs.clear();
        for handle in self.handles.drain(..) {
            // A worker that panicked outside catch_unwind (impossible today) would
            // surface here; ignore the payload — the step that caused it already
            // re-raised on the coordinator.
            let _ = handle.join();
        }
    }
}
