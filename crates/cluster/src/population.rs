//! The node population: logical nodes grouped by shared per-node state, and the plan
//! that materializes the population into simulated instances.
//!
//! A [`ClusterScenario`] describes `nodes` *logical*
//! nodes. Every per-node input except the initial batch-job slice is scenario-wide
//! (service, policy, QoS target, decision cadence, load share under a symmetric
//! balancer), so the population partitions the fleet into [`NodeGroup`]s keyed by that
//! slice: two logical nodes whose slots start with the same job sequence are
//! interchangeable up to their seeds. [`NodePopulation::plan_instances`] then turns the
//! population plus a [`FleetApproximation`] into an ordered list of [`InstancePlan`]s —
//! one per simulated [`ClusterNode`](crate::node::ClusterNode) — which is the *only*
//! place the exact and clustered modes diverge structurally:
//!
//! - `Exact` plans one weight-1 instance per logical node, in logical-node order, each
//!   seeded as that node. The resulting fleet is byte-identical to the
//!   pre-population-refactor simulator.
//! - `Clustered { representatives_per_group: k }` splits each group's members into at
//!   most `k` near-even contiguous chunks and plans one representative per chunk,
//!   seeded as the chunk's first member (per-replica seed jitter: different
//!   representatives of one group consume different random streams) and weighted by the
//!   chunk size. Raising `k` to the group size degenerates to `Exact` for that group.
//!
//! This is the Parsimon decomposition applied to nodes instead of network links:
//! cluster interchangeable components, simulate one representative per cluster under
//! common random numbers, and aggregate the representative's contribution with replica
//! weights (see README "Hyperscale").

use crate::scenario::{ClusterScenario, FleetApproximation};
use crate::topology::Topology;
use pliant_approx::catalog::AppId;

/// One population group: logical nodes sharing every per-node input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeGroup {
    /// The initial batch-job slice shared by every member (`slots_per_node` jobs).
    pub jobs: Vec<AppId>,
    /// Topology rack every member lives in. Rack identity is part of the group key:
    /// nodes in different power domains are never interchangeable (a rack outage or a
    /// power cap strikes one domain, not the other), so a clustered replica block
    /// never spans racks. On a flat topology every node is in the implicit rack 0 and
    /// the grouping is identical to the pre-topology one.
    pub rack: usize,
    /// Logical-node indices of the members, in ascending order.
    pub members: Vec<usize>,
}

impl NodeGroup {
    /// Number of logical nodes in the group.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// One simulated instance the engine materializes: which group it represents, which
/// logical node seeds it, and how many logical nodes it stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstancePlan {
    /// Index into [`NodePopulation::groups`] of the group this instance represents.
    pub group: usize,
    /// Logical-node index whose derived seed (and initial jobs) the instance uses.
    pub seed_member: usize,
    /// Number of logical nodes this instance stands for (its replica weight; ≥ 1).
    pub replicas: usize,
}

/// The fleet's logical nodes partitioned into groups of interchangeable members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePopulation {
    groups: Vec<NodeGroup>,
    total_nodes: usize,
}

impl NodePopulation {
    /// Partitions the scenario's logical nodes into groups keyed by their initial
    /// batch-job slice *and* their topology rack (two nodes are interchangeable only
    /// when they start the same jobs in the same power domain; see
    /// [`NodeGroup::rack`]). Groups appear in order of their first member, and members
    /// within a group ascend, so the grouping is deterministic in the scenario alone.
    pub fn from_scenario(scenario: &ClusterScenario) -> Self {
        let topology = Topology::resolve(&scenario.topology, scenario.nodes);
        let spn = scenario.slots_per_node;
        let mut groups: Vec<NodeGroup> = Vec::new();
        for index in 0..scenario.nodes {
            let slice = &scenario.jobs[index * spn..(index + 1) * spn];
            let rack = topology.rack_of(index);
            match groups
                .iter_mut()
                .find(|g| g.jobs == slice && g.rack == rack)
            {
                Some(group) => group.members.push(index),
                None => groups.push(NodeGroup {
                    jobs: slice.to_vec(),
                    rack,
                    members: vec![index],
                }),
            }
        }
        NodePopulation {
            groups,
            total_nodes: scenario.nodes,
        }
    }

    /// The population groups, in order of first member.
    pub fn groups(&self) -> &[NodeGroup] {
        &self.groups
    }

    /// Total logical nodes across all groups (the scenario's `nodes`).
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Materializes the population into an ordered instance plan under `approximation`.
    ///
    /// `Exact` yields one weight-1 instance per logical node in logical order — the
    /// construction the pre-population simulator performed, preserved so exact runs
    /// stay byte-identical. `Clustered` yields group-major representatives: each
    /// group's member list is split into `min(k, len)` contiguous chunks whose sizes
    /// differ by at most one (the first `len % chunks` chunks get the extra member),
    /// and each chunk is planned as one representative seeded by its first member.
    ///
    /// Replica weights always sum to [`Self::total_nodes`].
    pub fn plan_instances(&self, approximation: &FleetApproximation) -> Vec<InstancePlan> {
        match approximation {
            FleetApproximation::Exact => {
                let mut plans = Vec::with_capacity(self.total_nodes);
                for (gi, group) in self.groups.iter().enumerate() {
                    for &member in &group.members {
                        plans.push(InstancePlan {
                            group: gi,
                            seed_member: member,
                            replicas: 1,
                        });
                    }
                }
                // Exact mode must walk nodes in logical order (construction order is
                // part of the byte-identity contract), not group-major order.
                plans.sort_by_key(|p| p.seed_member);
                plans
            }
            FleetApproximation::Clustered {
                representatives_per_group,
            } => {
                let k = (*representatives_per_group).max(1);
                let mut plans = Vec::new();
                for (gi, group) in self.groups.iter().enumerate() {
                    chunk_group(gi, &group.members, k, &mut plans);
                }
                plans
            }
        }
    }

    /// Like [`Self::plan_instances`], but carves the `isolated` logical nodes out of
    /// their replica groups so each is simulated exactly (a weight-1 instance), while
    /// the remaining members keep the clustered chunking. Fault injection uses this:
    /// a node that crashes or degrades stops being interchangeable with its group, so
    /// folding it into a replica block would multiply its failure by the block weight.
    ///
    /// Under [`FleetApproximation::Exact`] this is identical to
    /// [`Self::plan_instances`] (every node is already simulated exactly). Within each
    /// group the non-isolated chunks come first, then the isolated members in
    /// ascending logical order; replica weights still sum to [`Self::total_nodes`].
    ///
    /// # Panics
    ///
    /// Panics if `isolated` is not exactly [`Self::total_nodes`] long.
    pub fn plan_instances_isolating(
        &self,
        approximation: &FleetApproximation,
        isolated: &[bool],
    ) -> Vec<InstancePlan> {
        assert_eq!(
            isolated.len(),
            self.total_nodes,
            "isolation mask must cover every logical node"
        );
        match approximation {
            FleetApproximation::Exact => self.plan_instances(approximation),
            FleetApproximation::Clustered {
                representatives_per_group,
            } => {
                let k = (*representatives_per_group).max(1);
                let mut plans = Vec::new();
                let mut pooled: Vec<usize> = Vec::new();
                for (gi, group) in self.groups.iter().enumerate() {
                    pooled.clear();
                    pooled.extend(group.members.iter().copied().filter(|&m| !isolated[m]));
                    chunk_group(gi, &pooled, k, &mut plans);
                    for &member in group.members.iter().filter(|&&m| isolated[m]) {
                        plans.push(InstancePlan {
                            group: gi,
                            seed_member: member,
                            replicas: 1,
                        });
                    }
                }
                plans
            }
        }
    }
}

/// Splits one group's (remaining) members into at most `k` near-even contiguous chunks
/// and appends one representative plan per chunk. No-op for an empty member list.
fn chunk_group(group: usize, members: &[usize], k: usize, plans: &mut Vec<InstancePlan>) {
    let len = members.len();
    if len == 0 {
        return;
    }
    let chunks = k.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut start = 0usize;
    for c in 0..chunks {
        let size = base + usize::from(c < extra);
        plans.push(InstancePlan {
            group,
            seed_member: members[start],
            replicas: size,
        });
        start += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_workloads::service::ServiceId;

    fn scenario(nodes: usize) -> ClusterScenario {
        // Three-app cyclic mix: nodes i, i+3, i+6, … share a group.
        let mix = [AppId::Canneal, AppId::Snp, AppId::Raytrace];
        ClusterScenario::builder(ServiceId::Memcached)
            .nodes(nodes)
            .jobs((0..nodes).map(|i| mix[i % 3]))
            .horizon_intervals(20)
            .build()
    }

    #[test]
    fn grouping_keys_on_the_initial_job_slice() {
        let pop = NodePopulation::from_scenario(&scenario(7));
        assert_eq!(pop.total_nodes(), 7);
        assert_eq!(pop.groups().len(), 3);
        assert_eq!(pop.groups()[0].members, vec![0, 3, 6]);
        assert_eq!(pop.groups()[1].members, vec![1, 4]);
        assert_eq!(pop.groups()[2].members, vec![2, 5]);
        assert_eq!(pop.groups()[0].jobs, vec![AppId::Canneal]);
        assert!(pop.groups().iter().all(|g| g.rack == 0), "flat = one rack");
    }

    #[test]
    fn grouping_never_pools_nodes_across_power_domains() {
        // Same cyclic job mix, but a 2x3 rack grid: nodes 0..3 and 3..6 live in
        // different power domains, so e.g. nodes 0 and 3 (same job slice) must land in
        // different groups — a replica block must never span racks.
        let mix = [AppId::Canneal, AppId::Snp, AppId::Raytrace];
        let racked = ClusterScenario::builder(ServiceId::Memcached)
            .nodes(6)
            .jobs((0..6).map(|i| mix[i % 3]))
            .topology(crate::topology::TopologyConfig::Racks {
                racks: 2,
                nodes_per_rack: 3,
                rack_power_w: None,
            })
            .horizon_intervals(20)
            .build();
        let pop = NodePopulation::from_scenario(&racked);
        assert_eq!(pop.groups().len(), 6, "3 job keys x 2 racks");
        for group in pop.groups() {
            let topology = Topology::resolve(&racked.topology, racked.nodes);
            assert!(group
                .members
                .iter()
                .all(|&m| topology.rack_of(m) == group.rack));
        }
        // Replica weights still conserve the fleet, and every clustered instance
        // inherits its group's single rack.
        let plans = pop.plan_instances(&FleetApproximation::Clustered {
            representatives_per_group: 2,
        });
        assert_eq!(plans.iter().map(|p| p.replicas).sum::<usize>(), 6);
    }

    #[test]
    fn exact_plans_one_weight_one_instance_per_node_in_logical_order() {
        let pop = NodePopulation::from_scenario(&scenario(7));
        let plans = pop.plan_instances(&FleetApproximation::Exact);
        assert_eq!(plans.len(), 7);
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.seed_member, i);
            assert_eq!(p.replicas, 1);
        }
    }

    #[test]
    fn clustered_plans_chunked_representatives_with_conserved_weight() {
        let pop = NodePopulation::from_scenario(&scenario(12));
        // 12 nodes / 3 groups of 4; two representatives per group → chunks of 2.
        let plans = pop.plan_instances(&FleetApproximation::Clustered {
            representatives_per_group: 2,
        });
        assert_eq!(plans.len(), 6);
        assert_eq!(plans.iter().map(|p| p.replicas).sum::<usize>(), 12);
        assert_eq!(plans[0].seed_member, 0); // group 0 = members [0,3,6,9]
        assert_eq!(plans[0].replicas, 2);
        assert_eq!(plans[1].seed_member, 6);
        // Uneven split: 3 members over 2 representatives → sizes 2 and 1.
        let pop = NodePopulation::from_scenario(&scenario(7));
        let plans = pop.plan_instances(&FleetApproximation::Clustered {
            representatives_per_group: 2,
        });
        assert_eq!(plans.iter().map(|p| p.replicas).sum::<usize>(), 7);
        assert_eq!(plans[0].replicas, 2); // group 0 has 3 members → 2 + 1
        assert_eq!(plans[1].replicas, 1);
        assert_eq!(plans[1].seed_member, 6);
    }

    #[test]
    fn isolating_plans_split_faulted_members_out_of_their_groups() {
        let pop = NodePopulation::from_scenario(&scenario(12));
        // Isolate nodes 3 (group 0) and 4 (group 1).
        let mut isolated = vec![false; 12];
        isolated[3] = true;
        isolated[4] = true;
        let approx = FleetApproximation::Clustered {
            representatives_per_group: 2,
        };
        let plans = pop.plan_instances_isolating(&approx, &isolated);
        // Weight is conserved and the isolated nodes are weight-1 seeds.
        assert_eq!(plans.iter().map(|p| p.replicas).sum::<usize>(), 12);
        for &node in &[3usize, 4] {
            assert!(
                plans
                    .iter()
                    .any(|p| p.seed_member == node && p.replicas == 1),
                "node {node} must be simulated exactly: {plans:?}"
            );
        }
        // Group 0 = [0,3,6,9]: pooled [0,6,9] chunks into 2+1, then isolated 3.
        let g0: Vec<_> = plans.iter().filter(|p| p.group == 0).collect();
        assert_eq!(g0.len(), 3);
        assert_eq!((g0[0].seed_member, g0[0].replicas), (0, 2));
        assert_eq!((g0[1].seed_member, g0[1].replicas), (9, 1));
        assert_eq!((g0[2].seed_member, g0[2].replicas), (3, 1));
        // With nothing isolated the plan is exactly the plain clustered plan.
        let none = vec![false; 12];
        assert_eq!(
            pop.plan_instances_isolating(&approx, &none),
            pop.plan_instances(&approx)
        );
        // Exact mode ignores the mask entirely.
        assert_eq!(
            pop.plan_instances_isolating(&FleetApproximation::Exact, &isolated),
            pop.plan_instances(&FleetApproximation::Exact)
        );
    }

    #[test]
    fn enough_representatives_degenerate_to_exact() {
        let pop = NodePopulation::from_scenario(&scenario(7));
        let clustered = pop.plan_instances(&FleetApproximation::Clustered {
            representatives_per_group: 100,
        });
        let mut exact = pop.plan_instances(&FleetApproximation::Exact);
        // Clustered plans are group-major; compare as sets of (seed, weight).
        exact.sort_by_key(|p| (p.group, p.seed_member));
        assert_eq!(clustered, exact);
    }
}
