//! Rack-level fleet structure: power domains, shared power budgets, and node
//! membership.
//!
//! The paper's machines-needed headline is a consolidation story, and consolidation in
//! a real datacenter happens against rack structure: nodes share a rack-level power
//! budget (the breaker rating of the rack's PDU) and a rack-level failure domain (a
//! failed PDU or top-of-rack switch takes the whole rack down at once). This module
//! adds that structure as a thin, serializable layer over the existing flat node list:
//!
//! * [`TopologyConfig`] is the declarative knob on
//!   [`ClusterScenario`](crate::scenario::ClusterScenario): either [`TopologyConfig::Flat`]
//!   (the default — one implicit rack holding every node, no budget, byte-identical to
//!   the pre-topology simulator) or [`TopologyConfig::Racks`] (a regular `racks ×
//!   nodes_per_rack` grid with an optional shared per-rack power budget).
//! * [`Topology`] is the resolved, run-time form: rack membership lists plus a
//!   node → rack inverse map, built once per run by [`Topology::resolve`].
//!
//! Rack identity feeds three consumers: the scheduler's sampling-based online
//! placement (score candidate racks by power headroom and QoS slack before picking a
//! node — see [`crate::sim`]), the fault injector's rack-level correlated outages
//! (power-domain failures — see [`crate::faults::RackOutage`]), and the clustered
//! approximation's population grouping (replicas never span power domains — see
//! [`crate::population`]).

use serde::{Deserialize, Serialize};

/// Declarative rack structure of the fleet, as archived on the scenario.
///
/// `Flat` is the default and serializes to nothing at all (the scenario field is
/// skipped), so pre-topology archives round-trip byte-identically. The `Racks` form
/// describes a regular grid: `racks × nodes_per_rack` must equal the scenario's node
/// count, with node `i` living in rack `i / nodes_per_rack` — deterministic and
/// index-stable, so rack membership never depends on run-time state.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub enum TopologyConfig {
    /// No rack structure: one implicit power/failure domain holding every node, with
    /// no power budget. Pinned byte-identical to the pre-topology simulator.
    #[default]
    Flat,
    /// A regular grid of racks, each a shared power budget and failure domain.
    Racks {
        /// Number of racks (must be positive).
        racks: usize,
        /// Nodes per rack (must be positive; `racks × nodes_per_rack` must equal the
        /// scenario's `nodes`).
        nodes_per_rack: usize,
        /// Shared power budget per rack in watts (`None` = unbudgeted). When set, the
        /// placement loop refuses to admit new batch jobs into racks whose measured
        /// power draw already exceeds the budget.
        rack_power_w: Option<f64>,
    },
}

impl TopologyConfig {
    /// Whether this is the flat (structureless) default. Used as the
    /// `skip_serializing_if` predicate that keeps pre-topology archives byte-identical.
    pub fn is_flat(&self) -> bool {
        matches!(self, TopologyConfig::Flat)
    }

    /// Number of racks this configuration resolves to (flat = one implicit rack).
    pub fn rack_count(&self) -> usize {
        match self {
            TopologyConfig::Flat => 1,
            TopologyConfig::Racks { racks, .. } => *racks,
        }
    }

    /// Checks the node-count-independent invariants (positive grid dimensions, a
    /// positive and finite power budget). Called at the deserialization boundary;
    /// [`Self::validate`] adds the cross-check against the fleet size.
    pub fn validate_shape(&self) -> Result<(), TopologyConfigError> {
        if let TopologyConfig::Racks {
            racks,
            nodes_per_rack,
            rack_power_w,
        } = self
        {
            if *racks == 0 {
                return Err(TopologyConfigError::NoRacks);
            }
            if *nodes_per_rack == 0 {
                return Err(TopologyConfigError::NoNodesPerRack);
            }
            if let Some(budget) = rack_power_w {
                if !(*budget > 0.0 && budget.is_finite()) {
                    return Err(TopologyConfigError::InvalidPowerBudget);
                }
            }
        }
        Ok(())
    }

    /// Checks every invariant, including that the rack grid covers exactly the
    /// fleet's `nodes` (no partial racks, no orphan nodes).
    pub fn validate(&self, nodes: usize) -> Result<(), TopologyConfigError> {
        self.validate_shape()?;
        if let TopologyConfig::Racks {
            racks,
            nodes_per_rack,
            ..
        } = self
        {
            let covered = racks.checked_mul(*nodes_per_rack);
            if covered != Some(nodes) {
                return Err(TopologyConfigError::NodeCountMismatch {
                    racks: *racks,
                    nodes_per_rack: *nodes_per_rack,
                    nodes,
                });
            }
        }
        Ok(())
    }
}

// Hand-written (not derived) so a hand-edited or corrupted archive carrying an
// impossible rack grid (zero racks, a non-finite budget) is rejected with a
// descriptive error at the boundary instead of deserializing into a topology that
// fails mid-run. The mirror enum keeps the derived field plumbing.
impl serde::Deserialize for TopologyConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        #[derive(Deserialize)]
        enum TopologyConfigWire {
            Flat,
            Racks {
                racks: usize,
                nodes_per_rack: usize,
                #[serde(default)]
                rack_power_w: Option<f64>,
            },
        }
        let config = match TopologyConfigWire::from_value(value)? {
            TopologyConfigWire::Flat => TopologyConfig::Flat,
            TopologyConfigWire::Racks {
                racks,
                nodes_per_rack,
                rack_power_w,
            } => TopologyConfig::Racks {
                racks,
                nodes_per_rack,
                rack_power_w,
            },
        };
        config
            .validate_shape()
            .map_err(|e| serde::Error::custom(format!("invalid topology: {e}")))?;
        Ok(config)
    }
}

/// Why a [`TopologyConfig`] is not a valid rack structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyConfigError {
    /// The rack grid has zero racks.
    NoRacks,
    /// The rack grid has zero nodes per rack.
    NoNodesPerRack,
    /// The rack grid does not cover the fleet exactly.
    NodeCountMismatch {
        /// Racks in the grid.
        racks: usize,
        /// Nodes per rack in the grid.
        nodes_per_rack: usize,
        /// Nodes the fleet actually has.
        nodes: usize,
    },
    /// The per-rack power budget is zero, negative, or not finite.
    InvalidPowerBudget,
}

impl std::fmt::Display for TopologyConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyConfigError::NoRacks => f.write_str("topology needs at least one rack"),
            TopologyConfigError::NoNodesPerRack => {
                f.write_str("racks need at least one node each")
            }
            TopologyConfigError::NodeCountMismatch {
                racks,
                nodes_per_rack,
                nodes,
            } => write!(
                f,
                "rack grid of {racks}x{nodes_per_rack} does not cover the {nodes}-node fleet exactly"
            ),
            TopologyConfigError::InvalidPowerBudget => {
                f.write_str("rack power budget must be positive and finite")
            }
        }
    }
}

impl std::error::Error for TopologyConfigError {}

/// One rack of the resolved topology: a membership list plus the shared budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Rack {
    /// Logical node indices living in this rack, in ascending order.
    pub members: Vec<usize>,
    /// Shared power budget in watts (`None` = unbudgeted).
    pub power_budget_w: Option<f64>,
}

/// The resolved, run-time rack structure: built once per run from the scenario's
/// [`TopologyConfig`] and never mutated afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    racks: Vec<Rack>,
    rack_of: Vec<usize>,
    flat: bool,
}

impl Topology {
    /// Resolves a validated config against a fleet of `nodes` logical nodes.
    ///
    /// `Flat` resolves to one unbudgeted rack holding every node; `Racks` assigns node
    /// `i` to rack `i / nodes_per_rack`. Callers must have validated the config (the
    /// scenario boundary does), so a mismatched grid here is a logic error.
    pub fn resolve(config: &TopologyConfig, nodes: usize) -> Self {
        match config {
            TopologyConfig::Flat => Topology {
                racks: vec![Rack {
                    members: (0..nodes).collect(),
                    power_budget_w: None,
                }],
                rack_of: vec![0; nodes],
                flat: true,
            },
            TopologyConfig::Racks {
                racks,
                nodes_per_rack,
                rack_power_w,
            } => {
                debug_assert_eq!(racks * nodes_per_rack, nodes, "validated upstream");
                let rack_list = (0..*racks)
                    .map(|r| Rack {
                        members: (r * nodes_per_rack..(r + 1) * nodes_per_rack).collect(),
                        power_budget_w: *rack_power_w,
                    })
                    .collect();
                let rack_of = (0..nodes).map(|i| i / nodes_per_rack).collect();
                Topology {
                    racks: rack_list,
                    rack_of,
                    flat: false,
                }
            }
        }
    }

    /// Whether this topology came from the flat default (one implicit rack). Flat
    /// fleets take the pre-topology code paths verbatim.
    pub fn is_flat(&self) -> bool {
        self.flat
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// The racks, in index order.
    pub fn racks(&self) -> &[Rack] {
        &self.racks
    }

    /// The rack a logical node lives in.
    pub fn rack_of(&self, node: usize) -> usize {
        self.rack_of[node]
    }

    /// The shared power budget of a rack in watts (`None` = unbudgeted).
    pub fn power_budget_w(&self, rack: usize) -> Option<f64> {
        self.racks[rack].power_budget_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_resolves_to_one_unbudgeted_rack() {
        let t = Topology::resolve(&TopologyConfig::Flat, 5);
        assert!(t.is_flat());
        assert_eq!(t.rack_count(), 1);
        assert_eq!(t.racks()[0].members, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.power_budget_w(0), None);
        assert!((0..5).all(|i| t.rack_of(i) == 0));
    }

    #[test]
    fn rack_grid_assigns_contiguous_members() {
        let config = TopologyConfig::Racks {
            racks: 3,
            nodes_per_rack: 2,
            rack_power_w: Some(400.0),
        };
        let t = Topology::resolve(&config, 6);
        assert!(!t.is_flat());
        assert_eq!(t.rack_count(), 3);
        assert_eq!(t.racks()[1].members, vec![2, 3]);
        assert_eq!(t.rack_of(4), 2);
        assert_eq!(t.power_budget_w(2), Some(400.0));
    }

    #[test]
    fn validation_catches_degenerate_grids() {
        assert_eq!(
            TopologyConfig::Racks {
                racks: 0,
                nodes_per_rack: 2,
                rack_power_w: None,
            }
            .validate(0)
            .unwrap_err(),
            TopologyConfigError::NoRacks
        );
        assert_eq!(
            TopologyConfig::Racks {
                racks: 2,
                nodes_per_rack: 0,
                rack_power_w: None,
            }
            .validate(0)
            .unwrap_err(),
            TopologyConfigError::NoNodesPerRack
        );
        assert_eq!(
            TopologyConfig::Racks {
                racks: 2,
                nodes_per_rack: 2,
                rack_power_w: None,
            }
            .validate(5)
            .unwrap_err(),
            TopologyConfigError::NodeCountMismatch {
                racks: 2,
                nodes_per_rack: 2,
                nodes: 5,
            }
        );
        assert_eq!(
            TopologyConfig::Racks {
                racks: 2,
                nodes_per_rack: 2,
                rack_power_w: Some(0.0),
            }
            .validate(4)
            .unwrap_err(),
            TopologyConfigError::InvalidPowerBudget
        );
        assert!(TopologyConfig::Flat.validate(7).is_ok());
    }

    #[test]
    fn config_round_trips_and_rejects_corruption_at_the_boundary() {
        let config = TopologyConfig::Racks {
            racks: 2,
            nodes_per_rack: 3,
            rack_power_w: Some(350.0),
        };
        let json = serde_json::to_string(&config).expect("serializable");
        let back: TopologyConfig = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, config);

        let flat_json = serde_json::to_string(&TopologyConfig::Flat).expect("serializable");
        let back: TopologyConfig = serde_json::from_str(&flat_json).expect("deserializable");
        assert!(back.is_flat());

        let corrupted = json.replace("\"racks\":2", "\"racks\":0");
        let err = serde_json::from_str::<TopologyConfig>(&corrupted)
            .expect_err("a zero-rack grid must not deserialize");
        assert!(err.to_string().contains("at least one rack"));
    }
}
