//! Composable sweeps over cluster-scenario axes.
//!
//! A [`ClusterSuite`] is the fleet-level analogue of
//! [`pliant_core::suite::Suite`]: a base [`ClusterScenario`] plus an ordered list of
//! sweep axes — node counts, balancer and scheduler policies, per-node runtime
//! policies, loads, and seeds — expanding into the cartesian grid of all axis values.
//! Seed handling mirrors the single-node suite exactly:
//! [`SeedMode::CommonRandomNumbers`] gives paired cells (e.g. a Precise and a Pliant
//! fleet at the same node count) identical workload randomness, which is what makes the
//! machines-needed comparison a paired experiment; [`SeedMode::Independent`] derives a
//! unique deterministic seed per cell.

use serde::{Deserialize, Serialize};

use pliant_core::policy::PolicyKind;
use pliant_core::suite::SeedMode;
use pliant_telemetry::rng::derive_seed;

use crate::balancer::BalancerKind;
use crate::outcome::ClusterOutcome;
use crate::scenario::ClusterScenario;
use crate::scheduler::SchedulerKind;

/// One sweep dimension of a [`ClusterSuite`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterSweepAxis {
    /// Vary the fleet size (the axis the machines-needed search minimizes over).
    NodeCounts(Vec<usize>),
    /// Vary the load-balancing policy.
    Balancers(Vec<BalancerKind>),
    /// Vary the job-placement policy.
    Schedulers(Vec<SchedulerKind>),
    /// Vary the per-node runtime policy.
    Policies(Vec<PolicyKind>),
    /// Vary the average offered load per node.
    AvgLoads(Vec<f64>),
    /// Vary the base seed (replications).
    Seeds(Vec<u64>),
}

impl ClusterSweepAxis {
    fn len(&self) -> usize {
        match self {
            ClusterSweepAxis::NodeCounts(v) => v.len(),
            ClusterSweepAxis::Balancers(v) => v.len(),
            ClusterSweepAxis::Schedulers(v) => v.len(),
            ClusterSweepAxis::Policies(v) => v.len(),
            ClusterSweepAxis::AvgLoads(v) => v.len(),
            ClusterSweepAxis::Seeds(v) => v.len(),
        }
    }

    fn is_seeds(&self) -> bool {
        matches!(self, ClusterSweepAxis::Seeds(_))
    }

    /// The scenario knob this axis writes; axes writing the same knob cannot coexist.
    fn knob(&self) -> &'static str {
        match self {
            ClusterSweepAxis::NodeCounts(_) => "nodes",
            ClusterSweepAxis::Balancers(_) => "balancer",
            ClusterSweepAxis::Schedulers(_) => "scheduler",
            ClusterSweepAxis::Policies(_) => "policy",
            ClusterSweepAxis::AvgLoads(_) => "load",
            ClusterSweepAxis::Seeds(_) => "seed",
        }
    }

    /// Applies coordinate `idx` of this axis to a scenario, returning the label
    /// fragment.
    fn apply(&self, idx: usize, scenario: &mut ClusterScenario) -> String {
        match self {
            ClusterSweepAxis::NodeCounts(v) => {
                scenario.nodes = v[idx];
                format!("nodes={}", v[idx])
            }
            ClusterSweepAxis::Balancers(v) => {
                scenario.balancer = v[idx];
                v[idx].name().to_string()
            }
            ClusterSweepAxis::Schedulers(v) => {
                scenario.scheduler = v[idx];
                v[idx].name().to_string()
            }
            ClusterSweepAxis::Policies(v) => {
                scenario.policy = v[idx];
                v[idx].name().to_string()
            }
            ClusterSweepAxis::AvgLoads(v) => {
                scenario.avg_node_load = v[idx];
                scenario.load_profile = None;
                format!("load={:.2}", v[idx])
            }
            ClusterSweepAxis::Seeds(v) => {
                scenario.seed = v[idx];
                format!("seed={}", v[idx])
            }
        }
    }
}

/// Why a [`ClusterSuite`] failed [`ClusterSuite::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterSuiteError {
    /// An axis has no values (the grid would be empty).
    EmptyAxis,
    /// Two axes write the same scenario knob.
    DuplicateKnob(&'static str),
    /// A grid cell expands into an invalid scenario (e.g. a node-count value the base
    /// scenario's job list cannot fill).
    InvalidCell {
        /// Index of the first invalid cell.
        index: usize,
        /// Why that cell's scenario failed validation.
        error: crate::scenario::ClusterScenarioError,
    },
}

impl std::fmt::Display for ClusterSuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterSuiteError::EmptyAxis => f.write_str("sweep axes must not be empty"),
            ClusterSuiteError::DuplicateKnob(knob) => {
                write!(f, "two axes sweep the `{knob}` knob")
            }
            ClusterSuiteError::InvalidCell { index, error } => {
                write!(f, "cell {index} expands into an invalid scenario: {error}")
            }
        }
    }
}

impl std::error::Error for ClusterSuiteError {}

/// One executed cluster-suite cell: the scenario that was run and what came out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterCellOutcome {
    /// Cell index within the suite grid.
    pub index: usize,
    /// The fully-materialized cluster scenario (including derived seed and label).
    pub scenario: ClusterScenario,
    /// The fleet outcome.
    pub outcome: ClusterOutcome,
}

/// A base cluster scenario plus sweep axes, expanding into a cartesian grid.
///
/// # Example
///
/// ```
/// use pliant_approx::catalog::AppId;
/// use pliant_cluster::scenario::ClusterScenario;
/// use pliant_cluster::suite::ClusterSuite;
/// use pliant_core::policy::PolicyKind;
/// use pliant_workloads::service::ServiceId;
///
/// let base = ClusterScenario::builder(ServiceId::Memcached)
///     .nodes(2)
///     .jobs(vec![AppId::Canneal; 4])
///     .horizon_intervals(20)
///     .build();
/// let suite = ClusterSuite::new(base)
///     .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
///     .sweep_node_counts([2, 3, 4]);
/// assert_eq!(suite.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterSuite {
    name: String,
    base: ClusterScenario,
    seed_mode: SeedMode,
    axes: Vec<ClusterSweepAxis>,
}

// Hand-written (not derived) so duplicate-knob, empty-axis, or invalid-cell archives
// are rejected at the archive boundary with a descriptive error, not when the engine
// finally expands the grid. The mirror struct keeps the derived field plumbing.
impl serde::Deserialize for ClusterSuite {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        #[derive(Deserialize)]
        struct ClusterSuiteWire {
            name: String,
            base: ClusterScenario,
            seed_mode: SeedMode,
            axes: Vec<ClusterSweepAxis>,
        }
        let w = ClusterSuiteWire::from_value(value)?;
        let suite = ClusterSuite {
            name: w.name,
            base: w.base,
            seed_mode: w.seed_mode,
            axes: w.axes,
        };
        suite
            .validate()
            .map_err(|e| serde::Error::custom(format!("invalid cluster suite: {e}")))?;
        Ok(suite)
    }
}

impl ClusterSuite {
    /// Creates a suite with no sweep axes (a single-cell grid of `base`).
    pub fn new(base: ClusterScenario) -> Self {
        ClusterSuite {
            name: "cluster-suite".to_string(),
            base,
            seed_mode: SeedMode::CommonRandomNumbers,
            axes: Vec::new(),
        }
    }

    /// Names the suite (used as the label prefix of every cell).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Selects how per-cell seeds are derived; see [`SeedMode`].
    pub fn seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// Adds a sweep over fleet sizes. The base scenario's job list must cover the
    /// largest node count (`nodes × slots_per_node` jobs) or [`Self::validate`] — and
    /// hence the engine — rejects the suite.
    pub fn sweep_node_counts(self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.push_axis(ClusterSweepAxis::NodeCounts(counts.into_iter().collect()))
    }

    /// Adds a sweep over load-balancing policies.
    pub fn sweep_balancers(self, balancers: impl IntoIterator<Item = BalancerKind>) -> Self {
        self.push_axis(ClusterSweepAxis::Balancers(balancers.into_iter().collect()))
    }

    /// Adds a sweep over job-placement policies.
    pub fn sweep_schedulers(self, schedulers: impl IntoIterator<Item = SchedulerKind>) -> Self {
        self.push_axis(ClusterSweepAxis::Schedulers(
            schedulers.into_iter().collect(),
        ))
    }

    /// Adds a sweep over per-node runtime policies.
    pub fn sweep_policies(self, policies: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.push_axis(ClusterSweepAxis::Policies(policies.into_iter().collect()))
    }

    /// Adds a sweep over average per-node loads.
    pub fn sweep_avg_loads(self, loads: impl IntoIterator<Item = f64>) -> Self {
        self.push_axis(ClusterSweepAxis::AvgLoads(loads.into_iter().collect()))
    }

    /// Adds a sweep over explicit base seeds (replications).
    pub fn sweep_seeds(self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.push_axis(ClusterSweepAxis::Seeds(seeds.into_iter().collect()))
    }

    fn push_axis(mut self, axis: ClusterSweepAxis) -> Self {
        assert!(axis.len() > 0, "sweep axes must not be empty");
        assert!(
            !self
                .axes
                .iter()
                .any(|existing| existing.knob() == axis.knob()),
            "a cluster suite cannot sweep the `{}` knob twice; merge the values into one axis",
            axis.knob()
        );
        self.axes.push(axis);
        self
    }

    /// The suite's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base scenario the sweeps are applied to.
    pub fn base(&self) -> &ClusterScenario {
        &self.base
    }

    /// The sweep axes in application order (earlier axes vary slowest).
    pub fn axes(&self) -> &[ClusterSweepAxis] {
        &self.axes
    }

    /// Number of grid cells (product of axis lengths; 1 with no axes).
    pub fn len(&self) -> usize {
        self.axes.iter().map(ClusterSweepAxis::len).product()
    }

    /// Whether the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-checks the invariants the builder methods enforce plus per-cell scenario
    /// validity (a node-count axis can outgrow the base job list). The engine calls
    /// this before executing a suite.
    pub fn validate(&self) -> Result<(), ClusterSuiteError> {
        let mut knobs: Vec<&'static str> = Vec::with_capacity(self.axes.len());
        for axis in &self.axes {
            if axis.len() == 0 {
                return Err(ClusterSuiteError::EmptyAxis);
            }
            let knob = axis.knob();
            if knobs.contains(&knob) {
                return Err(ClusterSuiteError::DuplicateKnob(knob));
            }
            knobs.push(knob);
        }
        for index in 0..self.len() {
            if let Err(error) = self.scenario_at(index).validate() {
                return Err(ClusterSuiteError::InvalidCell { index, error });
            }
        }
        Ok(())
    }

    /// The mixed-radix coordinates of cell `index` (earlier axes vary slowest).
    fn coords(&self, index: usize) -> Vec<usize> {
        let mut coords = vec![0; self.axes.len()];
        let mut rem = index;
        for (i, axis) in self.axes.iter().enumerate().rev() {
            coords[i] = rem % axis.len();
            rem /= axis.len();
        }
        coords
    }

    /// Materializes the scenario of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn scenario_at(&self, index: usize) -> ClusterScenario {
        assert!(index < self.len(), "cell index {index} out of range");
        let coords = self.coords(index);
        let mut scenario = self.base.clone();
        let mut parts: Vec<String> = Vec::with_capacity(coords.len());
        for (axis, &c) in self.axes.iter().zip(&coords) {
            parts.push(axis.apply(c, &mut scenario));
        }
        scenario.seed = self.cell_seed(&scenario, &coords);
        scenario.label = Some(if parts.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, parts.join("/"))
        });
        scenario
    }

    /// The seed of the cell at `coords`, mirroring the single-node suite's derivation.
    fn cell_seed(&self, scenario: &ClusterScenario, coords: &[usize]) -> u64 {
        match self.seed_mode {
            SeedMode::CommonRandomNumbers => scenario.seed,
            SeedMode::Independent => {
                let mut seed = derive_seed(scenario.seed, 0xC1D0_5EED);
                for (i, (axis, &c)) in self.axes.iter().zip(coords).enumerate() {
                    if !axis.is_seeds() {
                        seed = derive_seed(seed, ((i as u64 + 1) << 32) | c as u64);
                    }
                }
                seed
            }
        }
    }

    /// Materializes every cell in index order.
    pub fn scenarios(&self) -> Vec<ClusterScenario> {
        (0..self.len()).map(|i| self.scenario_at(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_approx::catalog::AppId;
    use pliant_workloads::service::ServiceId;

    fn base() -> ClusterScenario {
        ClusterScenario::builder(ServiceId::Nginx)
            .nodes(2)
            .jobs(vec![AppId::Canneal; 6])
            .horizon_intervals(15)
            .seed(7)
            .build()
    }

    #[test]
    fn cartesian_expansion_orders_cells_row_major() {
        let suite = ClusterSuite::new(base())
            .named("grid")
            .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
            .sweep_node_counts([2, 3, 4]);
        assert_eq!(suite.len(), 6);
        let cells = suite.scenarios();
        assert_eq!(cells[0].policy, PolicyKind::Precise);
        assert_eq!(cells[0].nodes, 2);
        assert_eq!(cells[2].nodes, 4);
        assert_eq!(cells[3].policy, PolicyKind::Pliant);
        assert_eq!(cells[5].label.as_deref(), Some("grid/pliant/nodes=4"));
        assert_eq!(suite.validate(), Ok(()));
    }

    #[test]
    fn common_random_numbers_pair_fleet_cells() {
        let suite =
            ClusterSuite::new(base()).sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
        let cells = suite.scenarios();
        assert_eq!(cells[0].seed, 7);
        assert_eq!(cells[1].seed, 7);
    }

    #[test]
    fn independent_seeds_never_collide() {
        let suite = ClusterSuite::new(base())
            .seed_mode(SeedMode::Independent)
            .sweep_node_counts([2, 3])
            .sweep_balancers(BalancerKind::all())
            .sweep_schedulers(SchedulerKind::all());
        let seeds: std::collections::BTreeSet<u64> =
            suite.scenarios().iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), suite.len(), "per-cell seeds must be unique");
    }

    #[test]
    fn node_counts_beyond_the_job_list_fail_validation() {
        let suite = ClusterSuite::new(base()).sweep_node_counts([2, 40]);
        match suite.validate() {
            Err(ClusterSuiteError::InvalidCell { index: 1, error }) => {
                assert!(matches!(
                    error,
                    crate::scenario::ClusterScenarioError::NotEnoughJobs { .. }
                ));
            }
            other => panic!("expected an invalid-cell error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "cannot sweep the `balancer` knob twice")]
    fn duplicate_axes_are_rejected() {
        let _ = ClusterSuite::new(base())
            .sweep_balancers([BalancerKind::RoundRobin])
            .sweep_balancers(BalancerKind::all());
    }

    #[test]
    fn suite_round_trips_through_serde() {
        let suite = ClusterSuite::new(base())
            .named("rt")
            .seed_mode(SeedMode::Independent)
            .sweep_avg_loads([0.5, 0.8])
            .sweep_seeds([1, 2]);
        let json = serde_json::to_string(&suite).expect("serializable");
        let back: ClusterSuite = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, suite);
        assert_eq!(back.scenarios(), suite.scenarios());
    }

    #[test]
    fn approximation_config_round_trips_through_the_suite_archive() {
        use crate::scenario::FleetApproximation;

        let clustered_base = ClusterScenario::builder(ServiceId::Nginx)
            .nodes(2)
            .jobs(vec![AppId::Canneal; 6])
            .approximation(FleetApproximation::Clustered {
                representatives_per_group: 3,
            })
            .horizon_intervals(15)
            .seed(7)
            .build();
        let suite = ClusterSuite::new(clustered_base)
            .named("approx-rt")
            .sweep_node_counts([2, 3]);
        let json = serde_json::to_string(&suite).expect("serializable");
        let back: ClusterSuite = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, suite);
        // The approximation knob is part of the base scenario, so every expanded cell
        // inherits it.
        for cell in back.scenarios() {
            assert_eq!(
                cell.approximation,
                FleetApproximation::Clustered {
                    representatives_per_group: 3
                }
            );
        }
    }

    #[test]
    fn pre_hyperscale_suite_archives_deserialize_as_exact() {
        use crate::scenario::FleetApproximation;

        // A suite archived before the approximation knob existed has no
        // `approximation` field in its base scenario; it must deserialize as an exact
        // fleet, so replaying old archives reproduces old results.
        let json = serde_json::to_string(&ClusterSuite::new(base()).named("legacy"))
            .expect("serializable");
        let legacy = json.replace("\"approximation\":\"Exact\",", "");
        assert!(!legacy.contains("approximation"));
        let back: ClusterSuite = serde_json::from_str(&legacy).expect("deserializable");
        assert_eq!(back.base().approximation, FleetApproximation::Exact);
    }

    #[test]
    fn suites_with_invalid_approximation_are_rejected_at_the_archive_boundary() {
        // A zero-representative clustered config can never be built through the
        // builder (validate panics), so forge it in the archive: the suite must be
        // rejected on deserialize, not when the engine expands the grid.
        let suite = ClusterSuite::new(base()).named("forged");
        let json = serde_json::to_string(&suite).expect("serializable");
        let forged = json.replace(
            "\"approximation\":\"Exact\"",
            "\"approximation\":{\"Clustered\":{\"representatives_per_group\":0}}",
        );
        assert_ne!(forged, json, "the forgery must have taken effect");
        let err = serde_json::from_str::<ClusterSuite>(&forged)
            .expect_err("zero representatives must be rejected");
        let msg = format!("{err}");
        assert!(
            msg.contains("at least one representative"),
            "unexpected error message: {msg}"
        );
    }
}
