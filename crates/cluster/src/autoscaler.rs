//! Energy-aware fleet autoscaling: sizing the *active* node set to the offered load.
//!
//! A fleet provisioned for its peak wastes energy at its trough: machines idling at a
//! diurnal low still draw close to half their peak power. The autoscaler shrinks and
//! grows the set of traffic-serving nodes against the load profile, so surplus machines
//! can be suspended to their park draw
//! ([`PowerModel::parked_w`](pliant_sim::server::PowerModel::parked_w)) instead of
//! idling.
//!
//! Each node is in one of three [`NodePowerState`]s:
//!
//! * **Active** — serves balancer traffic and accepts batch-job placements.
//! * **Draining** — removed from the serving set (the balancer assigns it zero load and
//!   the scheduler stops placing jobs on it) but still powered while its remaining
//!   batch jobs run to completion. Its power falls toward allocated-core idle as slots
//!   finish.
//! * **Parked** — drained *and* every batch slot free: the machine is suspended and
//!   bills the park draw until reactivated.
//!
//! Decisions are made once per decision interval, before load balancing, from the
//! previous interval's node snapshots:
//!
//! * **Feed-forward scale-out**: the coming interval's offered load is known at
//!   planning time, so a fleet asked to serve more than
//!   [`AutoscalerConfig::scale_out_load`] per active node grows immediately — no
//!   sustain, no cooldown.
//! * **Reactive scale-out** triggers on *sustained fleet QoS pressure*: when at least
//!   [`AutoscalerConfig::scale_out_violation_fraction`] of the active nodes sit above
//!   their QoS target (by smoothed tail latency) for
//!   [`AutoscalerConfig::scale_out_sustain_intervals`] consecutive intervals, one node
//!   is reactivated — a draining node first (it is still warm), else a parked one.
//!   The per-node load at which this fires is remembered as a **learned capacity
//!   ceiling**: the fleet demonstrated it cannot serve that load per node within QoS,
//!   so scale-in never projects back into it. This is what converts a policy's true
//!   per-node capacity — higher under approximation than under precise execution —
//!   into a machine count, instead of rediscovering the limit through repeated failed
//!   drains.
//! * **Scale-in** drains the least-loaded active node when the fleet has been
//!   violation-free, every active node shows real tail headroom
//!   ([`AutoscalerConfig::scale_in_max_p99_fraction`]), and the load the remaining
//!   nodes would carry (`total_load / (active - 1)`) stays at or below both
//!   [`AutoscalerConfig::scale_in_max_load`] and the learned ceiling — sustained over
//!   [`AutoscalerConfig::scale_in_sustain_intervals`] intervals.
//!
//! Reactive actions are followed by [`AutoscalerConfig::cooldown_intervals`] of
//! enforced holding, and the gap between the scale-in and scale-out load ceilings is a
//! hysteresis band; together they damp flapping at an operating point that straddles a
//! threshold. All decisions are deterministic functions of the snapshots, so autoscaled
//! fleets stay byte-identical across serial and parallel execution and under common
//! random numbers.
//!
//! Reintegration relies on the balancer's rejoin decay: a drained node's
//! balancer-visible latency estimate halves every idle interval
//! (see [`ClusterNode`](crate::node::ClusterNode)), so a reactivated node re-enters the
//! rotation within a few intervals instead of being starved on its last pre-drain
//! reading.

use serde::{Deserialize, Serialize};

use pliant_workloads::profile::MAX_LOAD_FRACTION;

use crate::node::NodeSnapshot;

/// Power/serving state of one fleet node under the autoscaler; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodePowerState {
    /// Serving traffic and accepting job placements.
    #[serde(rename = "active")]
    Active,
    /// Removed from the serving set; powered while its batch jobs finish.
    #[serde(rename = "draining")]
    Draining,
    /// Drained and suspended; bills the park draw.
    #[serde(rename = "parked")]
    Parked,
}

/// What the autoscaler did at one interval boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoscalerAction {
    /// No membership change (park transitions of already-draining nodes still happen).
    Hold,
    /// Node `usize` was reactivated into the serving set.
    ScaleOut(usize),
    /// Node `usize` was drained out of the serving set.
    ScaleIn(usize),
}

/// Configuration of the fleet autoscaler; attach to a
/// [`ClusterScenario`](crate::scenario::ClusterScenario) via
/// [`ClusterScenarioBuilder::autoscaler`](crate::scenario::ClusterScenarioBuilder::autoscaler).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AutoscalerConfig {
    /// Lower bound on the active set; the autoscaler never drains below this.
    pub min_active: usize,
    /// Feed-forward overload ceiling: when the coming interval's per-active-node load
    /// exceeds this, a node is reactivated immediately (bypassing the cooldown — the
    /// offered load is known at planning time, so there is nothing noisy to sustain).
    pub scale_out_load: f64,
    /// Fraction of active nodes whose smoothed tail latency must exceed the QoS target
    /// to count as fleet QoS pressure (the reactive scale-out trigger).
    pub scale_out_violation_fraction: f64,
    /// Consecutive intervals QoS pressure must hold before the reactive scale-out
    /// fires.
    pub scale_out_sustain_intervals: u32,
    /// Ceiling on the per-active-node load the fleet would carry *after* draining one
    /// more node; scale-in is only considered while the projection stays at or below
    /// this. Keep it below [`Self::scale_out_load`] — the gap is the hysteresis band
    /// that keeps a slowly-varying load from flapping the membership.
    pub scale_in_max_load: f64,
    /// Latency-headroom guard for scale-in: every active node's smoothed tail latency
    /// must sit at or below this fraction of its QoS target before a drain is
    /// considered. A fleet hovering just under its target would fail the drain it is
    /// about to attempt.
    pub scale_in_max_p99_fraction: f64,
    /// Consecutive intervals the scale-in trigger must hold before a drain fires.
    pub scale_in_sustain_intervals: u32,
    /// Intervals of enforced holding after a membership change (the feed-forward
    /// overload path exempts itself; see [`Self::scale_out_load`]).
    pub cooldown_intervals: u32,
    /// Active consolidation: when set, a draining node does not wait for its batch
    /// jobs to run to completion — the fleet migrates its in-flight jobs onto active
    /// nodes with free slots each interval, so the drain (and the park that follows)
    /// completes as soon as destinations exist instead of when the slowest job
    /// finishes. Off by default; absent in pre-topology archives.
    #[serde(skip_serializing_if = "is_false")]
    pub consolidate: bool,
}

/// `skip_serializing_if` helper: keeps `consolidate: false` out of archives so
/// pre-topology configs round-trip byte-identically.
fn is_false(b: &bool) -> bool {
    !*b
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        Self {
            min_active: 1,
            scale_out_load: 0.75,
            scale_out_violation_fraction: 0.25,
            scale_out_sustain_intervals: 2,
            scale_in_max_load: 0.65,
            scale_in_max_p99_fraction: 0.9,
            scale_in_sustain_intervals: 4,
            cooldown_intervals: 5,
            consolidate: false,
        }
    }
}

// Hand-written (not derived) so the invariants — in particular the hysteresis band
// between the scale-in and scale-out ceilings — are enforced at the archive boundary: a
// hand-edited config that would flap the fleet membership is rejected here instead of
// deserializing and misbehaving mid-run. The mirror struct keeps the derived plumbing.
impl serde::Deserialize for AutoscalerConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        #[derive(Deserialize)]
        struct AutoscalerConfigWire {
            min_active: usize,
            scale_out_load: f64,
            scale_out_violation_fraction: f64,
            scale_out_sustain_intervals: u32,
            scale_in_max_load: f64,
            scale_in_max_p99_fraction: f64,
            scale_in_sustain_intervals: u32,
            cooldown_intervals: u32,
            #[serde(default)]
            consolidate: bool,
        }
        let w = AutoscalerConfigWire::from_value(value)?;
        let config = AutoscalerConfig {
            min_active: w.min_active,
            scale_out_load: w.scale_out_load,
            scale_out_violation_fraction: w.scale_out_violation_fraction,
            scale_out_sustain_intervals: w.scale_out_sustain_intervals,
            scale_in_max_load: w.scale_in_max_load,
            scale_in_max_p99_fraction: w.scale_in_max_p99_fraction,
            scale_in_sustain_intervals: w.scale_in_sustain_intervals,
            cooldown_intervals: w.cooldown_intervals,
            consolidate: w.consolidate,
        };
        config
            .validate()
            .map_err(|e| serde::Error::custom(format!("invalid autoscaler config: {e}")))?;
        Ok(config)
    }
}

impl AutoscalerConfig {
    /// Checks the configuration's invariants.
    pub fn validate(&self) -> Result<(), AutoscalerConfigError> {
        if self.min_active == 0 {
            return Err(AutoscalerConfigError::NoMinimumActive);
        }
        if !(self.scale_out_violation_fraction > 0.0 && self.scale_out_violation_fraction <= 1.0) {
            return Err(AutoscalerConfigError::InvalidViolationFraction);
        }
        if !(self.scale_in_max_load > 0.0 && self.scale_in_max_load <= MAX_LOAD_FRACTION) {
            return Err(AutoscalerConfigError::InvalidScaleInLoad);
        }
        if !(self.scale_in_max_p99_fraction > 0.0 && self.scale_in_max_p99_fraction <= 1.0) {
            return Err(AutoscalerConfigError::InvalidScaleInHeadroom);
        }
        if !(self.scale_out_load > 0.0 && self.scale_out_load <= MAX_LOAD_FRACTION) {
            return Err(AutoscalerConfigError::InvalidScaleOutLoad);
        }
        if self.scale_in_max_load >= self.scale_out_load {
            return Err(AutoscalerConfigError::NoHysteresis);
        }
        if self.scale_out_sustain_intervals == 0 || self.scale_in_sustain_intervals == 0 {
            return Err(AutoscalerConfigError::NoSustain);
        }
        Ok(())
    }
}

/// Why an [`AutoscalerConfig`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoscalerConfigError {
    /// `min_active` is zero — the fleet must keep at least one serving node.
    NoMinimumActive,
    /// The scale-out violation fraction is outside `(0, 1]`.
    InvalidViolationFraction,
    /// The scale-in load ceiling is outside `(0, MAX_LOAD_FRACTION]`.
    InvalidScaleInLoad,
    /// The scale-in latency-headroom fraction is outside `(0, 1]`.
    InvalidScaleInHeadroom,
    /// The feed-forward overload ceiling is outside `(0, MAX_LOAD_FRACTION]`.
    InvalidScaleOutLoad,
    /// The scale-in load ceiling is at or above the scale-out ceiling, leaving no
    /// hysteresis band: a slowly-varying load would flap the membership every few
    /// intervals.
    NoHysteresis,
    /// A sustain count is zero — every reactive trigger needs at least one interval of
    /// evidence.
    NoSustain,
}

impl std::fmt::Display for AutoscalerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutoscalerConfigError::NoMinimumActive => {
                f.write_str("autoscaler must keep at least one active node")
            }
            AutoscalerConfigError::InvalidViolationFraction => {
                f.write_str("scale-out violation fraction must lie in (0, 1]")
            }
            AutoscalerConfigError::InvalidScaleInLoad => write!(
                f,
                "scale-in load ceiling must lie in (0, {MAX_LOAD_FRACTION}]"
            ),
            AutoscalerConfigError::InvalidScaleInHeadroom => {
                f.write_str("scale-in latency-headroom fraction must lie in (0, 1]")
            }
            AutoscalerConfigError::InvalidScaleOutLoad => write!(
                f,
                "scale-out load ceiling must lie in (0, {MAX_LOAD_FRACTION}]"
            ),
            AutoscalerConfigError::NoHysteresis => {
                f.write_str("scale_in_max_load must be strictly below scale_out_load (hysteresis)")
            }
            AutoscalerConfigError::NoSustain => f.write_str("sustain intervals must be at least 1"),
        }
    }
}

impl std::error::Error for AutoscalerConfigError {}

/// Safety margin applied to the learned capacity ceiling: after a pressure-driven
/// scale-out at per-node load `L`, drains are only considered while the projected
/// per-node load stays below `BURN_MARGIN × L`.
const BURN_MARGIN: f64 = 0.95;

/// Serializable snapshot of an [`Autoscaler`]'s mutable state, for checkpointing (the
/// configuration and instance weights are rebuilt from the scenario).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoscalerSnapshot {
    /// Per-instance power states.
    pub states: Vec<NodePowerState>,
    /// Remaining enforced-hold intervals.
    pub cooldown: u32,
    /// Consecutive intervals of fleet QoS pressure.
    pub out_streak: u32,
    /// Peak per-node load over the current pressure streak.
    pub streak_peak_load: f64,
    /// Consecutive intervals of scale-in eligibility.
    pub in_streak: u32,
    /// Learned capacity ceiling; `None` encodes "not yet learned" (infinity), which
    /// JSON cannot carry as a number.
    pub burned_per_node_load: Option<f64>,
}

/// Runtime state of the fleet autoscaler; see the module docs.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    states: Vec<NodePowerState>,
    /// Remaining enforced-hold intervals after the last membership change.
    cooldown: u32,
    /// Consecutive intervals of fleet QoS pressure.
    out_streak: u32,
    /// Highest per-active-node load observed over the current pressure streak; what a
    /// pressure-driven scale-out burns as the learned ceiling. Smoothed tail latency
    /// is an EWMA, so pressure can outlast the load spike that caused it — burning
    /// the load of the interval the streak *completes* on (possibly already back to a
    /// healthy level) would permanently block drains at loads the fleet serves fine.
    streak_peak_load: f64,
    /// Consecutive intervals of scale-in eligibility.
    in_streak: u32,
    /// Learned capacity ceiling: the smallest streak-peak per-active-node load at
    /// which a *pressure-driven* scale-out has fired. The fleet demonstrated it cannot
    /// serve this load per node within QoS, so scale-in never projects back into it
    /// (and the feed-forward path treats it as the effective overload ceiling). Starts
    /// at infinity; only QoS evidence lowers it. This is what converts a policy's true
    /// per-node capacity — higher under approximation than under precise execution —
    /// into a machine count, without rediscovering the limit through repeated failed
    /// drains.
    burned_per_node_load: f64,
    /// Logical nodes each instance stands for. All-ones on an exact fleet; a clustered
    /// fleet's replica weights make every membership decision instance-atomic (a whole
    /// replica block drains or reactivates together) while the load and violation
    /// arithmetic stays in logical-node units.
    weights: Vec<usize>,
}

impl Autoscaler {
    /// Creates an autoscaler for a fleet of `nodes` nodes, all initially active.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `min_active` exceeds the fleet size.
    pub fn new(config: AutoscalerConfig, nodes: usize) -> Self {
        Self::for_instances(config, vec![1; nodes])
    }

    /// Creates an autoscaler over `weights.len()` simulated instances, where instance
    /// `i` stands for `weights[i]` logical nodes (see [`crate::population`]). All
    /// instances start active. `min_active` is interpreted in *logical* nodes, exactly
    /// as on an exact fleet.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, any weight is zero, or `min_active`
    /// exceeds the summed logical fleet size.
    pub fn for_instances(config: AutoscalerConfig, weights: Vec<usize>) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid autoscaler config: {e}");
        }
        assert!(
            weights.iter().all(|w| *w > 0),
            "instance weights must be positive"
        );
        let logical: usize = weights.iter().sum();
        assert!(
            config.min_active <= logical,
            "min_active ({}) exceeds the fleet size ({logical})",
            config.min_active
        );
        Self {
            config,
            states: vec![NodePowerState::Active; weights.len()],
            cooldown: 0,
            out_streak: 0,
            streak_peak_load: 0.0,
            in_streak: 0,
            burned_per_node_load: f64::INFINITY,
            weights,
        }
    }

    /// The configuration the autoscaler runs.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Per-node power states, in node order.
    pub fn states(&self) -> &[NodePowerState] {
        &self.states
    }

    /// Nodes currently serving traffic.
    pub fn active_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == NodePowerState::Active)
            .count()
    }

    /// *Logical* nodes currently serving traffic: the replica-weighted active count.
    /// Equal to [`Self::active_count`] on an exact (all-ones) fleet.
    pub fn active_replicas(&self) -> usize {
        self.states
            .iter()
            .zip(&self.weights)
            .filter(|(s, _)| **s == NodePowerState::Active)
            .map(|(_, w)| *w)
            .sum()
    }

    /// Logical nodes each instance stands for, in instance order.
    pub fn weights(&self) -> &[usize] {
        &self.weights
    }

    /// The learned capacity ceiling: the smallest per-active-node load at which QoS
    /// pressure has forced a scale-out so far (infinity until it happens). Each
    /// pressure event contributes the *peak* per-node load observed over its streak,
    /// so a spike whose EWMA pressure outlasts the load itself burns the load that
    /// caused the violations, not the healthy level the fleet had already fallen to.
    pub fn burned_per_node_load(&self) -> f64 {
        self.burned_per_node_load
    }

    /// Captures the autoscaler's mutable state for checkpointing.
    pub fn snapshot(&self) -> AutoscalerSnapshot {
        AutoscalerSnapshot {
            states: self.states.clone(),
            cooldown: self.cooldown,
            out_streak: self.out_streak,
            streak_peak_load: self.streak_peak_load,
            in_streak: self.in_streak,
            burned_per_node_load: if self.burned_per_node_load.is_finite() {
                Some(self.burned_per_node_load)
            } else {
                None
            },
        }
    }

    /// Restores state captured by [`Self::snapshot`] onto an autoscaler built with the
    /// same configuration and instance weights.
    ///
    /// # Errors
    ///
    /// Rejects a snapshot whose instance count disagrees with this autoscaler's.
    pub fn restore(&mut self, snapshot: &AutoscalerSnapshot) -> Result<(), String> {
        if snapshot.states.len() != self.states.len() {
            return Err(format!(
                "snapshot carries {} instances, autoscaler has {}",
                snapshot.states.len(),
                self.states.len()
            ));
        }
        self.states = snapshot.states.clone();
        self.cooldown = snapshot.cooldown;
        self.out_streak = snapshot.out_streak;
        self.streak_peak_load = snapshot.streak_peak_load;
        self.in_streak = snapshot.in_streak;
        self.burned_per_node_load = snapshot.burned_per_node_load.unwrap_or(f64::INFINITY);
        Ok(())
    }

    /// Plans one interval: transitions fully-drained nodes to parked, updates the
    /// trigger streaks from `snapshots` (the previous interval's node states), and
    /// fires at most one membership change. `total_load` is the fleet's offered load
    /// for the coming interval in node-saturation units; `slots_per_node` is the
    /// co-location width (a draining node parks once all its slots are free).
    ///
    /// # Panics
    ///
    /// Panics if `snapshots.len()` differs from the fleet size.
    pub fn plan(
        &mut self,
        total_load: f64,
        snapshots: &[NodeSnapshot],
        slots_per_node: usize,
    ) -> AutoscalerAction {
        assert_eq!(
            snapshots.len(),
            self.states.len(),
            "autoscaler built for {} nodes, got {} snapshots",
            self.states.len(),
            snapshots.len()
        );

        // Park fully-drained nodes (suspending costs nothing to decide; no cooldown).
        for (state, snap) in self.states.iter_mut().zip(snapshots) {
            if *state == NodePowerState::Draining && snap.free_slots == slots_per_node {
                *state = NodePowerState::Parked;
            }
        }

        let active_count = self.active_count();
        let per_node_load = total_load / active_count.max(1) as f64;
        let violating = self
            .states
            .iter()
            .zip(snapshots)
            .filter(|(state, snap)| {
                **state == NodePowerState::Active && snap.smoothed_p99_s > snap.qos_target_s
            })
            .count();
        let pressure = violating > 0
            && violating as f64 >= self.config.scale_out_violation_fraction * active_count as f64;
        let can_grow = active_count < self.states.len();
        let projected_after_drain = if active_count > 1 {
            total_load / (active_count - 1) as f64
        } else {
            f64::INFINITY
        };
        // Scale-in needs demonstrated headroom on every serving node, not merely the
        // absence of violations: a fleet hovering just under its target would fail the
        // drain it is about to attempt. The projection must also clear both the
        // configured ceiling and the learned one.
        let headroom = self.states.iter().zip(snapshots).all(|(state, snap)| {
            *state != NodePowerState::Active
                || snap.smoothed_p99_s <= self.config.scale_in_max_p99_fraction * snap.qos_target_s
        });
        let drain_ceiling = self
            .config
            .scale_in_max_load
            .min(BURN_MARGIN * self.burned_per_node_load);
        let can_shrink = active_count > self.config.min_active
            && violating == 0
            && headroom
            && projected_after_drain <= drain_ceiling;

        // Streaks accumulate even through a cooldown, so an operating point that keeps
        // its trigger asserted acts immediately once the hold expires. The pressure
        // streak also tracks its peak per-node load (see `streak_peak_load`).
        self.out_streak = if pressure && can_grow {
            self.streak_peak_load = if self.out_streak == 0 {
                per_node_load
            } else {
                self.streak_peak_load.max(per_node_load)
            };
            self.out_streak + 1
        } else {
            0
        };
        self.in_streak = if can_shrink { self.in_streak + 1 } else { 0 };

        // Feed-forward overload: the coming interval's load is *known*, so a fleet
        // asked to serve more per node than the (configured or learned) ceiling grows
        // immediately — no sustain, no cooldown. This cannot flap against scale-in:
        // drains only fire while the projection stays in the hysteresis band below.
        let overload_ceiling = self.config.scale_out_load.min(self.burned_per_node_load);
        if can_grow && per_node_load > overload_ceiling {
            let target = self.reactivation_target();
            self.states[target] = NodePowerState::Active;
            self.cooldown = self.config.cooldown_intervals;
            self.out_streak = 0;
            self.in_streak = 0;
            return AutoscalerAction::ScaleOut(target);
        }

        if self.cooldown > 0 {
            self.cooldown -= 1;
            return AutoscalerAction::Hold;
        }

        if self.out_streak >= self.config.scale_out_sustain_intervals {
            // The fleet demonstrated it cannot serve the streak's peak per-node load
            // within QoS: remember the ceiling so scale-in never projects back into
            // it. The ceiling is deliberately monotone (no decay) — conservative, and
            // what keeps autoscaled runs deterministic functions of their history.
            self.burned_per_node_load = self.burned_per_node_load.min(self.streak_peak_load);
            let target = self.reactivation_target();
            self.states[target] = NodePowerState::Active;
            self.cooldown = self.config.cooldown_intervals;
            self.out_streak = 0;
            self.in_streak = 0;
            return AutoscalerAction::ScaleOut(target);
        }

        if self.in_streak >= self.config.scale_in_sustain_intervals {
            // Drain the least-loaded active node: lowest service utilization, ties
            // broken toward the highest index (node 0 stays active the longest).
            let target = snapshots
                .iter()
                .filter(|s| self.states[s.index] == NodePowerState::Active)
                .min_by(|a, b| {
                    a.utilization
                        .total_cmp(&b.utilization)
                        .then(b.index.cmp(&a.index))
                })
                // pliant-lint: allow(panic-hygiene): scale-in is only considered while
                // the active count exceeds `min_active >= 1` (checked just above).
                .expect("an active node exists")
                .index;
            self.states[target] = NodePowerState::Draining;
            self.cooldown = self.config.cooldown_intervals;
            self.out_streak = 0;
            self.in_streak = 0;
            return AutoscalerAction::ScaleIn(target);
        }

        AutoscalerAction::Hold
    }

    /// Clustered-fleet variant of [`Self::plan`]: membership changes are
    /// instance-atomic (a representative and all the logical nodes it stands for drain
    /// or reactivate as one block — which is what keeps replica weights constant over a
    /// run, so node-side weighted accounting stays exact), while every trigger is
    /// evaluated in logical-node units: per-node load divides by the replica-weighted
    /// active count, the violation fraction weighs each violating instance by its
    /// replicas, `min_active` bounds logical nodes, and a drain's load projection
    /// removes the candidate's whole weight. With unit weights every quantity
    /// coincides with [`Self::plan`]'s and the two make identical decisions.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots.len()` differs from the instance count.
    pub fn plan_grouped(
        &mut self,
        total_load: f64,
        snapshots: &[NodeSnapshot],
        slots_per_node: usize,
    ) -> AutoscalerAction {
        assert_eq!(
            snapshots.len(),
            self.states.len(),
            "autoscaler built for {} instances, got {} snapshots",
            self.states.len(),
            snapshots.len()
        );

        // Park fully-drained instances (suspending costs nothing to decide; no
        // cooldown).
        for (state, snap) in self.states.iter_mut().zip(snapshots) {
            if *state == NodePowerState::Draining && snap.free_slots == slots_per_node {
                *state = NodePowerState::Parked;
            }
        }

        let active_replicas = self.active_replicas();
        let per_node_load = total_load / active_replicas.max(1) as f64;
        let violating: usize = self
            .states
            .iter()
            .zip(snapshots)
            .zip(&self.weights)
            .filter(|((state, snap), _)| {
                **state == NodePowerState::Active && snap.smoothed_p99_s > snap.qos_target_s
            })
            .map(|(_, w)| *w)
            .sum();
        let pressure = violating > 0
            && violating as f64
                >= self.config.scale_out_violation_fraction * active_replicas as f64;
        let can_grow = self.states.iter().any(|s| *s != NodePowerState::Active);
        let headroom = self.states.iter().zip(snapshots).all(|(state, snap)| {
            *state != NodePowerState::Active
                || snap.smoothed_p99_s <= self.config.scale_in_max_p99_fraction * snap.qos_target_s
        });
        let drain_ceiling = self
            .config
            .scale_in_max_load
            .min(BURN_MARGIN * self.burned_per_node_load);
        // A drain candidate must leave at least `min_active` logical nodes serving and
        // keep the survivors' per-node load at or below the ceiling *after losing the
        // candidate's whole replica block*.
        let drain_eligible = |scaler: &Self, i: usize| {
            scaler.states[i] == NodePowerState::Active && {
                let remaining = active_replicas - scaler.weights[i];
                remaining >= scaler.config.min_active
                    && total_load / remaining as f64 <= drain_ceiling
            }
        };
        let can_shrink =
            violating == 0 && headroom && (0..self.states.len()).any(|i| drain_eligible(self, i));

        self.out_streak = if pressure && can_grow {
            self.streak_peak_load = if self.out_streak == 0 {
                per_node_load
            } else {
                self.streak_peak_load.max(per_node_load)
            };
            self.out_streak + 1
        } else {
            0
        };
        self.in_streak = if can_shrink { self.in_streak + 1 } else { 0 };

        let overload_ceiling = self.config.scale_out_load.min(self.burned_per_node_load);
        if can_grow && per_node_load > overload_ceiling {
            let target = self.reactivation_target();
            self.states[target] = NodePowerState::Active;
            self.cooldown = self.config.cooldown_intervals;
            self.out_streak = 0;
            self.in_streak = 0;
            return AutoscalerAction::ScaleOut(target);
        }

        if self.cooldown > 0 {
            self.cooldown -= 1;
            return AutoscalerAction::Hold;
        }

        if self.out_streak >= self.config.scale_out_sustain_intervals {
            self.burned_per_node_load = self.burned_per_node_load.min(self.streak_peak_load);
            let target = self.reactivation_target();
            self.states[target] = NodePowerState::Active;
            self.cooldown = self.config.cooldown_intervals;
            self.out_streak = 0;
            self.in_streak = 0;
            return AutoscalerAction::ScaleOut(target);
        }

        if self.in_streak >= self.config.scale_in_sustain_intervals {
            // Drain the least-utilized *eligible* instance, ties toward the highest
            // index, mirroring the exact policy.
            let target = snapshots
                .iter()
                .filter(|s| drain_eligible(self, s.index))
                .min_by(|a, b| {
                    a.utilization
                        .total_cmp(&b.utilization)
                        .then(b.index.cmp(&a.index))
                })
                // pliant-lint: allow(panic-hygiene): the in-streak only accrues while
                // a drain-eligible instance exists (see `can_shrink` above).
                .expect("an eligible instance exists")
                .index;
            self.states[target] = NodePowerState::Draining;
            self.cooldown = self.config.cooldown_intervals;
            self.out_streak = 0;
            self.in_streak = 0;
            return AutoscalerAction::ScaleIn(target);
        }

        AutoscalerAction::Hold
    }

    /// Re-checks the park transition *outside* the planning step: a drain that
    /// completes mid-interval — because a migration emptied the node's last busy slot
    /// — parks before the node step, so the interval bills the park draw and the
    /// `active_nodes` trace series stops counting the drained node that same interval
    /// instead of one interval late. Appends the indices of newly-parked instances to
    /// `parked` (a caller-owned scratch buffer; the per-interval hot path reuses it
    /// instead of allocating). No cooldown, exactly as the park path in
    /// [`Self::plan`]: suspending costs nothing to decide.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots.len()` differs from the instance count.
    pub fn park_fully_drained(
        &mut self,
        snapshots: &[NodeSnapshot],
        slots_per_node: usize,
        parked: &mut Vec<usize>,
    ) {
        assert_eq!(
            snapshots.len(),
            self.states.len(),
            "autoscaler built for {} instances, got {} snapshots",
            self.states.len(),
            snapshots.len()
        );
        for (i, (state, snap)) in self.states.iter_mut().zip(snapshots).enumerate() {
            if *state == NodePowerState::Draining && snap.free_slots == slots_per_node {
                *state = NodePowerState::Parked;
                parked.push(i);
            }
        }
    }

    /// The node a scale-out reactivates: a draining node first (still warm, its jobs
    /// are still on it), else the lowest-index parked node.
    fn reactivation_target(&self) -> usize {
        self.states
            .iter()
            .position(|s| *s == NodePowerState::Draining)
            .or_else(|| {
                self.states
                    .iter()
                    .position(|s| *s == NodePowerState::Parked)
            })
            // pliant-lint: allow(panic-hygiene): both scale-out paths check
            // `active_count < n` before calling, so a non-active node exists.
            .expect("scale-out requires an inactive node")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(index: usize, p99: f64, utilization: f64, free_slots: usize) -> NodeSnapshot {
        NodeSnapshot {
            index,
            smoothed_p99_s: p99,
            utilization,
            free_slots,
            qos_target_s: 0.01,
        }
    }

    fn healthy(n: usize) -> Vec<NodeSnapshot> {
        (0..n).map(|i| snapshot(i, 0.005, 0.5, 0)).collect()
    }

    fn config() -> AutoscalerConfig {
        AutoscalerConfig {
            min_active: 1,
            scale_out_load: 1.0,
            scale_out_violation_fraction: 0.25,
            scale_out_sustain_intervals: 2,
            scale_in_max_load: 0.7,
            scale_in_max_p99_fraction: 0.8,
            scale_in_sustain_intervals: 2,
            cooldown_intervals: 3,
            consolidate: false,
        }
    }

    #[test]
    fn config_validation_catches_degenerate_knobs() {
        assert!(AutoscalerConfig::default().validate().is_ok());
        let mut c = config();
        c.min_active = 0;
        assert_eq!(c.validate(), Err(AutoscalerConfigError::NoMinimumActive));
        let mut c = config();
        c.scale_out_violation_fraction = 0.0;
        assert_eq!(
            c.validate(),
            Err(AutoscalerConfigError::InvalidViolationFraction)
        );
        let mut c = config();
        c.scale_in_max_load = 2.0;
        assert_eq!(c.validate(), Err(AutoscalerConfigError::InvalidScaleInLoad));
        let mut c = config();
        c.scale_out_sustain_intervals = 0;
        assert_eq!(c.validate(), Err(AutoscalerConfigError::NoSustain));
        let mut c = config();
        c.scale_in_sustain_intervals = 0;
        assert_eq!(c.validate(), Err(AutoscalerConfigError::NoSustain));
        let mut c = config();
        c.scale_in_max_p99_fraction = 0.0;
        assert_eq!(
            c.validate(),
            Err(AutoscalerConfigError::InvalidScaleInHeadroom)
        );
        let mut c = config();
        c.scale_out_load = 0.0;
        assert_eq!(
            c.validate(),
            Err(AutoscalerConfigError::InvalidScaleOutLoad)
        );
        let mut c = config();
        c.scale_in_max_load = c.scale_out_load;
        assert_eq!(c.validate(), Err(AutoscalerConfigError::NoHysteresis));
    }

    #[test]
    fn scale_in_requires_latency_headroom_on_every_active_node() {
        let mut scaler = Autoscaler::new(config(), 3);
        let mut snaps = healthy(3);
        // One node hovering at 90% of its target (no violation, no headroom either):
        // the fleet must not drain.
        snaps[1].smoothed_p99_s = 0.009;
        for _ in 0..4 {
            assert_eq!(scaler.plan(0.8, &snaps, 1), AutoscalerAction::Hold);
        }
        assert_eq!(scaler.active_count(), 3);
        // Headroom restored → the drain proceeds.
        snaps[1].smoothed_p99_s = 0.004;
        scaler.plan(0.8, &snaps, 1);
        assert!(matches!(
            scaler.plan(0.8, &snaps, 1),
            AutoscalerAction::ScaleIn(_)
        ));
    }

    #[test]
    fn sustained_headroom_drains_the_least_loaded_node() {
        let mut scaler = Autoscaler::new(config(), 4);
        let mut snaps = healthy(4);
        snaps[2].utilization = 0.2; // least loaded
                                    // Total load 1.0 over 3 remaining nodes = 0.33 <= 0.7 → eligible.
        assert_eq!(scaler.plan(1.0, &snaps, 1), AutoscalerAction::Hold);
        assert_eq!(scaler.plan(1.0, &snaps, 1), AutoscalerAction::ScaleIn(2));
        assert_eq!(scaler.states()[2], NodePowerState::Draining);
        assert_eq!(scaler.active_count(), 3);
        // Cooldown holds even though the trigger stays asserted (1.0 / 2 = 0.5 ≤ 0.7)...
        for _ in 0..3 {
            assert_eq!(scaler.plan(1.0, &snaps, 1), AutoscalerAction::Hold);
        }
        // ...then the sustained streak fires immediately after it expires.
        let next = scaler.plan(1.0, &snaps, 1);
        assert!(matches!(next, AutoscalerAction::ScaleIn(_)), "{next:?}");
        // With 2 active nodes a further drain would project 1.0 load per node — above
        // the ceiling, so the fleet settles.
        for _ in 0..3 {
            scaler.plan(1.0, &snaps, 1);
        }
        assert_eq!(scaler.plan(1.0, &snaps, 1), AutoscalerAction::Hold);
        assert_eq!(scaler.active_count(), 2);
    }

    #[test]
    fn draining_nodes_park_once_their_slots_are_free() {
        let mut scaler = Autoscaler::new(config(), 3);
        let mut snaps = healthy(3);
        snaps[1].utilization = 0.1;
        scaler.plan(0.8, &snaps, 1);
        scaler.plan(0.8, &snaps, 1);
        assert_eq!(scaler.states()[1], NodePowerState::Draining);
        // Still running its job: stays draining.
        scaler.plan(0.8, &snaps, 1);
        assert_eq!(scaler.states()[1], NodePowerState::Draining);
        // Job finished → all slots free → parked.
        snaps[1].free_slots = 1;
        scaler.plan(0.8, &snaps, 1);
        assert_eq!(scaler.states()[1], NodePowerState::Parked);
    }

    #[test]
    fn sustained_qos_pressure_reactivates_a_node() {
        let mut scaler = Autoscaler::new(config(), 3);
        let mut snaps = healthy(3);
        snaps[0].utilization = 0.1;
        scaler.plan(0.8, &snaps, 1); // streak 1
        assert_eq!(scaler.plan(0.8, &snaps, 1), AutoscalerAction::ScaleIn(0));
        snaps[0].free_slots = 1;
        for _ in 0..3 {
            scaler.plan(0.8, &snaps, 1); // cooldown; node 0 parks meanwhile
        }
        assert_eq!(scaler.states()[0], NodePowerState::Parked);
        // One of two active nodes over target = 50% ≥ 25% → pressure.
        snaps[1].smoothed_p99_s = 0.02;
        scaler.plan(2.0, &snaps, 1); // streak 1
        assert_eq!(scaler.plan(2.0, &snaps, 1), AutoscalerAction::ScaleOut(0));
        assert_eq!(scaler.states()[0], NodePowerState::Active);
        assert_eq!(scaler.active_count(), 3);
    }

    #[test]
    fn scale_out_prefers_draining_over_parked_nodes() {
        let mut scaler = Autoscaler::new(config(), 4);
        let mut snaps = healthy(4);
        // Drain node 3, park it; then drain node 2 and keep it draining.
        snaps[3].utilization = 0.1;
        scaler.plan(0.8, &snaps, 1);
        scaler.plan(0.8, &snaps, 1);
        snaps[3].free_slots = 1;
        for _ in 0..3 {
            scaler.plan(0.8, &snaps, 1);
        }
        // The eligibility streak kept accruing through the cooldown, so the next plan
        // fires immediately and drains the now-least-loaded node 2.
        snaps[2].utilization = 0.15;
        assert_eq!(scaler.plan(0.8, &snaps, 1), AutoscalerAction::ScaleIn(2));
        assert_eq!(scaler.states()[3], NodePowerState::Parked);
        assert_eq!(scaler.states()[2], NodePowerState::Draining);
        // Pressure (below the feed-forward ceiling): the still-warm draining node
        // comes back first.
        snaps[0].smoothed_p99_s = 0.02;
        snaps[1].smoothed_p99_s = 0.02;
        for _ in 0..3 {
            scaler.plan(1.8, &snaps, 1); // cooldown drains while pressure accrues
        }
        assert_eq!(scaler.plan(1.8, &snaps, 1), AutoscalerAction::ScaleOut(2));
    }

    #[test]
    fn feed_forward_overload_grows_immediately_and_bypasses_cooldown() {
        let mut scaler = Autoscaler::new(config(), 3);
        let mut snaps = healthy(3);
        snaps[2].utilization = 0.1;
        scaler.plan(0.8, &snaps, 1);
        assert_eq!(scaler.plan(0.8, &snaps, 1), AutoscalerAction::ScaleIn(2));
        // Load jumps above the ceiling (2.2 / 2 = 1.1 > 1.0) while the cooldown is
        // still running: the offered load is known, so the fleet grows at once.
        assert_eq!(scaler.plan(2.2, &snaps, 1), AutoscalerAction::ScaleOut(2));
        assert_eq!(scaler.active_count(), 3);
    }

    #[test]
    fn pressure_scale_outs_burn_a_capacity_ceiling_that_blocks_re_drains() {
        let cfg = AutoscalerConfig {
            cooldown_intervals: 0,
            ..config()
        };
        let mut scaler = Autoscaler::new(cfg, 3);
        let mut snaps = healthy(3);
        snaps[2].utilization = 0.1;
        // Drain to 2 nodes at 0.6 per node (projection 1.2/2 = 0.6 ≤ 0.7).
        scaler.plan(1.2, &snaps, 1);
        assert_eq!(scaler.plan(1.2, &snaps, 1), AutoscalerAction::ScaleIn(2));
        assert_eq!(scaler.burned_per_node_load(), f64::INFINITY);
        // The 2-node fleet violates at 0.6 per node → pressure-driven scale-out burns
        // that per-node load as the learned ceiling.
        snaps[0].smoothed_p99_s = 0.02;
        scaler.plan(1.2, &snaps, 1);
        assert_eq!(scaler.plan(1.2, &snaps, 1), AutoscalerAction::ScaleOut(2));
        assert_eq!(scaler.burned_per_node_load(), 0.6);
        // Back at 3 healthy nodes, the same drain is no longer eligible: the
        // projection (0.6) is above the burned ceiling with its margin (0.57).
        snaps[0].smoothed_p99_s = 0.005;
        for _ in 0..5 {
            assert_eq!(scaler.plan(1.2, &snaps, 1), AutoscalerAction::Hold);
        }
        assert_eq!(scaler.active_count(), 3);
        // A lighter load projects below the burned ceiling and may drain again.
        scaler.plan(1.0, &snaps, 1);
        assert!(matches!(
            scaler.plan(1.0, &snaps, 1),
            AutoscalerAction::ScaleIn(_)
        ));
    }

    #[test]
    fn never_drains_below_min_active_and_never_grows_past_the_fleet() {
        let cfg = AutoscalerConfig {
            min_active: 2,
            scale_out_sustain_intervals: 1,
            scale_in_sustain_intervals: 1,
            cooldown_intervals: 0,
            ..config()
        };
        let mut scaler = Autoscaler::new(cfg, 3);
        let snaps = healthy(3);
        assert!(matches!(
            scaler.plan(0.4, &snaps, 1),
            AutoscalerAction::ScaleIn(_)
        ));
        // At min_active, unconditional hold regardless of headroom.
        assert_eq!(scaler.plan(0.1, &snaps, 1), AutoscalerAction::Hold);
        assert_eq!(scaler.active_count(), 2);
        // Fully-active fleet under pressure cannot grow.
        let mut hot = healthy(3);
        for s in &mut hot {
            s.smoothed_p99_s = 0.05;
        }
        let mut full = Autoscaler::new(config(), 2);
        assert_eq!(full.plan(3.0, &hot[..2], 1), AutoscalerAction::Hold);
        assert_eq!(full.plan(3.0, &hot[..2], 1), AutoscalerAction::Hold);
        assert_eq!(full.active_count(), 2);
    }

    #[test]
    fn burned_ceiling_records_the_streak_peak_not_the_completion_load() {
        // Pressure is EWMA-driven and can outlast the spike that caused it: if the
        // load has already fallen by the time the streak completes, the ceiling must
        // still record the spike's load, not the healthy post-spike level.
        let cfg = AutoscalerConfig {
            scale_out_sustain_intervals: 3,
            cooldown_intervals: 0,
            ..config()
        };
        let mut scaler = Autoscaler::new(cfg, 3);
        let mut snaps = healthy(3);
        snaps[2].utilization = 0.1;
        scaler.plan(1.2, &snaps, 1);
        assert_eq!(scaler.plan(1.2, &snaps, 1), AutoscalerAction::ScaleIn(2));
        // Spike to 0.9 per node (1.8 over 2 active); the EWMA stays over target even
        // as the load falls back to 0.5 per node.
        snaps[0].smoothed_p99_s = 0.02;
        scaler.plan(1.8, &snaps, 1); // streak 1 at 0.9/node
        scaler.plan(1.4, &snaps, 1); // streak 2 at 0.7/node
        assert_eq!(scaler.plan(1.0, &snaps, 1), AutoscalerAction::ScaleOut(2));
        assert_eq!(
            scaler.burned_per_node_load(),
            0.9,
            "the ceiling must be the streak's peak load, not the completion load (0.5)"
        );
    }

    #[test]
    fn grouped_planning_with_unit_weights_matches_the_exact_planner() {
        // Replay a load trace that exercises scale-in, park, feed-forward scale-out,
        // and pressure through both planners; decisions and states must agree.
        let loads = [
            0.8, 0.8, 0.8, 0.8, 0.8, 0.8, 0.8, 0.8, 2.2, 2.2, 0.8, 0.8, 0.8, 0.8,
        ];
        let mut exact = Autoscaler::new(config(), 4);
        let mut grouped = Autoscaler::for_instances(config(), vec![1; 4]);
        let mut snaps = healthy(4);
        snaps[2].utilization = 0.2;
        for (t, &load) in loads.iter().enumerate() {
            if t == 6 {
                // Whatever drained by now reports free slots so it can park.
                for (i, s) in exact.states().iter().enumerate() {
                    if *s != NodePowerState::Active {
                        snaps[i].free_slots = 1;
                    }
                }
            }
            let a = exact.plan(load, &snaps, 1);
            let b = grouped.plan_grouped(load, &snaps, 1);
            assert_eq!(a, b, "interval {t}: planners diverged");
            assert_eq!(exact.states(), grouped.states(), "interval {t}");
        }
        assert_eq!(exact.active_count(), grouped.active_replicas());
    }

    #[test]
    fn grouped_planning_is_instance_atomic_and_counts_logical_nodes() {
        // Two instances of 5 replicas each, min_active = 6: draining either block
        // would leave 5 < 6 logical nodes, so no drain is ever eligible even at a
        // trivial load.
        let cfg = AutoscalerConfig {
            min_active: 6,
            scale_in_sustain_intervals: 1,
            cooldown_intervals: 0,
            ..config()
        };
        let mut scaler = Autoscaler::for_instances(cfg, vec![5, 5]);
        let snaps = healthy(2);
        for _ in 0..4 {
            assert_eq!(scaler.plan_grouped(0.5, &snaps, 1), AutoscalerAction::Hold);
        }
        assert_eq!(scaler.active_replicas(), 10);

        // With min_active = 5 one block may drain; the projection divides by the
        // surviving 5 logical nodes (3.0 / 5 = 0.6 ≤ 0.7 → eligible).
        let cfg = AutoscalerConfig {
            min_active: 5,
            scale_in_sustain_intervals: 1,
            cooldown_intervals: 0,
            ..config()
        };
        let mut scaler = Autoscaler::for_instances(cfg, vec![5, 5]);
        let mut snaps = healthy(2);
        snaps[0].utilization = 0.2;
        assert_eq!(
            scaler.plan_grouped(3.0, &snaps, 1),
            AutoscalerAction::ScaleIn(0)
        );
        assert_eq!(scaler.active_replicas(), 5);
        assert_eq!(scaler.active_count(), 1);
        // Feed-forward overload measures per *logical* node: 5.5 / 5 = 1.1 > 1.0.
        snaps[0].free_slots = 1;
        assert_eq!(
            scaler.plan_grouped(5.5, &snaps, 1),
            AutoscalerAction::ScaleOut(0)
        );
        assert_eq!(scaler.active_replicas(), 10);
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = config();
        let json = serde_json::to_string(&cfg).expect("serializable");
        let back: AutoscalerConfig = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, cfg);
    }

    #[test]
    fn consolidate_defaults_off_and_is_omitted_from_archives() {
        // Pre-topology archives carry no `consolidate` key; the wire default keeps
        // them deserializing, and an off flag round-trips to the same bytes.
        let cfg = AutoscalerConfig::default();
        assert!(!cfg.consolidate);
        let json = serde_json::to_string(&cfg).expect("serializable");
        assert!(
            !json.contains("consolidate"),
            "off flag must be omitted: {json}"
        );
        let back: AutoscalerConfig = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, cfg);

        let on = AutoscalerConfig {
            consolidate: true,
            ..AutoscalerConfig::default()
        };
        let json = serde_json::to_string(&on).expect("serializable");
        assert!(json.contains("consolidate"), "{json}");
        let back: AutoscalerConfig = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, on);
    }

    #[test]
    fn mid_interval_park_pass_retires_drains_completed_by_migration() {
        let mut scaler = Autoscaler::new(config(), 3);
        let mut snaps = healthy(3);
        snaps[2].utilization = 0.1;
        scaler.plan(0.8, &snaps, 1);
        assert_eq!(scaler.plan(0.8, &snaps, 1), AutoscalerAction::ScaleIn(2));
        // The planning step saw the node still busy; nothing to park yet.
        let mut parked = Vec::new();
        scaler.park_fully_drained(&snaps, 1, &mut parked);
        assert!(parked.is_empty());
        assert_eq!(scaler.states()[2], NodePowerState::Draining);
        // A migration empties its last slot mid-interval: the park pass retires it
        // in the same interval instead of waiting for the next plan.
        snaps[2].free_slots = 1;
        scaler.park_fully_drained(&snaps, 1, &mut parked);
        assert_eq!(parked, vec![2]);
        assert_eq!(scaler.states()[2], NodePowerState::Parked);
    }
}
