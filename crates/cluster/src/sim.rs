//! The fleet simulator: N nodes coupled by a load balancer and a batch scheduler.
//!
//! A [`ClusterSim`] advances the whole fleet one decision interval at a time:
//!
//! 1. the per-node-average load profile is sampled and scaled to the fleet's total
//!    offered load;
//! 2. the batch scheduler places queued jobs into slots freed by jobs that completed in
//!    the previous interval;
//! 3. the [`LoadBalancer`] splits the total load into
//!    per-node assignments (using the previous interval's node snapshots);
//! 4. every node advances independently — its simulator, monitor, policy, and actuator
//!    run the exact single-node loop.
//!
//! Step 4 is embarrassingly parallel: nodes share no state within an interval, and all
//! cross-node decisions (balancing, placement) happen between intervals on the
//! coordinating thread. [`ClusterSim::advance_threads`] therefore produces results
//! byte-identical to [`ClusterSim::advance`] for any worker count.

use pliant_approx::catalog::Catalog;

use crate::balancer::LoadBalancer;
use crate::node::{ClusterNode, NodeInterval, NodeSnapshot};
use crate::scenario::ClusterScenario;
use crate::scheduler::{BatchScheduler, SchedulerStats};

/// Everything the fleet produced during one decision interval.
#[derive(Debug, Clone)]
pub struct ClusterInterval {
    /// Experiment time at the end of the interval, in seconds.
    pub time_s: f64,
    /// The sampled per-node-average offered load for the interval.
    pub avg_offered_load: f64,
    /// Total offered load for the interval, in node-saturation units
    /// (`avg_offered_load × nodes`).
    pub total_offered_load: f64,
    /// Jobs placed onto nodes at the start of the interval.
    pub jobs_placed: usize,
    /// Per-node results, in node order.
    pub nodes: Vec<NodeInterval>,
}

/// The fleet simulator; see the module docs.
pub struct ClusterSim {
    scenario: ClusterScenario,
    catalog: Catalog,
    nodes: Vec<ClusterNode>,
    balancer: LoadBalancer,
    scheduler: BatchScheduler,
    time_s: f64,
    intervals: usize,
}

impl ClusterSim {
    /// Builds the fleet described by `scenario`, filling every node's slots with the
    /// first `nodes × slots_per_node` jobs (node-major order) and queueing the rest.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`ClusterScenario::validate`] or names an
    /// application missing from the catalog.
    pub fn new(scenario: &ClusterScenario, catalog: &Catalog) -> Self {
        if let Err(e) = scenario.validate() {
            panic!("invalid cluster scenario `{}`: {e}", scenario.describe());
        }
        let initial = scenario.initial_job_count();
        let nodes: Vec<ClusterNode> = (0..scenario.nodes)
            .map(|i| {
                let slice =
                    &scenario.jobs[i * scenario.slots_per_node..(i + 1) * scenario.slots_per_node];
                ClusterNode::new(scenario, i, slice, catalog)
            })
            .collect();
        let balancer = scenario.balancer.build(
            scenario.nodes,
            pliant_telemetry::rng::derive_seed(scenario.seed, 0xBA_1A_4C_E0),
        );
        let scheduler = BatchScheduler::new(
            scenario.scheduler,
            scenario.jobs[initial..].iter().copied(),
            initial,
        );
        Self {
            scenario: scenario.clone(),
            catalog: catalog.clone(),
            nodes,
            balancer,
            scheduler,
            time_s: 0.0,
            intervals: 0,
        }
    }

    /// The scenario the fleet was built from.
    pub fn scenario(&self) -> &ClusterScenario {
        &self.scenario
    }

    /// Fleet size.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current experiment time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Decision intervals advanced so far.
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// Job-queue statistics so far.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler.stats()
    }

    /// Jobs still waiting in the queue.
    pub fn pending_jobs(&self) -> usize {
        self.scheduler.pending()
    }

    /// The current snapshots of every node, in node order.
    pub fn snapshots(&self) -> Vec<NodeSnapshot> {
        self.nodes.iter().map(ClusterNode::snapshot).collect()
    }

    /// Inaccuracies of every job completed on node `index` so far, in percent.
    pub fn node_completed_inaccuracies(&self, index: usize) -> &[f64] {
        self.nodes[index].completed_inaccuracy_pct()
    }

    /// Advances the fleet one decision interval on the calling thread.
    pub fn advance(&mut self) -> ClusterInterval {
        self.advance_threads(1)
    }

    /// Advances the fleet one decision interval, fanning the independent node updates
    /// out over up to `threads` scoped worker threads (`0` = one per available core).
    /// The result is byte-identical to [`Self::advance`]: parallelism changes
    /// wall-clock time, never output.
    pub fn advance_threads(&mut self, threads: usize) -> ClusterInterval {
        let n = self.nodes.len();
        let dt = self.scenario.decision_interval_s;

        // 1. Sample the fleet's load for this interval.
        let avg_offered_load = self.scenario.effective_load_profile().load_at(self.time_s);
        let total_offered_load = avg_offered_load * n as f64;

        // 2. Place queued jobs into slots freed by the previous interval. Snapshots are
        //    refreshed after every placement so one node does not soak up the whole
        //    queue just because it was chosen first.
        let mut jobs_placed = 0usize;
        loop {
            let snapshots = self.snapshots();
            let Some((node, app)) = self.scheduler.pop_placement(&snapshots) else {
                break;
            };
            let profile = self
                .catalog
                .profile(app)
                .unwrap_or_else(|| panic!("{app} missing from catalog"))
                .clone();
            self.nodes[node]
                .place_job(&profile)
                .expect("scheduler only places onto nodes with free slots");
            jobs_placed += 1;
        }

        // 3. Split the offered load across nodes.
        let snapshots = self.snapshots();
        let assigned = self.balancer.split(total_offered_load, &snapshots);

        // 4. Advance every node independently.
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .clamp(1, n);
        let node_intervals: Vec<NodeInterval> = if workers == 1 {
            self.nodes
                .iter_mut()
                .zip(&assigned)
                .map(|(node, &load)| node.step(load))
                .collect()
        } else {
            // The first chunk runs on the calling thread (one fewer spawn per
            // interval); the rest fan out over scoped workers. Results are stitched
            // back together in node order, so the output is independent of the worker
            // count.
            let chunk = n.div_ceil(workers);
            let mut out: Vec<NodeInterval> = Vec::with_capacity(n);
            std::thread::scope(|scope| {
                let mut chunks = self.nodes.chunks_mut(chunk).zip(assigned.chunks(chunk));
                let first = chunks.next().expect("fleet is non-empty");
                let mut handles = Vec::with_capacity(workers - 1);
                for (node_chunk, load_chunk) in chunks {
                    handles.push(scope.spawn(move || {
                        node_chunk
                            .iter_mut()
                            .zip(load_chunk)
                            .map(|(node, &load)| node.step(load))
                            .collect::<Vec<NodeInterval>>()
                    }));
                }
                out.extend(
                    first
                        .0
                        .iter_mut()
                        .zip(first.1)
                        .map(|(node, &load)| node.step(load)),
                );
                for handle in handles {
                    match handle.join() {
                        Ok(chunk_results) => out.extend(chunk_results),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
            out
        };

        let completions: usize = node_intervals.iter().map(|ni| ni.jobs_completed).sum();
        self.scheduler.record_completions(completions);
        self.time_s += dt;
        self.intervals += 1;

        ClusterInterval {
            time_s: self.time_s,
            avg_offered_load,
            total_offered_load,
            jobs_placed,
            nodes: node_intervals,
        }
    }
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("nodes", &self.nodes.len())
            .field("time_s", &self.time_s)
            .field("pending_jobs", &self.scheduler.pending())
            .finish_non_exhaustive()
    }
}
