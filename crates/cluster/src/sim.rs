//! The fleet simulator: N nodes coupled by a load balancer and a batch scheduler.
//!
//! A [`ClusterSim`] advances the whole fleet one decision interval at a time:
//!
//! 1. the per-node-average load profile is sampled and scaled to the fleet's total
//!    offered load;
//! 2. the batch scheduler places queued jobs into slots freed by jobs that completed in
//!    the previous interval;
//! 3. the [`LoadBalancer`] splits the total load into
//!    per-node assignments (using the previous interval's node snapshots);
//! 4. every node advances independently — its simulator, monitor, policy, and actuator
//!    run the exact single-node loop.
//!
//! Step 4 is embarrassingly parallel: nodes share no state within an interval, and all
//! cross-node decisions (balancing, placement) happen between intervals on the
//! coordinating thread. [`ClusterSim::advance_threads`] therefore produces results
//! byte-identical to [`ClusterSim::advance`] for any worker count.
//!
//! # Population vs instances
//!
//! The scenario describes a *population* of logical nodes
//! (see [`NodePopulation`]); what the simulator steps are *instances*. Under
//! [`FleetApproximation::Exact`](crate::scenario::FleetApproximation::Exact) the two
//! coincide — one instance per logical node, byte-identical to the pre-population
//! simulator. Under
//! [`FleetApproximation::Clustered`](crate::scenario::FleetApproximation::Clustered)
//! each instance is a representative standing for
//! `replicas` interchangeable logical nodes: the balancer splits the *logical* total
//! load over representatives (weighted, per-replica), the scheduler pops replica-sized
//! job batches, the autoscaler parks and drains whole replica blocks, and every
//! per-node statistic a representative produces is replicated by its weight
//! node-side. Interval cost then scales with the number of instances while the
//! reported fleet stays at its logical size.

use pliant_approx::catalog::{AppId, Catalog};
use pliant_telemetry::obs::{
    Event, EventLog, ObsBuffer, ObsLevel, PowerStateKind, ScaleTrigger, DEFAULT_FLEET_CAPACITY,
};
use pliant_telemetry::rng::{derive_seed, rng_from_state_words, rng_state_words, seeded_rng};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::autoscaler::{Autoscaler, AutoscalerSnapshot, NodePowerState};
use crate::balancer::LoadBalancer;
use crate::faults::{self, FaultKind, FaultState, FaultStateSnapshot, FaultStats, NodeHealth};
use crate::node::{ClusterNode, NodeCheckpoint, NodeInterval, NodeSnapshot};
use crate::pool::NodeWorkerPool;
use crate::population::NodePopulation;
use crate::scenario::ClusterScenario;
use crate::scheduler::{BatchScheduler, SchedulerStats};
use crate::topology::Topology;

/// Seed-derivation stream for the rack-placement sampling RNG (racked topologies
/// only; flat fleets never create the stream, let alone draw from it).
const RACK_SAMPLE_STREAM: u64 = 0x7090_0001;

/// Everything the fleet produced during one decision interval.
#[derive(Debug, Clone)]
pub struct ClusterInterval {
    /// Experiment time at the end of the interval, in seconds.
    pub time_s: f64,
    /// The sampled per-node-average offered load for the interval.
    pub avg_offered_load: f64,
    /// Total offered load for the interval, in node-saturation units
    /// (`avg_offered_load × logical nodes`).
    pub total_offered_load: f64,
    /// Logical nodes that served traffic this interval (the autoscaler's active set;
    /// the full fleet when no autoscaler is configured).
    pub active_nodes: usize,
    /// Jobs placed onto nodes at the start of the interval (logical count: a clustered
    /// batch of `w` jobs collapsed onto one representative counts `w`).
    pub jobs_placed: usize,
    /// Per-instance results, in instance order (one entry per logical node in exact
    /// mode; each entry carries its replica weight).
    pub nodes: Vec<NodeInterval>,
}

/// The fleet simulator; see the module docs.
pub struct ClusterSim {
    scenario: ClusterScenario,
    catalog: Catalog,
    /// The logical fleet the instances below stand for.
    population: NodePopulation,
    /// Simulated instances; a slot is `None` only transiently while its node is out on
    /// a worker thread (or permanently after that worker panicked mid-step, in which
    /// case the panic has already been re-raised and the simulator is poisoned).
    nodes: Vec<Option<ClusterNode>>,
    /// Logical nodes each instance stands for (all ones in exact mode).
    replica_weights: Vec<usize>,
    /// Whether the clustered approximation is active (instances ≠ logical nodes).
    clustered: bool,
    balancer: LoadBalancer,
    scheduler: BatchScheduler,
    /// Energy-aware sizing of the active node set (`None` = every node always serves).
    autoscaler: Option<Autoscaler>,
    /// Fault injection: the compiled schedule and per-instance health (`None` when the
    /// scenario carries no fault profile — fault-free runs take exactly the historical
    /// code paths, byte-for-byte).
    faults: Option<FaultState>,
    time_s: f64,
    intervals: usize,
    /// Persistent worker pool for parallel node updates, created on first parallel
    /// advance and kept for the simulator's lifetime (see [`NodeWorkerPool`]).
    pool: Option<NodeWorkerPool>,
    /// Scratch buffer of node snapshots, reused across placement/balancing rounds.
    snapshot_scratch: Vec<NodeSnapshot>,
    /// Scratch buffer of pooled step results, reused across intervals.
    result_scratch: Vec<Option<NodeInterval>>,
    /// Scratch buffer of per-instance load assignments (clustered mode only; the exact
    /// path keeps the historical allocating balancer calls for byte-identity).
    assigned_scratch: Vec<f64>,
    /// Scratch buffer of per-instance active flags (clustered mode and fault-aware
    /// exact mode).
    active_scratch: Vec<bool>,
    /// Scratch buffer of `(app, weight)` jobs aborted off a crashed node, reused
    /// across crash events.
    requeue_scratch: Vec<(AppId, usize)>,
    /// Coordinator-side event ring (source 0): fleet shape, placements, dispatch,
    /// autoscaler transitions, and per-interval rollups. Disabled — the null sink —
    /// unless the fleet was built with [`Self::with_obs`].
    fleet_obs: ObsBuffer,
    /// Autoscaler power states at the start of the previous plan, used to diff out
    /// [`Event::AutoscalerTransition`]s (traced runs only).
    power_state_scratch: Vec<NodePowerState>,
    /// The resolved physical topology: racks as shared power budgets and failure
    /// domains. A flat scenario resolves to one unbudgeted rack holding the whole
    /// fleet and takes the historical code paths byte-for-byte.
    topology: Topology,
    /// Rack of each instance, via its seed member (replica groups never span racks —
    /// see [`NodeGroup::rack`](crate::population::NodeGroup::rack) — so the seed
    /// member's rack is every member's rack).
    instance_racks: Vec<usize>,
    /// Sampling stream for rack-level online placement (`None` on a flat topology,
    /// which never samples).
    rack_rng: Option<SmallRng>,
    /// Per-rack measured power draw over the previous interval, in watts (empty on a
    /// flat topology).
    rack_power_w: Vec<f64>,
    /// Scratch: per-rack admission flags for the current interval (power caps).
    rack_admissible: Vec<bool>,
    /// Scratch: candidate racks for one placement sampling round.
    rack_candidates: Vec<usize>,
    /// Scratch: instances parked by the mid-interval consolidation pass.
    park_scratch: Vec<usize>,
}

/// Converts an autoscaler power state into its telemetry mirror.
fn power_state_kind(state: NodePowerState) -> PowerStateKind {
    match state {
        NodePowerState::Active => PowerStateKind::Active,
        NodePowerState::Draining => PowerStateKind::Draining,
        NodePowerState::Parked => PowerStateKind::Parked,
    }
}

impl ClusterSim {
    /// Builds the fleet described by `scenario`, filling every node's slots with the
    /// first `nodes × slots_per_node` jobs (node-major order) and queueing the rest.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`ClusterScenario::validate`] or names an
    /// application missing from the catalog.
    pub fn new(scenario: &ClusterScenario, catalog: &Catalog) -> Self {
        Self::with_obs(scenario, catalog, ObsLevel::Off)
    }

    /// Like [`Self::new`], but with the tracing subsystem switched on at `level`:
    /// every node records its decision events and the coordinator records fleet-level
    /// events (placements, dispatch, autoscaler transitions, interval rollups).
    /// Retrieve the merged stream with [`Self::take_event_log`] after the run.
    /// Tracing observes decisions without altering them — the simulation is
    /// byte-identical at every level.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`ClusterScenario::validate`] or names an
    /// application missing from the catalog.
    pub fn with_obs(scenario: &ClusterScenario, catalog: &Catalog, level: ObsLevel) -> Self {
        if let Err(e) = scenario.validate() {
            panic!("invalid cluster scenario `{}`: {e}", scenario.describe());
        }
        let initial = scenario.initial_job_count();
        let population = NodePopulation::from_scenario(scenario);
        let clustered = scenario.approximation.is_clustered();
        let topology = Topology::resolve(&scenario.topology, scenario.nodes);
        let fault_schedule = scenario
            .fault_profile
            .as_ref()
            .filter(|profile| !profile.is_empty())
            .map(|profile| {
                faults::compile_schedule(
                    profile,
                    scenario.seed,
                    &population,
                    &topology,
                    scenario.max_intervals(),
                )
            });
        // Faulted logical nodes must be simulated exactly: carve them out of their
        // replica groups so a crash takes down one node, not every node it stood for.
        let plans = match &fault_schedule {
            Some(schedule) if clustered => population.plan_instances_isolating(
                &scenario.approximation,
                &faults::faulted_logical_nodes(schedule, population.total_nodes()),
            ),
            _ => population.plan_instances(&scenario.approximation),
        };
        // In exact mode the plans are one weight-1 instance per logical node in node
        // order, so this loop is the historical per-node construction verbatim.
        let nodes: Vec<Option<ClusterNode>> = plans
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                let slice = &scenario.jobs[plan.seed_member * scenario.slots_per_node
                    ..(plan.seed_member + 1) * scenario.slots_per_node];
                let mut node = ClusterNode::representative(
                    scenario,
                    i,
                    plan.seed_member,
                    plan.replicas,
                    slice,
                    catalog,
                );
                if level != ObsLevel::Off {
                    node.enable_obs(level);
                }
                Some(node)
            })
            .collect();
        let mut fleet_obs = ObsBuffer::new(level, 0, 1, DEFAULT_FLEET_CAPACITY);
        if fleet_obs.enabled() {
            let qos_target_s = nodes[0].as_ref().map_or(0.0, |n| n.snapshot().qos_target_s);
            fleet_obs.emit(
                0,
                0.0,
                Event::FleetStart {
                    nodes: population.total_nodes() as u32,
                    instances: plans.len() as u32,
                    slots_per_node: scenario.slots_per_node as u32,
                    qos_target_s,
                },
            );
            if clustered {
                for group in 0..population.groups().len() {
                    let representatives = plans.iter().filter(|p| p.group == group).count() as u32;
                    let replicas: usize = plans
                        .iter()
                        .filter(|p| p.group == group)
                        .map(|p| p.replicas)
                        .sum();
                    fleet_obs.emit(
                        0,
                        0.0,
                        Event::ApproximationPlan {
                            group: group as u32,
                            representatives,
                            replicas: replicas as u32,
                        },
                    );
                }
            }
        }
        let replica_weights: Vec<usize> = plans.iter().map(|p| p.replicas).collect();
        let instance_racks: Vec<usize> = plans
            .iter()
            .map(|p| topology.rack_of(p.seed_member))
            .collect();
        let rack_rng = (!topology.is_flat())
            .then(|| seeded_rng(derive_seed(scenario.seed, RACK_SAMPLE_STREAM)));
        let rack_power_w = if topology.is_flat() {
            Vec::new()
        } else {
            vec![0.0; topology.rack_count()]
        };
        let balancer = scenario.balancer.build(
            nodes.len(),
            pliant_telemetry::rng::derive_seed(scenario.seed, 0xBA_1A_4C_E0),
        );
        let scheduler = BatchScheduler::new(
            scenario.scheduler,
            scenario.jobs[initial..].iter().copied(),
            initial,
        );
        let autoscaler = scenario
            .autoscaler
            .map(|config| Autoscaler::for_instances(config, replica_weights.clone()));
        let faults = fault_schedule
            .map(|schedule| FaultState::new(schedule, population.total_nodes(), &plans));
        Self {
            scenario: scenario.clone(),
            catalog: catalog.clone(),
            population,
            nodes,
            replica_weights,
            clustered,
            balancer,
            scheduler,
            autoscaler,
            faults,
            time_s: 0.0,
            intervals: 0,
            pool: None,
            snapshot_scratch: Vec::new(),
            result_scratch: Vec::new(),
            assigned_scratch: Vec::new(),
            active_scratch: Vec::new(),
            requeue_scratch: Vec::new(),
            fleet_obs,
            power_state_scratch: Vec::new(),
            topology,
            instance_racks,
            rack_rng,
            rack_power_w,
            rack_admissible: Vec::new(),
            rack_candidates: Vec::new(),
            park_scratch: Vec::new(),
        }
    }

    /// The resolved physical topology the fleet runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-rack measured power draw over the previous interval, in watts. Empty on a
    /// flat topology, which does not track rack power.
    pub fn rack_power_w(&self) -> &[f64] {
        &self.rack_power_w
    }

    /// Takes the merged decision-event stream of the run so far: the coordinator's
    /// events followed by every node's, interleaved chronologically (stable per-interval
    /// order: fleet first, then nodes in instance order). Buffers are drained, so this
    /// is called once, after the run. Returns an empty log on an untraced fleet.
    pub fn take_event_log(&mut self) -> EventLog {
        let level = self.fleet_obs.level();
        let fleet = std::mem::replace(&mut self.fleet_obs, ObsBuffer::disabled());
        let buffers = std::iter::once(fleet).chain(self.nodes.iter_mut().map(|slot| {
            slot.as_mut()
                // pliant-lint: allow(panic-hygiene): slots are full between intervals;
                // the log is taken after the run, never mid-step.
                .expect("node slots are only empty while a step is in flight")
                .take_obs_buffer()
        }));
        EventLog::merge(level, buffers)
    }

    /// The scenario the fleet was built from.
    pub fn scenario(&self) -> &ClusterScenario {
        &self.scenario
    }

    /// Logical fleet size (the number of nodes the scenario describes, regardless of
    /// how many instances the approximation simulates).
    pub fn node_count(&self) -> usize {
        self.population.total_nodes()
    }

    /// Simulated instances (equals [`Self::node_count`] in exact mode; the number of
    /// cluster representatives under
    /// [`FleetApproximation::Clustered`](crate::scenario::FleetApproximation::Clustered)).
    pub fn instance_count(&self) -> usize {
        self.nodes.len()
    }

    /// The logical node population the fleet was grouped from.
    pub fn population(&self) -> &NodePopulation {
        &self.population
    }

    /// Logical nodes each instance stands for, in instance order (all ones in exact
    /// mode).
    pub fn replica_weights(&self) -> &[usize] {
        &self.replica_weights
    }

    /// Current experiment time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Decision intervals advanced so far.
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// Job-queue statistics so far.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler.stats()
    }

    /// Jobs still waiting in the queue.
    pub fn pending_jobs(&self) -> usize {
        self.scheduler.pending()
    }

    /// Per-node power states, when an autoscaler is configured.
    pub fn node_power_states(&self) -> Option<&[NodePowerState]> {
        self.autoscaler.as_ref().map(|a| a.states())
    }

    /// Per-instance fault health, when the scenario carries a (non-empty) fault
    /// profile.
    pub fn node_health(&self) -> Option<&[NodeHealth]> {
        self.faults.as_ref().map(|f| f.health.as_slice())
    }

    /// Fault-injection outcome counters so far, when the scenario carries a
    /// (non-empty) fault profile. Availability is computed over the logical fleet and
    /// the intervals advanced so far.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults
            .as_ref()
            .map(|f| f.stats(self.population.total_nodes(), self.intervals))
    }

    /// Logical nodes currently serving traffic (the whole fleet without an
    /// autoscaler). In clustered mode a whole replica block counts at once, since the
    /// autoscaler parks and drains instances atomically.
    pub fn active_nodes(&self) -> usize {
        self.autoscaler
            .as_ref()
            .map_or(self.population.total_nodes(), |a| a.active_replicas())
    }

    /// The current snapshots of every instance, in instance order.
    pub fn snapshots(&self) -> Vec<NodeSnapshot> {
        self.nodes
            .iter()
            .map(|n| Self::expect_node(n).snapshot())
            .collect()
    }

    /// Immutable access to instance `index`.
    pub fn node(&self, index: usize) -> &ClusterNode {
        Self::expect_node(&self.nodes[index])
    }

    /// Inaccuracies of every job completed on node `index` so far, in percent.
    pub fn node_completed_inaccuracies(&self, index: usize) -> &[f64] {
        self.node(index).completed_inaccuracy_pct()
    }

    fn expect_node(slot: &Option<ClusterNode>) -> &ClusterNode {
        slot.as_ref()
            // pliant-lint: allow(panic-hygiene): the worker pool refills every slot
            // before step() returns; observers never run while a step is in flight.
            .expect("node slots are only empty while a step is in flight")
    }

    /// Scores a candidate rack for online placement: fractional power headroom
    /// (1.0 when unbudgeted) plus the replica-weighted mean QoS slack of its member
    /// instances. Returns `(score, headroom_w, mean_slack)`; the headroom in watts is
    /// reported as 0.0 for unbudgeted racks, which have no meaningful wattage.
    fn rack_score(&self, rack: usize, snapshots: &[NodeSnapshot]) -> (f64, f64, f64) {
        let (headroom_frac, headroom_w) = match self.topology.power_budget_w(rack) {
            Some(budget) if budget > 0.0 => {
                let headroom = (budget - self.rack_power_w[rack]).max(0.0);
                ((headroom / budget).min(1.0), headroom)
            }
            _ => (1.0, 0.0),
        };
        let mut slack_sum = 0.0;
        let mut members = 0usize;
        for snap in snapshots {
            if self.instance_racks[snap.index] != rack {
                continue;
            }
            let weight = self.replica_weights[snap.index];
            slack_sum += snap.slack_fraction() * weight as f64;
            members += weight;
        }
        let mean_slack = if members > 0 {
            slack_sum / members as f64
        } else {
            0.0
        };
        (headroom_frac + mean_slack, headroom_w, mean_slack)
    }

    /// Advances the fleet one decision interval on the calling thread.
    pub fn advance(&mut self) -> ClusterInterval {
        self.advance_threads(1)
    }

    /// Hands a fully consumed interval back to the fleet so each node recycles its
    /// observation's heap buffers into the next step (the fleet analogue of
    /// [`pliant_sim::colocation::ColocationSim::advance_reusing`]). Drivers that read
    /// an interval and move on — like the cluster engine's aggregation loop — call this
    /// to run the whole fleet without per-node-interval allocations; callers that keep
    /// the interval (archival, external analysis) simply never recycle it.
    pub fn recycle_interval(&mut self, interval: ClusterInterval) {
        for node_interval in interval.nodes {
            if let Some(node) = self.nodes[node_interval.node].as_mut() {
                node.recycle_observation(node_interval.observation);
            }
        }
    }

    /// Advances the fleet one decision interval, fanning the independent node updates
    /// out over a persistent pool of up to `threads` worker threads (`0` = one per
    /// available core). The pool is created on the first parallel call and reused for
    /// every subsequent interval — per-interval scoped spawns cost thread creation
    /// hundreds of times per run. The result is byte-identical to [`Self::advance`]:
    /// parallelism changes wall-clock time, never output.
    pub fn advance_threads(&mut self, threads: usize) -> ClusterInterval {
        let n = self.nodes.len();
        let dt = self.scenario.decision_interval_s;
        let racked = !self.topology.is_flat();

        // 0. Fault injection: recover nodes whose outage/degradation expired, then
        //    apply every fault scheduled for this interval (a zero-allocation cursor
        //    walk over the pre-compiled schedule; see [`crate::faults`]). Runs before
        //    anything else so placement, balancing, and the autoscaler all see this
        //    interval's health.
        if let Some(faults) = self.faults.as_mut() {
            let interval = self.intervals as u64;
            let obs_interval = self.intervals as u32;
            // A rack outage lands as per-member crashes (compiled into the schedule),
            // but the cause is a fleet-level event: record each power-domain failure
            // the interval it strikes, before its member crashes are applied.
            if self.fleet_obs.enabled() {
                if let Some(profile) = &self.scenario.fault_profile {
                    for outage in &profile.rack_outages {
                        if outage.at_interval == interval {
                            self.fleet_obs.emit(
                                obs_interval,
                                self.time_s,
                                Event::RackOutage {
                                    rack: outage.rack as u32,
                                    nodes: self.topology.racks()[outage.rack].members.len() as u32,
                                    duration_intervals: outage.duration_intervals as u32,
                                },
                            );
                        }
                    }
                }
            }
            // Recoveries first, so a node can be struck again the interval it returns.
            for (i, health) in faults.health.iter_mut().enumerate() {
                match *health {
                    NodeHealth::Down { until } if until <= interval => {
                        *health = NodeHealth::Up;
                        self.nodes[i]
                            .as_mut()
                            // pliant-lint: allow(panic-hygiene): slots are full here —
                            // the pool hands every node back before a step returns.
                            .expect("node slots are only empty while a step is in flight")
                            // The autoscaler pass below re-parks it if it planned so.
                            .set_parked(false);
                        if self.fleet_obs.enabled() {
                            self.fleet_obs.emit(
                                obs_interval,
                                self.time_s,
                                Event::NodeRecovered { node: i as u32 },
                            );
                        }
                    }
                    NodeHealth::Degraded { until, .. } if until <= interval => {
                        *health = NodeHealth::Up;
                        self.nodes[i]
                            .as_mut()
                            // pliant-lint: allow(panic-hygiene): slots are full here —
                            // the pool hands every node back before a step returns.
                            .expect("node slots are only empty while a step is in flight")
                            .set_degrade(1.0);
                        if self.fleet_obs.enabled() {
                            self.fleet_obs.emit(
                                obs_interval,
                                self.time_s,
                                Event::NodeRecovered { node: i as u32 },
                            );
                        }
                    }
                    _ => {}
                }
            }
            // Apply the events scheduled for this interval. Events addressing a
            // logical node with no exact instance (impossible by construction — the
            // isolating planner carves every faulted node out) or a node that is not
            // healthy (a crash cannot crash an already-down node) are dropped.
            while faults.cursor < faults.schedule.len()
                && faults.schedule[faults.cursor].interval == interval
            {
                let event = faults.schedule[faults.cursor];
                faults.cursor += 1;
                let Some(instance) = faults.instance_of[event.node] else {
                    continue;
                };
                if faults.health[instance] != NodeHealth::Up {
                    continue;
                }
                match event.kind {
                    FaultKind::Crash => {
                        faults.health[instance] = NodeHealth::Down {
                            until: interval + event.duration,
                        };
                        faults.crashes += 1;
                        if self.fleet_obs.enabled() {
                            self.fleet_obs.emit(
                                obs_interval,
                                self.time_s,
                                Event::NodeFailed {
                                    node: instance as u32,
                                    outage_intervals: event.duration as u32,
                                },
                            );
                        }
                        // Unfinished batch jobs die with the node; hand them back to
                        // the scheduler queue. (The node's slots keep simulating the
                        // abandoned work and free up when it would have finished —
                        // the requeued copy may complete elsewhere first.)
                        self.requeue_scratch.clear();
                        self.nodes[instance]
                            .as_mut()
                            // pliant-lint: allow(panic-hygiene): slots are full here —
                            // the pool hands every node back before a step returns.
                            .expect("node slots are only empty while a step is in flight")
                            .abort_unfinished_jobs(&mut self.requeue_scratch);
                        for &(app, weight) in &self.requeue_scratch {
                            self.scheduler.requeue(app, weight);
                            faults.jobs_requeued += weight as u64;
                            if self.fleet_obs.enabled() {
                                let job_code = AppId::all()
                                    .iter()
                                    .position(|a| *a == app)
                                    .map_or(u32::MAX, |p| p as u32);
                                self.fleet_obs.emit(
                                    obs_interval,
                                    self.time_s,
                                    Event::JobRequeued {
                                        node: instance as u32,
                                        job_code,
                                        weight: weight as u32,
                                    },
                                );
                            }
                        }
                    }
                    FaultKind::Degrade { factor } => {
                        faults.health[instance] = NodeHealth::Degraded {
                            until: interval + event.duration,
                            factor,
                        };
                        faults.degradations += 1;
                        self.nodes[instance]
                            .as_mut()
                            // pliant-lint: allow(panic-hygiene): slots are full here —
                            // the pool hands every node back before a step returns.
                            .expect("node slots are only empty while a step is in flight")
                            .set_degrade(factor);
                        if self.fleet_obs.enabled() {
                            self.fleet_obs.emit(
                                obs_interval,
                                self.time_s,
                                Event::NodeDegraded {
                                    node: instance as u32,
                                    factor,
                                    intervals: event.duration as u32,
                                },
                            );
                        }
                    }
                }
            }
            // Replica-weighted availability accounting for the interval about to run.
            for (i, health) in faults.health.iter().enumerate() {
                match health {
                    NodeHealth::Down { .. } => {
                        faults.down_node_intervals += self.replica_weights[i] as u64;
                    }
                    NodeHealth::Degraded { .. } => {
                        faults.degraded_node_intervals += self.replica_weights[i] as u64;
                    }
                    NodeHealth::Up => {}
                }
            }
        }

        // 1. Sample the fleet's load for this interval. The total scales with the
        //    *logical* fleet: approximating with fewer instances must not shrink the
        //    offered load (in exact mode the two counts coincide).
        let avg_offered_load = self.scenario.effective_load_profile().load_at(self.time_s);
        let total_offered_load = avg_offered_load * self.population.total_nodes() as f64;

        // 1b. Size the active set for the interval: the autoscaler plans from the
        //     previous interval's snapshots (park fully-drained nodes, then at most one
        //     membership change), and parked nodes are switched to suspend billing
        //     before they are stepped.
        if let Some(scaler) = &mut self.autoscaler {
            let mut snapshots = std::mem::take(&mut self.snapshot_scratch);
            snapshots.clear();
            snapshots.extend(self.nodes.iter().map(|s| Self::expect_node(s).snapshot()));
            if self.fleet_obs.enabled() {
                self.power_state_scratch.clear();
                self.power_state_scratch.extend_from_slice(scaler.states());
            }
            if self.clustered {
                scaler.plan_grouped(total_offered_load, &snapshots, self.scenario.slots_per_node);
            } else {
                scaler.plan(total_offered_load, &snapshots, self.scenario.slots_per_node);
            }
            if self.fleet_obs.enabled() {
                // Diff the plan's state changes into transition events. The trigger is
                // recovered from the edge itself: reactivation = scale-out, a fresh
                // drain = scale-in, draining → parked = the drain completing.
                let interval = self.intervals as u32;
                for (i, (&before, &after)) in self
                    .power_state_scratch
                    .iter()
                    .zip(scaler.states())
                    .enumerate()
                {
                    if before == after {
                        continue;
                    }
                    let trigger = match after {
                        NodePowerState::Active => ScaleTrigger::ScaleOut,
                        NodePowerState::Draining => ScaleTrigger::ScaleIn,
                        NodePowerState::Parked => ScaleTrigger::DrainComplete,
                    };
                    self.fleet_obs.emit(
                        interval,
                        self.time_s,
                        Event::AutoscalerTransition {
                            node: i as u32,
                            from: power_state_kind(before),
                            to: power_state_kind(after),
                            trigger,
                        },
                    );
                }
            }
            self.snapshot_scratch = snapshots;
            for (slot, state) in self.nodes.iter_mut().zip(scaler.states()) {
                slot.as_mut()
                    // pliant-lint: allow(panic-hygiene): slots are full here — the
                    // pool hands every node back before the previous step returns.
                    .expect("node slots are only empty while a step is in flight")
                    .set_parked(*state == NodePowerState::Parked);
            }
        }

        // 1c. Crashed nodes stay suspended no matter what the autoscaler planned: a
        //     down node bills the parked draw until it recovers (the recovery pass
        //     above un-parks it before this runs). Modelling simplification: an outage
        //     is billed like a park, not as zero draw.
        if let Some(faults) = &self.faults {
            for (slot, health) in self.nodes.iter_mut().zip(&faults.health) {
                if !health.is_serving() {
                    slot.as_mut()
                        // pliant-lint: allow(panic-hygiene): slots are full here — the
                        // pool hands every node back before the previous step returns.
                        .expect("node slots are only empty while a step is in flight")
                        .set_parked(true);
                }
            }
        }

        // 1d. Rack power admission: a rack whose measured draw reached its budget over
        //     the previous interval admits no new work this interval — neither queue
        //     placements nor migration arrivals. Flat fleets have a single unbudgeted
        //     rack and skip the scan entirely.
        if racked {
            self.rack_admissible.clear();
            for rack in 0..self.topology.rack_count() {
                let admissible = self
                    .topology
                    .power_budget_w(rack)
                    .is_none_or(|budget| self.rack_power_w[rack] < budget);
                self.rack_admissible.push(admissible);
                if !admissible && self.fleet_obs.enabled() {
                    self.fleet_obs.emit(
                        self.intervals as u32,
                        self.time_s,
                        Event::RackPowerCapped {
                            rack: rack as u32,
                            power_w: self.rack_power_w[rack],
                            budget_w: self.topology.power_budget_w(rack).unwrap_or(0.0),
                        },
                    );
                }
            }
        }

        // 1e. Active consolidation: instead of waiting for a draining node's batch
        //     jobs to run to completion, migrate their in-flight state onto active
        //     nodes with free slots, then park every drain the migrations completed —
        //     in the same interval, so the node bills the parked draw from here on and
        //     the active-node trace never double-counts it. Deterministic by
        //     construction: sources scan in instance order, each job lands on the
        //     lowest-indexed admissible destination, and no RNG is drawn.
        if self
            .autoscaler
            .as_ref()
            .is_some_and(|a| a.config().consolidate)
        {
            let mut migrations = 0usize;
            for src in 0..n {
                let draining = self
                    .autoscaler
                    .as_ref()
                    .is_some_and(|a| a.states()[src] == NodePowerState::Draining);
                let serving = self
                    .faults
                    .as_ref()
                    .is_none_or(|f| f.health[src].is_serving());
                // A crashed drain has nothing live to move: the crash pass already
                // aborted (and requeued) its unfinished jobs.
                if !draining || !serving {
                    continue;
                }
                loop {
                    // Pick the destination *before* extracting: extraction latches the
                    // source slot irreversibly, so a job must never leave its node
                    // without a confirmed landing spot.
                    let dst = (0..n).find(|&d| {
                        d != src
                            && self
                                .autoscaler
                                .as_ref()
                                .is_some_and(|a| a.states()[d] == NodePowerState::Active)
                            && self
                                .faults
                                .as_ref()
                                .is_none_or(|f| f.health[d].is_serving())
                            && (!racked || self.rack_admissible[self.instance_racks[d]])
                            && Self::expect_node(&self.nodes[d]).free_slots() > 0
                    });
                    let Some(dst) = dst else { break };
                    let Some((state, weight)) = self.nodes[src]
                        .as_mut()
                        // pliant-lint: allow(panic-hygiene): slots are full here — the
                        // pool hands every node back before the previous step returns.
                        .expect("node slots are only empty while a step is in flight")
                        .extract_job()
                    else {
                        break;
                    };
                    let implanted = self.nodes[dst]
                        .as_mut()
                        // pliant-lint: allow(panic-hygiene): slots are full here — the
                        // pool hands every node back before the previous step returns.
                        .expect("node slots are only empty while a step is in flight")
                        .implant_job(state, weight);
                    assert!(
                        implanted.is_some(),
                        "destination advertised a free slot but refused the implant"
                    );
                    migrations += 1;
                    if self.fleet_obs.enabled() {
                        self.fleet_obs.emit(
                            self.intervals as u32,
                            self.time_s,
                            Event::JobMigrated {
                                node: src as u32,
                                to_node: dst as u32,
                                weight: weight as u32,
                            },
                        );
                    }
                }
            }
            if migrations > 0 {
                if let Some(scaler) = &mut self.autoscaler {
                    let mut snapshots = std::mem::take(&mut self.snapshot_scratch);
                    snapshots.clear();
                    snapshots.extend(self.nodes.iter().map(|s| Self::expect_node(s).snapshot()));
                    let mut parked = std::mem::take(&mut self.park_scratch);
                    parked.clear();
                    scaler.park_fully_drained(
                        &snapshots,
                        self.scenario.slots_per_node,
                        &mut parked,
                    );
                    for &i in &parked {
                        self.nodes[i]
                            .as_mut()
                            // pliant-lint: allow(panic-hygiene): slots are full here —
                            // the pool hands every node back before a step returns.
                            .expect("node slots are only empty while a step is in flight")
                            .set_parked(true);
                        if self.fleet_obs.enabled() {
                            self.fleet_obs.emit(
                                self.intervals as u32,
                                self.time_s,
                                Event::AutoscalerTransition {
                                    node: i as u32,
                                    from: PowerStateKind::Draining,
                                    to: PowerStateKind::Parked,
                                    trigger: ScaleTrigger::DrainComplete,
                                },
                            );
                        }
                    }
                    self.park_scratch = parked;
                    self.snapshot_scratch = snapshots;
                }
            }
        }

        // 2. Place queued jobs into slots freed by the previous interval. Snapshots are
        //    refreshed after every placement so one node does not soak up the whole
        //    queue just because it was chosen first. Nodes outside the active set
        //    (draining or parked) advertise zero free slots: the autoscaler is draining
        //    them, so handing them fresh jobs would keep them from ever parking.
        let mut jobs_placed = 0usize;
        loop {
            let mut snapshots = std::mem::take(&mut self.snapshot_scratch);
            snapshots.clear();
            snapshots.extend(self.nodes.iter().map(|s| Self::expect_node(s).snapshot()));
            if let Some(scaler) = &self.autoscaler {
                for (snap, state) in snapshots.iter_mut().zip(scaler.states()) {
                    if *state != NodePowerState::Active {
                        snap.free_slots = 0;
                    }
                }
            }
            if let Some(faults) = &self.faults {
                // Crashed nodes advertise no free slots: the scheduler must not hand
                // fresh jobs to a node that cannot run them.
                for (snap, health) in snapshots.iter_mut().zip(&faults.health) {
                    if !health.is_serving() {
                        snap.free_slots = 0;
                    }
                }
            }
            if racked {
                // Online rack placement: sample up to two admissible candidate racks
                // with free capacity, score each by fractional power headroom plus
                // mean QoS slack, and confine this placement to the winner (the
                // power-aware sampling of Microsoft's online rack placement; the job
                // queue itself is untouched). An empty queue or an empty candidate
                // set ends the round *before* any sampling draw, so RNG consumption
                // is a pure function of simulation state, never of tracing level.
                if self.scheduler.pending() == 0 {
                    self.snapshot_scratch = snapshots;
                    break;
                }
                self.rack_candidates.clear();
                for rack in 0..self.topology.rack_count() {
                    let has_free = snapshots
                        .iter()
                        .any(|s| self.instance_racks[s.index] == rack && s.free_slots > 0);
                    if self.rack_admissible[rack] && has_free {
                        self.rack_candidates.push(rack);
                    }
                }
                if self.rack_candidates.is_empty() {
                    self.snapshot_scratch = snapshots;
                    break;
                }
                let k = self.rack_candidates.len();
                let (first, second) = if k == 1 {
                    (0, 0)
                } else {
                    let rng = self
                        .rack_rng
                        .as_mut()
                        // pliant-lint: allow(panic-hygiene): racked fleets always
                        // construct the sampling stream; see `with_obs`.
                        .expect("racked fleets carry a rack-sampling stream");
                    let first = rng.gen_range(0..k);
                    let mut second = rng.gen_range(0..k - 1);
                    if second >= first {
                        second += 1;
                    }
                    (first, second)
                };
                let mut winner = self.rack_candidates[first];
                let mut best = self.rack_score(winner, &snapshots);
                if second != first {
                    let other = self.rack_candidates[second];
                    let score = self.rack_score(other, &snapshots);
                    match score.0.total_cmp(&best.0) {
                        std::cmp::Ordering::Greater => {
                            winner = other;
                            best = score;
                        }
                        std::cmp::Ordering::Equal if other < winner => {
                            winner = other;
                            best = score;
                        }
                        _ => {}
                    }
                }
                if self.fleet_obs.enabled() {
                    self.fleet_obs.emit(
                        self.intervals as u32,
                        self.time_s,
                        Event::RackPlacement {
                            rack: winner as u32,
                            candidates: if k == 1 { 1 } else { 2 },
                            power_headroom_w: best.1,
                            qos_slack: best.2,
                        },
                    );
                }
                for snap in snapshots.iter_mut() {
                    if self.instance_racks[snap.index] != winner {
                        snap.free_slots = 0;
                    }
                }
            }
            let placement = if self.clustered {
                self.scheduler
                    .pop_placement_grouped(&snapshots, &self.replica_weights)
            } else {
                self.scheduler
                    .pop_placement(&snapshots)
                    .map(|(node, app)| (node, app, 1))
            };
            self.snapshot_scratch = snapshots;
            let Some((node, app, weight)) = placement else {
                break;
            };
            let profile = self
                .catalog
                .profile(app)
                .unwrap_or_else(|| panic!("{app} missing from catalog"))
                .clone();
            self.nodes[node]
                .as_mut()
                // pliant-lint: allow(panic-hygiene): slots are full here — the pool
                // hands every node back before the previous step returns.
                .expect("node slots are only empty while a step is in flight")
                .place_job_weighted(&profile, weight)
                // pliant-lint: allow(panic-hygiene): the scheduler chose this node
                // from snapshots with `free_slots > 0` taken this same interval.
                .expect("scheduler only places onto nodes with free slots");
            jobs_placed += weight;
            if self.fleet_obs.enabled() {
                let job_code = AppId::all()
                    .iter()
                    .position(|a| *a == app)
                    .map_or(u32::MAX, |p| p as u32);
                self.fleet_obs.emit(
                    self.intervals as u32,
                    self.time_s,
                    Event::JobPlaced {
                        node: node as u32,
                        job_code,
                        weight: weight as u32,
                    },
                );
            }
        }

        // 3. Split the offered load across the serving nodes. The clustered path hands
        //    out *per-replica* loads over the weighted instances through reused scratch
        //    buffers; the exact path keeps the historical allocating calls verbatim so
        //    its output stays byte-identical.
        let mut snapshots = std::mem::take(&mut self.snapshot_scratch);
        snapshots.clear();
        snapshots.extend(self.nodes.iter().map(|s| Self::expect_node(s).snapshot()));
        let (assigned, active_nodes) = if self.clustered {
            let mut active = std::mem::take(&mut self.active_scratch);
            active.clear();
            match &self.autoscaler {
                Some(scaler) => {
                    active.extend(scaler.states().iter().map(|s| *s == NodePowerState::Active));
                }
                None => active.resize(n, true),
            }
            if let Some(faults) = &self.faults {
                // The balancer sheds dead nodes: traffic is split over the serving
                // set only (health ANDed into the autoscaler's active set).
                for (flag, health) in active.iter_mut().zip(&faults.health) {
                    if !health.is_serving() {
                        *flag = false;
                    }
                }
            }
            let mut out = std::mem::take(&mut self.assigned_scratch);
            self.balancer.split_grouped(
                total_offered_load,
                &snapshots,
                &self.replica_weights,
                &active,
                &mut out,
            );
            let serving = if self.faults.is_some() {
                active
                    .iter()
                    .zip(&self.replica_weights)
                    .filter(|(flag, _)| **flag)
                    .map(|(_, &weight)| weight)
                    .sum()
            } else {
                self.autoscaler
                    .as_ref()
                    .map_or(self.population.total_nodes(), |a| a.active_replicas())
            };
            self.active_scratch = active;
            (out, serving)
        } else if let Some(faults) = &self.faults {
            // Fault-aware exact path: always split over an explicit serving mask
            // (health ANDed into the autoscaler's active set when one is configured).
            let mut active = std::mem::take(&mut self.active_scratch);
            active.clear();
            match &self.autoscaler {
                Some(scaler) => {
                    active.extend(scaler.states().iter().map(|s| *s == NodePowerState::Active));
                }
                None => active.resize(n, true),
            }
            for (flag, health) in active.iter_mut().zip(&faults.health) {
                if !health.is_serving() {
                    *flag = false;
                }
            }
            let serving = active.iter().filter(|&&flag| flag).count();
            let split = self
                .balancer
                .split_active(total_offered_load, &snapshots, &active);
            self.active_scratch = active;
            (split, serving)
        } else {
            match &mut self.autoscaler {
                Some(scaler) => {
                    let active: Vec<bool> = scaler
                        .states()
                        .iter()
                        .map(|s| *s == NodePowerState::Active)
                        .collect();
                    (
                        self.balancer
                            .split_active(total_offered_load, &snapshots, &active),
                        scaler.active_count(),
                    )
                }
                None => (self.balancer.split(total_offered_load, &snapshots), n),
            }
        };
        self.snapshot_scratch = snapshots;

        if self.fleet_obs.enabled() && total_offered_load > 0.0 {
            // Dispatch audit: at Full level every routed assignment is recorded; at
            // Decisions level only sheds are (an active node squeezed out of the
            // rotation is a balancer decision worth auditing, per-node routing isn't).
            let interval = self.intervals as u32;
            for (i, &load) in assigned.iter().enumerate() {
                let active = self
                    .autoscaler
                    .as_ref()
                    .is_none_or(|a| a.states()[i] == NodePowerState::Active)
                    && self
                        .faults
                        .as_ref()
                        .is_none_or(|f| f.health[i].is_serving());
                if load > 0.0 {
                    self.fleet_obs.emit(
                        interval,
                        self.time_s,
                        Event::BalancerDispatch {
                            node: i as u32,
                            assigned_load: load,
                        },
                    );
                } else if active {
                    self.fleet_obs.emit(
                        interval,
                        self.time_s,
                        Event::BalancerShed { node: i as u32 },
                    );
                }
            }
        }

        // 4. Advance every node independently.
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .clamp(1, n);
        let node_intervals: Vec<NodeInterval> = if workers == 1 {
            self.nodes
                .iter_mut()
                .zip(&assigned)
                .map(|(slot, &load)| {
                    slot.as_mut()
                        // pliant-lint: allow(panic-hygiene): single-worker path never
                        // vacates slots; they are full on entry to every step.
                        .expect("node slots are only empty while a step is in flight")
                        .step(load)
                })
                .collect()
        } else {
            // Lazily create (or resize) the persistent pool, then ship each node to its
            // sticky worker and stitch the results back in node order.
            if self
                .pool
                .as_ref()
                .is_none_or(|p| p.worker_count() != workers)
            {
                self.pool = Some(NodeWorkerPool::sized_for(workers, n));
            }
            // pliant-lint: allow(panic-hygiene): assigned Some() two lines up.
            let pool = self.pool.as_ref().expect("pool was just ensured");
            let mut results = std::mem::take(&mut self.result_scratch);
            pool.step_all(&mut self.nodes, &assigned, &mut results);
            let intervals = results
                .iter_mut()
                // pliant-lint: allow(panic-hygiene): step_all resizes `results` to one
                // entry per node and fills each, or re-raises the worker panic.
                .map(|r| r.take().expect("step_all fills every slot or panics"))
                .collect();
            self.result_scratch = results;
            intervals
        };

        let completions: usize = node_intervals.iter().map(|ni| ni.jobs_completed).sum();
        self.scheduler.record_completions(completions);
        // Measure each rack's draw over the interval just stepped; the admission scan
        // at the top of the next interval compares it against the rack budget.
        if racked {
            for power in self.rack_power_w.iter_mut() {
                *power = 0.0;
            }
            for ni in &node_intervals {
                self.rack_power_w[self.instance_racks[ni.node]] +=
                    ni.observation.energy_j * ni.replicas as f64 / dt;
            }
        }
        if self.clustered {
            self.assigned_scratch = assigned;
        }
        self.time_s += dt;
        if self.fleet_obs.enabled() {
            let mut busy = 0usize;
            let mut violating = 0usize;
            for ni in &node_intervals {
                if ni.observation.arrivals > 0 {
                    busy += ni.replicas;
                    if ni.observation.qos_violated() {
                        violating += ni.replicas;
                    }
                }
            }
            self.fleet_obs.emit(
                self.intervals as u32,
                self.time_s,
                Event::IntervalSummary {
                    active_nodes: active_nodes as u32,
                    total_load: total_offered_load,
                    busy: busy as u32,
                    violating: violating as u32,
                    jobs_placed: jobs_placed as u32,
                },
            );
        }
        self.intervals += 1;

        ClusterInterval {
            time_s: self.time_s,
            avg_offered_load,
            total_offered_load,
            active_nodes,
            jobs_placed,
            nodes: node_intervals,
        }
    }

    /// Captures the full mutable state of the fleet between intervals: every node's
    /// simulator/monitor/policy/actuator, the scheduler queue, the balancer RNG, and
    /// the autoscaler and fault state if configured. Restoring the checkpoint into a
    /// fleet freshly built from the same scenario ([`Self::restore`]) and advancing it
    /// produces output byte-identical to the uninterrupted run (for untraced fleets;
    /// the observability ring is not part of the snapshot, so a resumed traced run
    /// replays only post-resume events).
    pub fn checkpoint(&self) -> ClusterCheckpoint {
        ClusterCheckpoint {
            version: CLUSTER_CHECKPOINT_VERSION,
            scenario_seed: self.scenario.seed,
            nodes: self.population.total_nodes(),
            instances: self.nodes.len(),
            time_s: self.time_s,
            intervals: self.intervals,
            balancer_rng: self.balancer.rng_state(),
            scheduler_queue: self.scheduler.queue_snapshot(),
            scheduler_stats: self.scheduler.stats(),
            autoscaler: self.autoscaler.as_ref().map(|a| a.snapshot()),
            faults: self.faults.as_ref().map(|f| f.snapshot()),
            rack_rng: self.rack_rng.as_ref().map(rng_state_words),
            rack_power_w: (!self.topology.is_flat()).then(|| self.rack_power_w.clone()),
            node_checkpoints: self
                .nodes
                .iter()
                .map(|slot| Self::expect_node(slot).checkpoint())
                .collect(),
        }
    }

    /// Restores a checkpoint taken by [`Self::checkpoint`] into this fleet, which must
    /// have been built from the same scenario (same seed, fleet shape, approximation,
    /// and fault profile — the schedule and instance plan are recompiled from the
    /// scenario, only mutable state travels in the checkpoint).
    ///
    /// # Errors
    ///
    /// Rejects checkpoints from a different format version, a different fleet shape,
    /// or with component states that fail their own validation; the fleet may be left
    /// partially restored on error and must not be advanced further.
    pub fn restore(&mut self, checkpoint: &ClusterCheckpoint) -> Result<(), String> {
        if checkpoint.version != CLUSTER_CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint format version {} (supported: {CLUSTER_CHECKPOINT_VERSION})",
                checkpoint.version
            ));
        }
        if checkpoint.scenario_seed != self.scenario.seed {
            return Err(format!(
                "checkpoint was taken at seed {}, scenario has seed {}",
                checkpoint.scenario_seed, self.scenario.seed
            ));
        }
        if checkpoint.nodes != self.population.total_nodes()
            || checkpoint.instances != self.nodes.len()
            || checkpoint.node_checkpoints.len() != self.nodes.len()
        {
            return Err(format!(
                "checkpoint covers {} nodes / {} instances, fleet has {} / {}",
                checkpoint.nodes,
                checkpoint.node_checkpoints.len(),
                self.population.total_nodes(),
                self.nodes.len()
            ));
        }
        match (&mut self.faults, &checkpoint.faults) {
            (Some(state), Some(snapshot)) => state
                .restore(snapshot)
                .map_err(|e| format!("fault state: {e}"))?,
            (None, None) => {}
            _ => {
                return Err(
                    "checkpoint fault state does not match the scenario's fault profile".into(),
                )
            }
        }
        match (&mut self.autoscaler, &checkpoint.autoscaler) {
            (Some(scaler), Some(snapshot)) => scaler
                .restore(snapshot)
                .map_err(|e| format!("autoscaler: {e}"))?,
            (None, None) => {}
            _ => {
                return Err(
                    "checkpoint autoscaler state does not match the scenario's config".into(),
                )
            }
        }
        match (&mut self.rack_rng, &checkpoint.rack_rng) {
            (Some(rng), Some(words)) => {
                *rng = rng_from_state_words(words).map_err(|e| format!("rack sampler: {e}"))?;
            }
            (None, None) => {}
            _ => {
                return Err(
                    "checkpoint rack-sampling state does not match the scenario's topology".into(),
                )
            }
        }
        match (self.topology.is_flat(), &checkpoint.rack_power_w) {
            (false, Some(power)) => {
                if power.len() != self.rack_power_w.len() {
                    return Err(format!(
                        "checkpoint covers {} racks, topology has {}",
                        power.len(),
                        self.rack_power_w.len()
                    ));
                }
                self.rack_power_w.clone_from(power);
            }
            (true, None) => {}
            _ => {
                return Err(
                    "checkpoint rack-power state does not match the scenario's topology".into(),
                )
            }
        }
        self.balancer
            .restore_rng_state(&checkpoint.balancer_rng)
            .map_err(|e| format!("balancer: {e}"))?;
        self.scheduler = BatchScheduler::restore(
            self.scenario.scheduler,
            checkpoint.scheduler_queue.clone(),
            checkpoint.scheduler_stats,
        );
        for (index, (slot, node_checkpoint)) in self
            .nodes
            .iter_mut()
            .zip(&checkpoint.node_checkpoints)
            .enumerate()
        {
            slot.as_mut()
                // pliant-lint: allow(panic-hygiene): slots are full between intervals;
                // checkpoints are only restored outside of advance calls.
                .expect("node slots are only empty while a step is in flight")
                .restore(node_checkpoint)
                .map_err(|e| format!("node {index}: {e}"))?;
        }
        self.time_s = checkpoint.time_s;
        self.intervals = checkpoint.intervals;
        Ok(())
    }
}

/// Format version written into [`ClusterCheckpoint::version`]; bump on any
/// breaking change to the snapshot layout.
pub const CLUSTER_CHECKPOINT_VERSION: u32 = 1;

/// A serializable snapshot of the full mutable state of a [`ClusterSim`] between
/// intervals; see [`ClusterSim::checkpoint`]. Everything derivable from the scenario
/// (the fault schedule, the instance plan, node profiles) is recompiled on restore —
/// the checkpoint carries only mutable state plus shape identifiers used to reject
/// mismatched restores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterCheckpoint {
    /// Snapshot format version ([`CLUSTER_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Seed of the scenario the checkpoint was taken from.
    pub scenario_seed: u64,
    /// Logical fleet size at capture.
    pub nodes: usize,
    /// Simulated instance count at capture.
    pub instances: usize,
    /// Experiment time at capture, in seconds.
    pub time_s: f64,
    /// Decision intervals advanced at capture.
    pub intervals: usize,
    /// Load-balancer RNG state (xoshiro256++ words).
    pub balancer_rng: Vec<u64>,
    /// Queued batch jobs, in submission order.
    pub scheduler_queue: Vec<AppId>,
    /// Scheduler counters at capture.
    pub scheduler_stats: SchedulerStats,
    /// Autoscaler state, when the scenario configures one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub autoscaler: Option<AutoscalerSnapshot>,
    /// Fault-injection state, when the scenario carries a non-empty fault profile.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultStateSnapshot>,
    /// Rack-placement sampling stream (xoshiro256++ words), when the scenario has a
    /// racked topology. Absent on flat fleets, so pre-topology checkpoints round-trip
    /// unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rack_rng: Option<Vec<u64>>,
    /// Per-rack measured power draw over the interval before capture, in watts
    /// (racked topologies only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rack_power_w: Option<Vec<f64>>,
    /// Per-instance node state, in instance order.
    pub node_checkpoints: Vec<NodeCheckpoint>,
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("nodes", &self.nodes.len())
            .field("time_s", &self.time_s)
            .field("pending_jobs", &self.scheduler.pending())
            .finish_non_exhaustive()
    }
}
