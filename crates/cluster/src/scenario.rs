//! Declarative description of one multi-node fleet experiment.
//!
//! A [`ClusterScenario`] is the fleet-level analogue of a single-node
//! [`Scenario`](pliant_core::scenario::Scenario): a complete, serializable description of
//! one cluster run — how many nodes, which interactive service they all front, which
//! per-node runtime policy, how cluster-wide load is balanced, how queued batch jobs are
//! placed, and from which seed every stochastic component derives. Scenarios are built
//! with the fluent [`ClusterScenarioBuilder`] and executed by
//! [`ClusterEngineExt::run_cluster`](crate::engine::ClusterEngineExt::run_cluster);
//! grids are composed with [`ClusterSuite`](crate::suite::ClusterSuite).
//!
//! # Load semantics
//!
//! Cluster load is expressed as the *average load per node*, as a fraction of one node's
//! saturation throughput: a 4-node cluster at `avg_node_load = 0.75` offers `3.0`
//! node-saturation units of traffic in total, which the balancer then splits (not
//! necessarily evenly). A time-varying [`LoadProfile`] modulates the same per-node
//! average over simulated time.

use serde::{Deserialize, Serialize};

use pliant_approx::catalog::AppId;
use pliant_core::policy::PolicyKind;
use pliant_core::scenario::Horizon;
use pliant_workloads::profile::{LoadProfile, LoadProfileError, MAX_LOAD_FRACTION};
use pliant_workloads::service::ServiceId;

use crate::autoscaler::{AutoscalerConfig, AutoscalerConfigError};
use crate::balancer::BalancerKind;
use crate::faults::{FaultProfile, FaultProfileError};
use crate::scheduler::SchedulerKind;
use crate::topology::{TopologyConfig, TopologyConfigError};

/// How the engine turns the scenario's node *population* into simulated node
/// *instances*.
///
/// The fleet description is a population: `nodes` logical nodes partitioned into groups
/// that share every per-node input (service, policy, QoS target, load share, and the
/// initial batch-job slice — the only axis that varies per node today). `Exact`
/// materializes one [`ClusterNode`](crate::node::ClusterNode) per logical node, exactly
/// as before this knob existed. `Clustered` simulates at most
/// `representatives_per_group` representative instances per group under common random
/// numbers and replicates each representative's histogram/QoS/energy contributions
/// across its replica weight (Parsimon-style clustering, applied to nodes instead of
/// links). Each representative inherits the true seed of the first logical node it
/// stands for, so raising `representatives_per_group` converges monotonically onto the
/// exact fleet — at `representatives_per_group >= group size` the two modes coincide.
///
/// There is deliberately no `validate()` on this type: the only invariant
/// (`representatives_per_group > 0`) is checked by [`ClusterScenario::validate`], which
/// runs at the archive boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FleetApproximation {
    /// One simulated instance per logical node (today's behavior, byte-identical).
    #[default]
    Exact,
    /// Simulate representatives and weight their contributions by replica count.
    Clustered {
        /// Upper bound on simulated instances per population group (must be positive).
        /// Larger values trade speed for fidelity; group size caps the effective value.
        representatives_per_group: usize,
    },
}

impl FleetApproximation {
    /// Whether this mode can simulate fewer instances than logical nodes.
    pub fn is_clustered(&self) -> bool {
        matches!(self, FleetApproximation::Clustered { .. })
    }
}

/// A complete, serializable description of one fleet experiment.
///
/// Construct with [`ClusterScenario::builder`]. All fields are public so sinks and
/// analysis code can read them back from archived runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterScenario {
    /// Optional display label (cluster suites set this to the cell's sweep coordinates).
    pub label: Option<String>,
    /// Number of nodes in the fleet.
    pub nodes: usize,
    /// Interactive service every node fronts (the fleet is homogeneous, like the
    /// paper's evaluation cluster).
    pub service: ServiceId,
    /// Per-node runtime policy.
    pub policy: PolicyKind,
    /// How cluster-wide offered load is split across nodes each interval.
    pub balancer: BalancerKind,
    /// How queued batch jobs are placed onto free node slots.
    pub scheduler: SchedulerKind,
    /// Batch jobs in submission order. The first `nodes × slots_per_node` jobs fill the
    /// fleet's slots at start; the rest queue and are placed as slots free up.
    pub jobs: Vec<AppId>,
    /// Batch slots per node (the co-location width).
    pub slots_per_node: usize,
    /// Average offered load per node, as a fraction of one node's saturation
    /// throughput. When `load_profile` is set, this is only the fallback the profile
    /// overrides.
    pub avg_node_load: f64,
    /// Time-varying per-node-average load (`None` = constant at `avg_node_load`).
    pub load_profile: Option<LoadProfile>,
    /// Decision interval in seconds (shared by the balancer, scheduler, and every
    /// node's controller).
    pub decision_interval_s: f64,
    /// Latency-slack threshold for the per-node controllers.
    pub slack_threshold: f64,
    /// Consecutive high-slack intervals required before a node's controller relaxes.
    pub consecutive_slack_required: u32,
    /// How long to simulate.
    pub horizon: Horizon,
    /// Decision intervals excluded from the fleet's latency/QoS statistics at the start
    /// of the run, while the per-node runtimes converge from their precise initial
    /// state to the co-location's operating point. Traces, job accounting, and core
    /// accounting still cover the full run. The fleet p99 is a quantile over *every*
    /// sample, so without a warm-up the one-off convergence transient would sit in the
    /// histogram forever and dominate the tail of an otherwise healthy steady state.
    pub warmup_intervals: usize,
    /// Overrides the service's QoS target in seconds (`None` = paper default).
    pub qos_target_s: Option<f64>,
    /// Energy-aware autoscaling of the active node set (`None` = every node serves for
    /// the whole run). Absent in pre-energy archives (deserializes as `None`).
    #[serde(default)]
    pub autoscaler: Option<AutoscalerConfig>,
    /// How the node population is materialized into simulated instances (`Exact` = one
    /// instance per logical node). Absent in pre-hyperscale archives (deserializes as
    /// `Exact`).
    #[serde(default)]
    pub approximation: FleetApproximation,
    /// Deterministic fault injection — node crashes, stragglers, correlated group
    /// outages (`None` = nothing ever fails). Absent in pre-fault archives
    /// (deserializes as `None`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fault_profile: Option<FaultProfile>,
    /// Rack/power-domain structure of the fleet (`Flat` = no structure, today's flat
    /// node list). Absent in pre-topology archives (deserializes as `Flat`) and
    /// omitted from flat archives, so pre-topology archives round-trip
    /// byte-identically.
    #[serde(default, skip_serializing_if = "TopologyConfig::is_flat")]
    pub topology: TopologyConfig,
    /// Master seed; every node, the balancer, the monitor sampling streams, and the
    /// fault schedule derive from it.
    pub seed: u64,
}

impl ClusterScenario {
    /// Starts building a scenario for `service` with paper-default knobs.
    pub fn builder(service: ServiceId) -> ClusterScenarioBuilder {
        ClusterScenarioBuilder::new(service)
    }

    /// Whether the nodes' applications run instrumented (the policy default: every
    /// policy except the precise baseline).
    pub fn effective_instrumented(&self) -> bool {
        self.policy != PolicyKind::Precise
    }

    /// The per-node-average load profile the fleet runs: the explicit `load_profile` if
    /// one is set, otherwise constant at `avg_node_load`.
    pub fn effective_load_profile(&self) -> LoadProfile {
        self.load_profile
            .clone()
            .unwrap_or_else(|| LoadProfile::constant(self.avg_node_load))
    }

    /// The number of decision intervals this scenario simulates.
    pub fn max_intervals(&self) -> usize {
        self.horizon.max_intervals(self.decision_interval_s)
    }

    /// Jobs needed to fill every slot of every node at start.
    pub fn initial_job_count(&self) -> usize {
        self.nodes * self.slots_per_node
    }

    /// Checks the same invariants [`ClusterScenarioBuilder::try_build`] enforces.
    ///
    /// Cluster scenarios are plain serde-able data, so a deserialized archive can
    /// describe an impossible experiment; the engine re-checks this before running.
    pub fn validate(&self) -> Result<(), ClusterScenarioError> {
        if self.nodes == 0 {
            return Err(ClusterScenarioError::NoNodes);
        }
        if self.slots_per_node == 0 {
            return Err(ClusterScenarioError::NoSlots);
        }
        if self.jobs.len() < self.initial_job_count() {
            return Err(ClusterScenarioError::NotEnoughJobs {
                needed: self.initial_job_count(),
                got: self.jobs.len(),
            });
        }
        if !(self.avg_node_load > 0.0 && self.avg_node_load <= MAX_LOAD_FRACTION) {
            return Err(ClusterScenarioError::InvalidLoad);
        }
        if !(self.decision_interval_s > 0.0 && self.decision_interval_s.is_finite()) {
            return Err(ClusterScenarioError::InvalidDecisionInterval);
        }
        let horizon_ok = match self.horizon {
            Horizon::Intervals(n) => n > 0,
            Horizon::Seconds(secs) => secs > 0.0 && secs.is_finite(),
        };
        if !horizon_ok {
            return Err(ClusterScenarioError::InvalidHorizon);
        }
        if !(self.slack_threshold >= 0.0 && self.slack_threshold.is_finite()) {
            return Err(ClusterScenarioError::InvalidSlackThreshold);
        }
        if self.warmup_intervals >= self.max_intervals() {
            return Err(ClusterScenarioError::WarmupConsumesHorizon {
                warmup: self.warmup_intervals,
                horizon: self.max_intervals(),
            });
        }
        if let Some(qos_s) = self.qos_target_s {
            if !(qos_s > 0.0 && qos_s.is_finite()) {
                return Err(ClusterScenarioError::InvalidQosTarget);
            }
        }
        if let Some(profile) = &self.load_profile {
            profile
                .validate()
                .map_err(ClusterScenarioError::InvalidLoadProfile)?;
        }
        if let Some(autoscaler) = &self.autoscaler {
            autoscaler
                .validate()
                .map_err(ClusterScenarioError::InvalidAutoscaler)?;
            if autoscaler.min_active > self.nodes {
                return Err(ClusterScenarioError::AutoscalerMinimumExceedsFleet {
                    min_active: autoscaler.min_active,
                    nodes: self.nodes,
                });
            }
        }
        if let FleetApproximation::Clustered {
            representatives_per_group,
        } = self.approximation
        {
            if representatives_per_group == 0 {
                return Err(ClusterScenarioError::InvalidApproximation);
            }
        }
        self.topology
            .validate(self.nodes)
            .map_err(ClusterScenarioError::InvalidTopology)?;
        if let Some(profile) = &self.fault_profile {
            // Group-outage targets are indices into the node population, which (after
            // the job-count check above) is well-defined and cheap to derive here.
            let groups = crate::population::NodePopulation::from_scenario(self)
                .groups()
                .len();
            profile
                .validate(self.nodes, groups, self.topology.rack_count())
                .map_err(ClusterScenarioError::InvalidFaultProfile)?;
        }
        Ok(())
    }

    /// The label if set, otherwise a generated `Nxservice/policy/balancer` description.
    pub fn describe(&self) -> String {
        match &self.label {
            Some(l) => l.clone(),
            None => format!(
                "{}x{}/{}/{}",
                self.nodes,
                self.service.name(),
                self.policy,
                self.balancer
            ),
        }
    }
}

// Hand-written (not derived) so the fleet invariants are enforced at the archive
// boundary: a hand-edited or corrupted archive is rejected here with a descriptive
// error instead of deserializing into an impossible fleet that fails mid-run. The
// mirror struct keeps the derived field plumbing (including the `#[serde(default)]`
// that lets pre-energy archives without an `autoscaler` field deserialize).
impl serde::Deserialize for ClusterScenario {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        #[derive(Deserialize)]
        struct ClusterScenarioWire {
            label: Option<String>,
            nodes: usize,
            service: ServiceId,
            policy: PolicyKind,
            balancer: BalancerKind,
            scheduler: SchedulerKind,
            jobs: Vec<AppId>,
            slots_per_node: usize,
            avg_node_load: f64,
            load_profile: Option<LoadProfile>,
            decision_interval_s: f64,
            slack_threshold: f64,
            consecutive_slack_required: u32,
            horizon: Horizon,
            warmup_intervals: usize,
            qos_target_s: Option<f64>,
            #[serde(default)]
            autoscaler: Option<AutoscalerConfig>,
            #[serde(default)]
            approximation: FleetApproximation,
            #[serde(default)]
            fault_profile: Option<FaultProfile>,
            #[serde(default)]
            topology: TopologyConfig,
            seed: u64,
        }
        let w = ClusterScenarioWire::from_value(value)?;
        let scenario = ClusterScenario {
            label: w.label,
            nodes: w.nodes,
            service: w.service,
            policy: w.policy,
            balancer: w.balancer,
            scheduler: w.scheduler,
            jobs: w.jobs,
            slots_per_node: w.slots_per_node,
            avg_node_load: w.avg_node_load,
            load_profile: w.load_profile,
            decision_interval_s: w.decision_interval_s,
            slack_threshold: w.slack_threshold,
            consecutive_slack_required: w.consecutive_slack_required,
            horizon: w.horizon,
            warmup_intervals: w.warmup_intervals,
            qos_target_s: w.qos_target_s,
            autoscaler: w.autoscaler,
            approximation: w.approximation,
            fault_profile: w.fault_profile,
            topology: w.topology,
            seed: w.seed,
        };
        scenario
            .validate()
            .map_err(|e| serde::Error::custom(format!("invalid cluster scenario: {e}")))?;
        Ok(scenario)
    }
}

/// Why a [`ClusterScenarioBuilder`] refused to produce a [`ClusterScenario`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterScenarioError {
    /// The fleet has no nodes.
    NoNodes,
    /// Nodes have no batch slots.
    NoSlots,
    /// Fewer jobs than fleet slots: every node needs at least one job per slot to form
    /// a co-location.
    NotEnoughJobs {
        /// Jobs needed to fill every slot (`nodes × slots_per_node`).
        needed: usize,
        /// Jobs actually supplied.
        got: usize,
    },
    /// The average per-node load is outside `(0, MAX_LOAD_FRACTION]`.
    InvalidLoad,
    /// The decision interval is not strictly positive.
    InvalidDecisionInterval,
    /// The horizon is empty or not finite.
    InvalidHorizon,
    /// The slack threshold is negative or not finite.
    InvalidSlackThreshold,
    /// The QoS-target override is zero, negative, or not finite (every latency ratio
    /// and slack fraction divides by it).
    InvalidQosTarget,
    /// The warm-up exclusion covers the whole horizon, leaving no measured intervals.
    WarmupConsumesHorizon {
        /// Warm-up intervals requested.
        warmup: usize,
        /// Total intervals the horizon allows.
        horizon: usize,
    },
    /// The load profile failed its own validation.
    InvalidLoadProfile(LoadProfileError),
    /// The autoscaler configuration failed its own validation.
    InvalidAutoscaler(AutoscalerConfigError),
    /// The autoscaler's active-set floor exceeds the fleet size.
    AutoscalerMinimumExceedsFleet {
        /// Requested minimum active nodes.
        min_active: usize,
        /// Provisioned fleet size.
        nodes: usize,
    },
    /// The clustered approximation allows zero representatives per group, which would
    /// leave population groups with no simulated instance at all.
    InvalidApproximation,
    /// The fault profile failed its own validation.
    InvalidFaultProfile(FaultProfileError),
    /// The rack topology failed its own validation or does not cover the fleet.
    InvalidTopology(TopologyConfigError),
}

impl std::fmt::Display for ClusterScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterScenarioError::NoNodes => f.write_str("cluster needs at least one node"),
            ClusterScenarioError::NoSlots => {
                f.write_str("nodes need at least one batch slot")
            }
            ClusterScenarioError::NotEnoughJobs { needed, got } => write!(
                f,
                "cluster needs at least {needed} jobs to fill every node slot, got {got}"
            ),
            ClusterScenarioError::InvalidLoad => write!(
                f,
                "average per-node load must be in (0, {MAX_LOAD_FRACTION}]"
            ),
            ClusterScenarioError::InvalidDecisionInterval => {
                f.write_str("decision interval must be positive")
            }
            ClusterScenarioError::InvalidHorizon => {
                f.write_str("horizon must be positive and finite")
            }
            ClusterScenarioError::InvalidSlackThreshold => {
                f.write_str("slack threshold must be non-negative")
            }
            ClusterScenarioError::InvalidQosTarget => {
                f.write_str("QoS-target override must be positive and finite")
            }
            ClusterScenarioError::WarmupConsumesHorizon { warmup, horizon } => write!(
                f,
                "warm-up of {warmup} intervals leaves none of the {horizon}-interval horizon measured"
            ),
            ClusterScenarioError::InvalidLoadProfile(e) => {
                write!(f, "invalid load profile: {e}")
            }
            ClusterScenarioError::InvalidAutoscaler(e) => {
                write!(f, "invalid autoscaler config: {e}")
            }
            ClusterScenarioError::AutoscalerMinimumExceedsFleet { min_active, nodes } => write!(
                f,
                "autoscaler min_active of {min_active} exceeds the {nodes}-node fleet"
            ),
            ClusterScenarioError::InvalidApproximation => f.write_str(
                "clustered approximation needs at least one representative per group",
            ),
            ClusterScenarioError::InvalidFaultProfile(e) => {
                write!(f, "invalid fault profile: {e}")
            }
            ClusterScenarioError::InvalidTopology(e) => {
                write!(f, "invalid topology: {e}")
            }
        }
    }
}

impl std::error::Error for ClusterScenarioError {}

/// Fluent builder for [`ClusterScenario`] with paper-default knobs.
///
/// # Example
///
/// ```
/// use pliant_approx::catalog::AppId;
/// use pliant_cluster::scenario::ClusterScenario;
/// use pliant_workloads::service::ServiceId;
///
/// let scenario = ClusterScenario::builder(ServiceId::MongoDb)
///     .nodes(2)
///     .jobs([AppId::Raytrace, AppId::Canneal, AppId::Snp])
///     .avg_node_load(0.6)
///     .horizon_intervals(30)
///     .seed(7)
///     .build();
/// assert_eq!(scenario.initial_job_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterScenarioBuilder {
    scenario: ClusterScenario,
}

impl ClusterScenarioBuilder {
    /// Starts from paper-style defaults: 4 nodes with one batch slot each, Pliant per
    /// node, least-loaded balancing, first-fit placement, 75% average load, 1 s
    /// decisions, 10% slack threshold, 120-interval horizon with a 5-interval warm-up,
    /// seed 42. Jobs must be supplied explicitly.
    pub fn new(service: ServiceId) -> Self {
        ClusterScenarioBuilder {
            scenario: ClusterScenario {
                label: None,
                nodes: 4,
                service,
                policy: PolicyKind::Pliant,
                balancer: BalancerKind::LeastLoaded,
                scheduler: SchedulerKind::FirstFit,
                jobs: Vec::new(),
                slots_per_node: 1,
                avg_node_load: 0.75,
                load_profile: None,
                decision_interval_s: 1.0,
                slack_threshold: 0.10,
                consecutive_slack_required: 2,
                horizon: Horizon::Intervals(120),
                warmup_intervals: 5,
                qos_target_s: None,
                autoscaler: None,
                approximation: FleetApproximation::Exact,
                fault_profile: None,
                topology: TopologyConfig::Flat,
                seed: 42,
            },
        }
    }

    /// Sets the fleet size.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.scenario.nodes = nodes;
        self
    }

    /// Selects the per-node runtime policy (default: [`PolicyKind::Pliant`]).
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.scenario.policy = policy;
        self
    }

    /// Selects the load-balancing policy (default: [`BalancerKind::LeastLoaded`]).
    pub fn balancer(mut self, balancer: BalancerKind) -> Self {
        self.scenario.balancer = balancer;
        self
    }

    /// Selects the job-placement policy (default: [`SchedulerKind::FirstFit`]).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scenario.scheduler = scheduler;
        self
    }

    /// Appends one batch job to the submission queue.
    pub fn job(mut self, app: AppId) -> Self {
        self.scenario.jobs.push(app);
        self
    }

    /// Appends several batch jobs to the submission queue.
    pub fn jobs(mut self, jobs: impl IntoIterator<Item = AppId>) -> Self {
        self.scenario.jobs.extend(jobs);
        self
    }

    /// Sets the co-location width (batch slots per node; default 1).
    pub fn slots_per_node(mut self, slots: usize) -> Self {
        self.scenario.slots_per_node = slots;
        self
    }

    /// Sets a constant average offered load per node, clearing any time-varying
    /// profile set earlier.
    pub fn avg_node_load(mut self, load: f64) -> Self {
        self.scenario.avg_node_load = load;
        self.scenario.load_profile = None;
        self
    }

    /// Sets a time-varying per-node-average load profile (diurnal, flash crowd, …).
    pub fn load_profile(mut self, profile: LoadProfile) -> Self {
        self.scenario.load_profile = Some(profile);
        self
    }

    /// Sets the decision interval in seconds.
    pub fn decision_interval_s(mut self, dt_s: f64) -> Self {
        self.scenario.decision_interval_s = dt_s;
        self
    }

    /// Sets the per-node controllers' latency-slack threshold.
    pub fn slack_threshold(mut self, threshold: f64) -> Self {
        self.scenario.slack_threshold = threshold;
        self
    }

    /// Sets the per-node controllers' relaxation hysteresis.
    pub fn consecutive_slack_required(mut self, intervals: u32) -> Self {
        self.scenario.consecutive_slack_required = intervals;
        self
    }

    /// Caps the run at a number of decision intervals.
    pub fn horizon_intervals(mut self, intervals: usize) -> Self {
        self.scenario.horizon = Horizon::Intervals(intervals);
        self
    }

    /// Caps the run at a simulated wall-clock budget.
    pub fn horizon_seconds(mut self, seconds: f64) -> Self {
        self.scenario.horizon = Horizon::Seconds(seconds);
        self
    }

    /// Sets how many initial intervals are excluded from the fleet's latency/QoS
    /// statistics while the per-node runtimes converge (default 5; 0 measures the
    /// convergence transient too).
    pub fn warmup_intervals(mut self, intervals: usize) -> Self {
        self.scenario.warmup_intervals = intervals;
        self
    }

    /// Overrides every node's QoS target in seconds.
    pub fn qos_target_s(mut self, qos_s: f64) -> Self {
        self.scenario.qos_target_s = Some(qos_s);
        self
    }

    /// Enables energy-aware autoscaling of the active node set (see
    /// [`crate::autoscaler`]).
    pub fn autoscaler(mut self, config: AutoscalerConfig) -> Self {
        self.scenario.autoscaler = Some(config);
        self
    }

    /// Selects how the node population is materialized into simulated instances
    /// (default: [`FleetApproximation::Exact`]).
    pub fn approximation(mut self, approximation: FleetApproximation) -> Self {
        self.scenario.approximation = approximation;
        self
    }

    /// Attaches a fault profile: deterministic, seed-derived node crashes,
    /// degraded-frequency stragglers, and correlated group outages (see
    /// [`crate::faults`]).
    pub fn faults(mut self, profile: FaultProfile) -> Self {
        self.scenario.fault_profile = Some(profile);
        self
    }

    /// Sets the rack/power-domain structure of the fleet (default:
    /// [`TopologyConfig::Flat`] — no structure; see [`crate::topology`]).
    pub fn topology(mut self, topology: TopologyConfig) -> Self {
        self.scenario.topology = topology;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Attaches a display label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.scenario.label = Some(label.into());
        self
    }

    /// Validates and returns the scenario.
    pub fn try_build(self) -> Result<ClusterScenario, ClusterScenarioError> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }

    /// Validates and returns the scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is invalid (no nodes/slots, fewer jobs than fleet slots,
    /// non-positive load/interval/horizon, or a bad load profile); use
    /// [`Self::try_build`] to handle the error.
    pub fn build(self) -> ClusterScenario {
        match self.try_build() {
            Ok(s) => s,
            Err(e) => panic!("invalid cluster scenario: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: usize) -> Vec<AppId> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    AppId::Canneal
                } else {
                    AppId::Snp
                }
            })
            .collect()
    }

    #[test]
    fn builder_applies_defaults_and_validates() {
        let s = ClusterScenario::builder(ServiceId::Memcached)
            .jobs(jobs(4))
            .build();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.slots_per_node, 1);
        assert_eq!(s.policy, PolicyKind::Pliant);
        assert_eq!(s.balancer, BalancerKind::LeastLoaded);
        assert_eq!(s.scheduler, SchedulerKind::FirstFit);
        assert_eq!(s.avg_node_load, 0.75);
        assert_eq!(s.seed, 42);
        assert!(s.effective_instrumented());
        assert_eq!(s.effective_load_profile(), LoadProfile::constant(0.75));
    }

    #[test]
    fn validation_catches_degenerate_fleets() {
        assert_eq!(
            ClusterScenario::builder(ServiceId::Nginx)
                .nodes(0)
                .jobs(jobs(1))
                .try_build()
                .unwrap_err(),
            ClusterScenarioError::NoNodes
        );
        assert_eq!(
            ClusterScenario::builder(ServiceId::Nginx)
                .nodes(3)
                .jobs(jobs(2))
                .try_build()
                .unwrap_err(),
            ClusterScenarioError::NotEnoughJobs { needed: 3, got: 2 }
        );
        assert_eq!(
            ClusterScenario::builder(ServiceId::Nginx)
                .jobs(jobs(4))
                .slots_per_node(0)
                .try_build()
                .unwrap_err(),
            ClusterScenarioError::NoSlots
        );
        assert_eq!(
            ClusterScenario::builder(ServiceId::Nginx)
                .jobs(jobs(4))
                .avg_node_load(0.0)
                .try_build()
                .unwrap_err(),
            ClusterScenarioError::InvalidLoad
        );
        assert_eq!(
            ClusterScenario::builder(ServiceId::Nginx)
                .jobs(jobs(4))
                .qos_target_s(0.0)
                .try_build()
                .unwrap_err(),
            ClusterScenarioError::InvalidQosTarget
        );
        let err = ClusterScenario::builder(ServiceId::Nginx)
            .jobs(jobs(4))
            .load_profile(LoadProfile::Trace { points: vec![] })
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ClusterScenarioError::InvalidLoadProfile(_)));
        assert!(err.to_string().contains("load profile"));
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let s = ClusterScenario::builder(ServiceId::MongoDb)
            .nodes(3)
            .slots_per_node(2)
            .jobs(jobs(8))
            .policy(PolicyKind::Precise)
            .balancer(BalancerKind::PowerOfTwoChoices)
            .scheduler(SchedulerKind::QosSlackAware)
            .load_profile(LoadProfile::Diurnal {
                base: 0.6,
                amplitude: 0.2,
                period_s: 60.0,
                phase_s: 0.0,
            })
            .autoscaler(AutoscalerConfig::default())
            .horizon_seconds(30.0)
            .qos_target_s(0.012)
            .seed(1234)
            .label("round-trip")
            .build();
        let json = serde_json::to_string_pretty(&s).expect("serializable");
        let back: ClusterScenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, s);
        assert!(!back.effective_instrumented());
        assert_eq!(back.autoscaler, Some(AutoscalerConfig::default()));
        // Pre-energy archives carry no autoscaler field and deserialize as None.
        let value: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let legacy = serde_json::to_string(&serde::Value::Object(
            value
                .as_object()
                .expect("scenarios serialize as objects")
                .iter()
                .filter(|(k, _)| k != "autoscaler")
                .cloned()
                .collect(),
        ))
        .expect("serializable");
        let old: ClusterScenario =
            serde_json::from_str(&legacy).expect("legacy archives deserialize");
        assert_eq!(old.autoscaler, None);
    }

    #[test]
    fn validation_catches_bad_autoscaler_configs() {
        let err = ClusterScenario::builder(ServiceId::Nginx)
            .nodes(2)
            .jobs(jobs(2))
            .autoscaler(AutoscalerConfig {
                min_active: 0,
                ..AutoscalerConfig::default()
            })
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ClusterScenarioError::InvalidAutoscaler(_)));
        assert!(err.to_string().contains("autoscaler"));
        assert_eq!(
            ClusterScenario::builder(ServiceId::Nginx)
                .nodes(2)
                .jobs(jobs(2))
                .autoscaler(AutoscalerConfig {
                    min_active: 5,
                    ..AutoscalerConfig::default()
                })
                .try_build()
                .unwrap_err(),
            ClusterScenarioError::AutoscalerMinimumExceedsFleet {
                min_active: 5,
                nodes: 2
            }
        );
    }

    #[test]
    fn approximation_round_trips_and_legacy_archives_default_to_exact() {
        let clustered = ClusterScenario::builder(ServiceId::Memcached)
            .nodes(6)
            .jobs(jobs(6))
            .approximation(FleetApproximation::Clustered {
                representatives_per_group: 2,
            })
            .build();
        let json = serde_json::to_string(&clustered).expect("serializable");
        assert!(json.contains("representatives_per_group"));
        let back: ClusterScenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, clustered);
        assert!(back.approximation.is_clustered());

        // Exact serializes, round-trips, and is the builder default.
        let exact = ClusterScenario::builder(ServiceId::Memcached)
            .jobs(jobs(4))
            .build();
        assert_eq!(exact.approximation, FleetApproximation::Exact);
        let json = serde_json::to_string(&exact).expect("serializable");
        let back: ClusterScenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.approximation, FleetApproximation::Exact);

        // Pre-hyperscale archives carry no approximation field: strip it and the
        // scenario still deserializes, as Exact.
        let value: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let legacy = serde_json::to_string(&serde::Value::Object(
            value
                .as_object()
                .expect("scenarios serialize as objects")
                .iter()
                .filter(|(k, _)| k != "approximation")
                .cloned()
                .collect(),
        ))
        .expect("serializable");
        assert!(!legacy.contains("approximation"));
        let old: ClusterScenario =
            serde_json::from_str(&legacy).expect("legacy archives deserialize");
        assert_eq!(old.approximation, FleetApproximation::Exact);
    }

    #[test]
    fn zero_representative_approximations_are_rejected() {
        assert_eq!(
            ClusterScenario::builder(ServiceId::Nginx)
                .nodes(2)
                .jobs(jobs(2))
                .approximation(FleetApproximation::Clustered {
                    representatives_per_group: 0,
                })
                .try_build()
                .unwrap_err(),
            ClusterScenarioError::InvalidApproximation
        );
        // The same invariant holds at the archive boundary.
        let good = ClusterScenario::builder(ServiceId::Nginx)
            .nodes(2)
            .jobs(jobs(2))
            .approximation(FleetApproximation::Clustered {
                representatives_per_group: 2,
            })
            .build();
        let json = serde_json::to_string(&good).expect("serializable");
        let corrupted = json.replace(
            "\"representatives_per_group\":2",
            "\"representatives_per_group\":0",
        );
        let err = serde_json::from_str::<ClusterScenario>(&corrupted)
            .expect_err("zero representatives must not deserialize");
        assert!(err.to_string().contains("at least one representative"));
    }

    #[test]
    fn fault_profiles_round_trip_and_are_validated_at_both_boundaries() {
        use crate::faults::{FaultKind, GroupOutage, ScheduledFault};
        let profile = FaultProfile {
            crash_probability: 0.01,
            outage_intervals: 10,
            scheduled: vec![ScheduledFault {
                node: 1,
                at_interval: 20,
                duration_intervals: 5,
                kind: FaultKind::Crash,
            }],
            ..FaultProfile::new()
        };
        let s = ClusterScenario::builder(ServiceId::Memcached)
            .nodes(3)
            .jobs(jobs(3))
            .faults(profile.clone())
            .build();
        let json = serde_json::to_string(&s).expect("serializable");
        assert!(json.contains("fault_profile"));
        let back: ClusterScenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.fault_profile, Some(profile));

        // Fault-free scenarios omit the field entirely, and archives without it
        // (everything written before fault injection existed) deserialize as None.
        let plain = ClusterScenario::builder(ServiceId::Memcached)
            .jobs(jobs(4))
            .build();
        let json = serde_json::to_string(&plain).expect("serializable");
        assert!(!json.contains("fault_profile"));
        let back: ClusterScenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.fault_profile, None);

        // Builder-side validation: a scheduled fault must target a real node.
        let err = ClusterScenario::builder(ServiceId::Memcached)
            .nodes(2)
            .jobs(jobs(2))
            .faults(FaultProfile {
                scheduled: vec![ScheduledFault {
                    node: 9,
                    at_interval: 0,
                    duration_intervals: 1,
                    kind: FaultKind::Crash,
                }],
                ..FaultProfile::new()
            })
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ClusterScenarioError::InvalidFaultProfile(_)));
        assert!(err.to_string().contains("fault"));

        // Group outages are checked against the actual population (jobs(4)
        // alternates two apps, so 4 nodes form 2 groups).
        let err = ClusterScenario::builder(ServiceId::Memcached)
            .jobs(jobs(4))
            .faults(FaultProfile {
                group_outages: vec![GroupOutage {
                    group: 2,
                    at_interval: 0,
                    duration_intervals: 1,
                }],
                ..FaultProfile::new()
            })
            .try_build()
            .unwrap_err();
        assert!(
            err.to_string().contains("group"),
            "out-of-range group outage must be rejected: {err}"
        );

        // The same invariants hold at the archive boundary.
        let corrupted = serde_json::to_string(&s)
            .expect("serializable")
            .replace("\"node\":1", "\"node\":7");
        let err = serde_json::from_str::<ClusterScenario>(&corrupted)
            .expect_err("out-of-range scheduled fault must not deserialize");
        assert!(err.to_string().contains("fault"));
    }

    #[test]
    fn topology_round_trips_and_legacy_archives_default_to_flat() {
        let racked = ClusterScenario::builder(ServiceId::Memcached)
            .nodes(6)
            .jobs(jobs(6))
            .topology(TopologyConfig::Racks {
                racks: 2,
                nodes_per_rack: 3,
                rack_power_w: Some(450.0),
            })
            .build();
        let json = serde_json::to_string(&racked).expect("serializable");
        assert!(json.contains("nodes_per_rack"));
        let back: ClusterScenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, racked);

        // Flat scenarios omit the field entirely, and archives without it (everything
        // written before the topology layer existed) deserialize as Flat.
        let flat = ClusterScenario::builder(ServiceId::Memcached)
            .jobs(jobs(4))
            .build();
        let json = serde_json::to_string(&flat).expect("serializable");
        assert!(!json.contains("topology"));
        let back: ClusterScenario = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.topology, TopologyConfig::Flat);

        // A grid that does not cover the fleet is rejected at both boundaries.
        assert_eq!(
            ClusterScenario::builder(ServiceId::Memcached)
                .nodes(5)
                .jobs(jobs(5))
                .topology(TopologyConfig::Racks {
                    racks: 2,
                    nodes_per_rack: 3,
                    rack_power_w: None,
                })
                .try_build()
                .unwrap_err(),
            ClusterScenarioError::InvalidTopology(TopologyConfigError::NodeCountMismatch {
                racks: 2,
                nodes_per_rack: 3,
                nodes: 5,
            })
        );
        // Surplus jobs keep the job-count invariant satisfied after the corruption,
        // so the failure isolated here is the topology coverage check.
        let surplus = ClusterScenario::builder(ServiceId::Memcached)
            .nodes(6)
            .jobs(jobs(8))
            .topology(TopologyConfig::Racks {
                racks: 2,
                nodes_per_rack: 3,
                rack_power_w: None,
            })
            .build();
        let corrupted = serde_json::to_string(&surplus)
            .expect("serializable")
            .replace("\"nodes\":6", "\"nodes\":7");
        let err = serde_json::from_str::<ClusterScenario>(&corrupted)
            .expect_err("a grid that does not cover the fleet must not deserialize");
        assert!(err.to_string().contains("does not cover"), "got: {err}");
    }

    #[test]
    fn describe_summarizes_the_fleet() {
        let s = ClusterScenario::builder(ServiceId::Memcached)
            .nodes(6)
            .jobs(jobs(6))
            .build();
        assert_eq!(s.describe(), "6xmemcached/pliant/least-loaded");
        let labeled = ClusterScenario::builder(ServiceId::Memcached)
            .jobs(jobs(4))
            .label("cell-1")
            .build();
        assert_eq!(labeled.describe(), "cell-1");
    }

    #[test]
    fn corrupted_archives_are_rejected_at_the_deserialization_boundary() {
        let good = ClusterScenario::builder(ServiceId::Nginx)
            .nodes(2)
            .jobs(jobs(2))
            .build();
        let json = serde_json::to_string(&good).expect("serializable");
        let corrupted = json.replace("\"nodes\":2", "\"nodes\":9");
        let err = serde_json::from_str::<ClusterScenario>(&corrupted)
            .expect_err("a fleet violating its invariants must not deserialize");
        assert!(
            err.to_string()
                .contains("needs at least 9 jobs to fill every node slot, got 2"),
            "error should carry the validation message, got: {err}"
        );
    }
}
