//! Integration tests: exact (rule, line) assertions over the seeded-violation fixture,
//! pragma suppression, the self-hosting workspace scan, and the CLI contract (exit
//! codes, `--json`, `--only`/`--skip`, `--list-rules`).

use std::path::{Path, PathBuf};
use std::process::Command;

use pliant_lint::config::LintConfig;
use pliant_lint::findings::ALL_RULES;
use pliant_lint::{lint_path, lint_source};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Reads a fixture, returning the diagnostic path the findings should carry plus the
/// source text.
fn fixture(name: &str) -> (String, String) {
    let source = std::fs::read_to_string(fixtures_dir().join(name)).unwrap();
    (format!("fixtures/{name}"), source)
}

/// Runs the built `pliant-lint` binary, returning (exit code, stdout, stderr).
fn run_cli(current_dir: &Path, args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pliant-lint"))
        .current_dir(current_dir)
        .args(args)
        .output()
        .unwrap();
    (
        out.status.code().unwrap(),
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

#[test]
fn violations_fixture_findings_are_exact() {
    let (rel, src) = fixture("violations.rs");
    let findings = lint_source(&rel, &src, &LintConfig::all_paths());
    let got: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    let want = vec![
        ("nan-unsafe-cmp", 6),
        ("panic-hygiene", 6),
        ("nan-unsafe-cmp", 12),
        ("panic-hygiene", 12),
        ("panic-hygiene", 13),
        ("hot-path-alloc", 17),
        ("hot-path-alloc", 18),
        ("hot-path-alloc", 19),
        ("hot-path-alloc", 20),
        ("nondeterminism", 26),
        ("nondeterminism", 27),
        ("nondeterminism", 32),
        ("nondeterminism", 36),
        ("validate-bypass", 40),
    ];
    assert_eq!(got, want);
    // Diagnostics carry the scan-relative path and an actionable message.
    assert!(findings.iter().all(|f| f.path == "fixtures/violations.rs"));
    assert!(findings[0].message.contains("total_cmp"));
}

#[test]
fn suppressed_fixture_produces_zero_findings() {
    let (rel, src) = fixture("suppressed.rs");
    let findings = lint_source(&rel, &src, &LintConfig::all_paths());
    assert!(
        findings.is_empty(),
        "every violation carries a pragma, but got:\n{}",
        render(&findings)
    );
}

#[test]
fn clean_fixture_produces_zero_findings() {
    let (rel, src) = fixture("clean.rs");
    let findings = lint_source(&rel, &src, &LintConfig::all_paths());
    assert!(
        findings.is_empty(),
        "clean fixture flagged:\n{}",
        render(&findings)
    );
}

/// The self-hosting gate: the workspace itself must be lint-clean under the committed
/// configuration. This is the library-level twin of the CI `--check` step.
#[test]
fn workspace_is_lint_clean() {
    let findings = lint_path(&workspace_root(), &LintConfig::repo_default()).unwrap();
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean:\n{}",
        render(&findings)
    );
}

/// Regression (fault-injection PR): resume-byte-identity makes the fault and
/// checkpoint modules determinism-sensitive, so the committed configuration must keep
/// them inside the `nondeterminism` scope and the per-interval fault masking on the
/// hot-path allocation denylist.
#[test]
fn fault_and_checkpoint_modules_stay_in_the_determinism_scopes() {
    let cfg = LintConfig::repo_default();
    for path in [
        "crates/cluster/src/faults.rs",
        "crates/cluster/src/sim.rs",
        "crates/cluster/src/node.rs",
        "crates/cluster/src/engine.rs",
    ] {
        assert!(
            pliant_lint::config::path_in(path, &cfg.hash_container_scoped),
            "{path} must sit inside the nondeterminism hash-container scope"
        );
        assert!(
            !pliant_lint::config::path_in(path, &cfg.wallclock_allowed),
            "{path} must not be allowed to read the wall clock"
        );
        // A hash-ordered container in any of these files is a finding: iteration
        // order would reach checkpoint archives and break resume byte-identity.
        let findings = lint_source(
            path,
            "fn restore() { let m: HashMap<u32, u64> = HashMap::new(); }",
            &cfg,
        );
        assert!(
            findings.iter().any(|f| f.rule == "nondeterminism"),
            "a HashMap in {path} must be flagged, got:\n{}",
            render(&findings)
        );
    }
    for hot in ["NodeHealth::is_serving", "LoadBalancer::split_active"] {
        assert!(
            cfg.hot_path_fns.iter().any(|f| f == hot),
            "{hot} must stay on the hot-path-alloc denylist"
        );
    }
}

/// Regression (topology PR): rack sampling draws from a seeded RNG and placement and
/// migration run inside the per-interval loop, so the topology module must stay inside
/// the nondeterminism scope and the placement/migration functions on the
/// hot-path-alloc denylist.
#[test]
fn topology_placement_and_migration_stay_in_the_determinism_scopes() {
    let cfg = LintConfig::repo_default();
    let path = "crates/cluster/src/topology.rs";
    assert!(
        pliant_lint::config::path_in(path, &cfg.hash_container_scoped),
        "{path} must sit inside the nondeterminism hash-container scope"
    );
    assert!(
        !pliant_lint::config::path_in(path, &cfg.wallclock_allowed),
        "{path} must not be allowed to read the wall clock"
    );
    let findings = lint_source(
        path,
        "fn rack_of() { let m: HashMap<u32, u64> = HashMap::new(); }",
        &cfg,
    );
    assert!(
        findings.iter().any(|f| f.rule == "nondeterminism"),
        "a HashMap in {path} must be flagged, got:\n{}",
        render(&findings)
    );
    for hot in [
        "ClusterSim::rack_score",
        "ClusterNode::extract_job",
        "ClusterNode::implant_job",
        "ColocationSim::extract_app",
        "ColocationSim::implant_app",
        "Autoscaler::park_fully_drained",
    ] {
        assert!(
            cfg.hot_path_fns.iter().any(|f| f == hot),
            "{hot} must stay on the hot-path-alloc denylist"
        );
        // An allocation seeded into any of these functions is a finding: the
        // consolidation pass runs them every interval on racked fleets.
        let (ty, name) = hot.split_once("::").unwrap();
        let src = format!("impl {ty} {{ fn {name}(&mut self) {{ let v = Vec::new(); }} }}");
        let findings = lint_source("crates/cluster/src/sim.rs", &src, &cfg);
        assert!(
            findings.iter().any(|f| f.rule == "hot-path-alloc"),
            "a Vec::new inside {hot} must be flagged, got:\n{}",
            render(&findings)
        );
    }
}

#[test]
fn cli_check_fails_on_the_violations_fixture() {
    let (code, stdout, stderr) = run_cli(&fixtures_dir(), &["--check", "violations.rs"]);
    assert_eq!(
        code, 1,
        "--check must exit nonzero on findings; stderr: {stderr}"
    );
    for rule in [
        "nan-unsafe-cmp",
        "hot-path-alloc",
        "nondeterminism",
        "validate-bypass",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
    assert!(stderr.contains("finding(s)"));
}

#[test]
fn cli_check_passes_on_clean_and_suppressed_fixtures() {
    for name in ["clean.rs", "suppressed.rs"] {
        let (code, stdout, stderr) = run_cli(&fixtures_dir(), &["--check", name]);
        assert_eq!(code, 0, "{name} must be clean; stdout:\n{stdout}");
        assert!(stderr.contains("no findings"));
    }
}

#[test]
fn cli_json_output_is_wellformed() {
    let (code, stdout, _) = run_cli(&fixtures_dir(), &["--json", "violations.rs"]);
    assert_eq!(code, 0, "without --check the exit code stays 0");
    let trimmed = stdout.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'));
    assert!(trimmed.contains(r#""rule": "nan-unsafe-cmp""#));
    assert!(trimmed.contains(r#""line": 6"#));
}

#[test]
fn cli_only_and_skip_filter_rules() {
    let (code, stdout, _) = run_cli(
        &fixtures_dir(),
        &["--only", "nondeterminism", "--check", "violations.rs"],
    );
    assert_eq!(code, 1);
    assert!(stdout.contains("nondeterminism"));
    assert!(!stdout.contains("hot-path-alloc"));

    let (code, stdout, _) = run_cli(
        &fixtures_dir(),
        &[
            "--skip",
            "nan-unsafe-cmp,hot-path-alloc,nondeterminism,validate-bypass,panic-hygiene",
            "--check",
            "violations.rs",
        ],
    );
    assert_eq!(
        code, 0,
        "skipping every rule must pass --check; stdout:\n{stdout}"
    );
}

#[test]
fn cli_rejects_unknown_rules_and_options() {
    let (code, _, stderr) = run_cli(&fixtures_dir(), &["--only", "bogus-rule"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown rule"));

    let (code, _, stderr) = run_cli(&fixtures_dir(), &["--frobnicate"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown option"));
}

#[test]
fn cli_lists_every_rule() {
    let (code, stdout, _) = run_cli(&fixtures_dir(), &["--list-rules"]);
    assert_eq!(code, 0);
    for rule in ALL_RULES {
        assert!(
            stdout.contains(rule.id),
            "missing {} in:\n{stdout}",
            rule.id
        );
    }
}

/// The CI invocation: `pliant-lint --check .` from the workspace root must pass.
#[test]
fn cli_check_passes_on_the_workspace() {
    let (code, stdout, stderr) = run_cli(&workspace_root(), &["--check", "."]);
    assert_eq!(code, 0, "workspace --check failed:\n{stdout}\n{stderr}");
    assert!(stderr.contains("no findings"));
}

fn render(findings: &[pliant_lint::findings::Finding]) -> String {
    findings
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}
