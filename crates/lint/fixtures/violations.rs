//! Seeded-violation fixture: every rule fires at a line the integration tests pin
//! exactly. Never compiled — `fixtures/` is in `skip_dirs`, so workspace scans ignore
//! this file and only the tests read it. Do not reformat: line numbers are asserted.

fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn max_score(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("comparable"))
        .unwrap()
}

fn fast_exp(x: f64) -> f64 {
    let coeffs: Vec<f64> = Vec::new();
    let scratch = vec![0.0f64; 4];
    let doubled: Vec<f64> = scratch.iter().map(|v| v * 2.0).collect();
    let label = format!("exp({x})");
    let _ = (coeffs, doubled, label);
    x
}

fn stamp_interval() -> u64 {
    let started = std::time::Instant::now();
    let _wall = std::time::SystemTime::now();
    started.elapsed().as_nanos() as u64
}

fn tally(keys: &[u64]) -> usize {
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
    counts.len().max(distinct.len())
}

#[derive(Debug, Clone, Deserialize)]
struct ArchiveModel {
    weight: f64,
}

impl ArchiveModel {
    fn validate(&self) -> Result<(), String> {
        if self.weight.is_finite() {
            Ok(())
        } else {
            Err("weight must be finite".to_string())
        }
    }
}
