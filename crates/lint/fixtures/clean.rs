//! Clean fixture: the idiomatic equivalent of everything `violations.rs` seeds. The
//! integration tests assert this file produces zero findings even under the
//! everything-in-scope configuration.

fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

fn max_score(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

fn fast_exp(x: f64, scratch: &mut Vec<f64>) -> f64 {
    scratch.clear();
    scratch.extend([1.0, x, x * x / 2.0]);
    scratch.iter().sum()
}

fn stamp_interval(sim_now_s: f64, interval_s: f64) -> u64 {
    ((sim_now_s + interval_s) * 1e9) as u64
}

fn tally(keys: &[u64]) -> usize {
    let mut counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts.len()
}

#[derive(Debug, Clone)]
struct ArchiveModel {
    weight: f64,
}

impl ArchiveModel {
    fn validate(&self) -> Result<(), String> {
        if self.weight.is_finite() {
            Ok(())
        } else {
            Err("weight must be finite".to_string())
        }
    }
}
