//! Pragma-suppression fixture: the same violations as `violations.rs`, each carrying an
//! allow pragma in one of the two supported positions (standalone comment covering the
//! next code line, or trailing on the line itself). The integration tests assert this
//! file produces zero findings.

fn sort_scores(xs: &mut [f64]) {
    // pliant-lint: allow(nan-unsafe-cmp, panic-hygiene): standalone form.
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn max_score(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("comparable")) // pliant-lint: allow(nan-unsafe-cmp, panic-hygiene): trailing form.
        .unwrap() // pliant-lint: allow(panic-hygiene): trailing form.
}

fn fast_exp(x: f64) -> f64 {
    // pliant-lint: allow(hot-path-alloc): standalone form.
    let coeffs: Vec<f64> = Vec::new();
    let scratch = vec![0.0f64; 4]; // pliant-lint: allow(hot-path-alloc): trailing form.
    let doubled: Vec<f64> = scratch.iter().map(|v| v * 2.0).collect(); // pliant-lint: allow(hot-path-alloc)
    let label = format!("exp({x})"); // pliant-lint: allow(hot-path-alloc)
    let _ = (coeffs, doubled, label);
    x
}

fn stamp_interval() -> u64 {
    // pliant-lint: allow(nondeterminism): standalone form, with an intervening
    // plain comment line between the pragma and the code it covers.
    let started = std::time::Instant::now();
    let _wall = std::time::SystemTime::now(); // pliant-lint: allow(nondeterminism)
    started.elapsed().as_nanos() as u64
}

fn tally(keys: &[u64]) -> usize {
    // pliant-lint: allow(nondeterminism): standalone form.
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect(); // pliant-lint: allow(nondeterminism)
    counts.len().max(distinct.len())
}

// pliant-lint: allow(validate-bypass): standalone form covering the derive line.
#[derive(Debug, Clone, Deserialize)]
struct ArchiveModel {
    weight: f64,
}

impl ArchiveModel {
    fn validate(&self) -> Result<(), String> {
        if self.weight.is_finite() {
            Ok(())
        } else {
            Err("weight must be finite".to_string())
        }
    }
}
